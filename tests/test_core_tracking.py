"""Tests for repro.core.tracking."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.core.tracking import track_tag_start


def _scan_phases(world_positions, antenna, offset=0.5):
    distances = np.linalg.norm(world_positions - antenna[np.newaxis, :], axis=1)
    return np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset, TWO_PI)


class TestTrackTagStart:
    def test_exact_recovery_2d(self):
        antenna = np.array([0.3, 0.9])
        start = np.array([-0.15, 0.0])
        displacements = np.stack(
            [np.linspace(0.0, 0.8, 300), np.zeros(300)], axis=1
        )
        world = start[np.newaxis, :] + displacements
        phases = _scan_phases(world, antenna)
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = track_tag_start(localizer, displacements, phases, antenna)
        assert result.initial_position == pytest.approx(start, abs=1e-5)

    def test_wrong_antenna_assumption_biases_start(self):
        """The Fig. 13(a) mechanism: error = assumed-vs-true antenna offset."""
        antenna_true = np.array([0.3, 0.9])
        antenna_assumed = antenna_true + [0.02, -0.03]
        start = np.array([0.1, 0.0])
        displacements = np.stack(
            [np.linspace(0.0, 0.8, 300), np.zeros(300)], axis=1
        )
        world = start[np.newaxis, :] + displacements
        phases = _scan_phases(world, antenna_true)
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = track_tag_start(localizer, displacements, phases, antenna_assumed)
        bias = result.initial_position - start
        assert bias == pytest.approx([0.02, -0.03], abs=1e-4)

    def test_3d_antenna_position_sliced_for_2d(self):
        antenna3 = np.array([0.3, 0.9, 0.5])
        start = np.array([0.0, 0.0])
        displacements = np.stack(
            [np.linspace(0.0, 0.6, 200), np.zeros(200)], axis=1
        )
        world = start[np.newaxis, :] + displacements
        phases = _scan_phases(world, antenna3[:2])
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = track_tag_start(localizer, displacements, phases, antenna3)
        assert result.initial_position.shape == (2,)
        assert result.initial_position == pytest.approx(start, abs=1e-5)

    def test_antenna_dim_checked(self):
        localizer = LionLocalizer(dim=3)
        with pytest.raises(ValueError):
            track_tag_start(
                localizer, np.zeros((10, 3)), np.zeros(10), np.zeros(2)
            )

    def test_scalar_antenna_rejected_for_2d(self):
        localizer = LionLocalizer(dim=2)
        with pytest.raises(ValueError, match="antenna position"):
            track_tag_start(
                localizer,
                np.stack([np.linspace(0.0, 0.5, 20), np.zeros(20)], axis=1),
                np.zeros(20),
                np.array([0.3]),
            )

    def test_degenerate_trajectory_propagates_localizer_error(self):
        """A stationary tag observes nothing; the solve's own diagnosis
        (not a downstream shape error) must reach the caller."""
        from repro.core.localizer import DegenerateGeometryError

        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        displacements = np.zeros((50, 2))
        phases = np.full(50, 1.0)
        with pytest.raises(DegenerateGeometryError, match="degenerate"):
            track_tag_start(
                localizer, displacements, phases, np.array([0.3, 0.9])
            )
