"""Tests for repro.core.pairing."""

import numpy as np
import pytest

from repro.core.pairing import (
    all_pairs,
    cross_segment_pairs,
    lag_pairs,
    random_pairs,
    spacing_pairs,
    three_line_pairs,
)
from repro.trajectory.multiline import ThreeLineScan


class TestLagPairs:
    def test_count_and_structure(self):
        pairs = lag_pairs(10, 3)
        assert len(pairs) == 7
        assert all(j - i == 3 for i, j in pairs)

    def test_bad_lag_rejected(self):
        with pytest.raises(ValueError):
            lag_pairs(10, 0)

    def test_lag_too_large_rejected(self):
        with pytest.raises(ValueError):
            lag_pairs(3, 5)


class TestSpacingPairs:
    def test_pairs_have_requested_spacing(self):
        x = np.linspace(0.0, 1.0, 101)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        pairs = spacing_pairs(positions, 0.25)
        for i, j in pairs:
            displacement = np.linalg.norm(positions[j] - positions[i])
            assert displacement == pytest.approx(0.25, abs=0.02)

    def test_works_on_circle(self):
        angles = np.linspace(0, 2 * np.pi, 200, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        pairs = spacing_pairs(positions, 0.2)
        assert len(pairs) > 50
        for i, j in pairs[:20]:
            chord = np.linalg.norm(positions[j] - positions[i])
            assert chord == pytest.approx(0.2, abs=0.02)

    def test_too_large_spacing_rejected(self):
        positions = np.stack([np.linspace(0, 0.1, 10), np.zeros(10)], axis=1)
        with pytest.raises(ValueError):
            spacing_pairs(positions, 5.0)

    def test_non_positive_spacing_rejected(self):
        with pytest.raises(ValueError):
            spacing_pairs(np.zeros((5, 2)), 0.0)


class TestAllPairs:
    def test_full_count(self):
        assert len(all_pairs(6)) == 15

    def test_thinning(self):
        pairs = all_pairs(20, max_pairs=10)
        assert len(pairs) == 10
        assert len(set(pairs)) == 10

    def test_too_few_rejected(self):
        with pytest.raises(ValueError):
            all_pairs(1)


class TestRandomPairs:
    def test_count_and_validity(self, rng):
        pairs = random_pairs(10, 12, rng)
        assert len(pairs) == 12
        for i, j in pairs:
            assert 0 <= i < j < 10

    def test_distinct(self, rng):
        pairs = random_pairs(8, 20, rng)
        assert len(set(pairs)) == 20

    def test_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            random_pairs(4, 100, rng)


class TestCrossSegmentPairs:
    def test_matches_by_axis(self):
        x = np.linspace(-0.5, 0.5, 11)
        line1 = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        line2 = np.stack([x, np.full_like(x, -0.2), np.zeros_like(x)], axis=1)
        positions = np.vstack([line1, line2])
        segments = np.array([0] * 11 + [1] * 11)
        pairs = cross_segment_pairs(positions, segments, 0, 1)
        assert len(pairs) == 11
        for i, j in pairs:
            assert positions[i, 0] == pytest.approx(positions[j, 0])
            assert segments[i] == 0
            assert segments[j] == 1

    def test_mismatch_tolerance(self):
        positions = np.array([[0.0, 0.0, 0.0], [0.5, -0.2, 0.0]])
        segments = np.array([0, 1])
        pairs = cross_segment_pairs(
            positions, segments, 0, 1, max_mismatch_m=0.01
        )
        assert pairs == []

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            cross_segment_pairs(np.zeros((2, 3)), np.zeros(2, dtype=int), 0, 1)


class TestThreeLinePairs:
    def _scan_arrays(self):
        scan = ThreeLineScan(-0.5, 0.5, include_transits=False)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        return samples.positions, samples.segment_ids

    def test_pair_families_cover_all_axes(self):
        positions, segments = self._scan_arrays()
        pairs = three_line_pairs(positions, segments, interval_m=0.25)
        displacements = positions[[j for _, j in pairs]] - positions[[i for i, _ in pairs]]
        spans = np.abs(displacements).max(axis=0)
        assert spans[0] > 0.2  # x pairs
        assert spans[1] > 0.1  # y pairs (L1-L3)
        assert spans[2] > 0.1  # z pairs (L1-L2)

    def test_x_pairs_respect_interval(self):
        positions, segments = self._scan_arrays()
        pairs = three_line_pairs(positions, segments, interval_m=0.3)
        x_pairs = [
            (i, j) for i, j in pairs if segments[i] == 0 and segments[j] == 0
        ]
        assert x_pairs, "expected within-L1 pairs"
        for i, j in x_pairs:
            assert abs(positions[j, 0] - positions[i, 0]) == pytest.approx(0.3, abs=0.02)

    def test_interval_too_large_rejected(self):
        positions, segments = self._scan_arrays()
        with pytest.raises(ValueError):
            three_line_pairs(positions, segments, interval_m=5.0)

    def test_missing_line_rejected(self):
        positions = np.zeros((4, 3))
        positions[:, 0] = [0, 1, 0, 1]
        segments = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError):
            three_line_pairs(positions, segments, 0.5, line_ids=(0, 1, 2))
