"""Tests for repro.stream — sessions, manager lifecycle, events, replay.

The subsystem's contract: reads stream in chunks of any size, lifecycle
events narrate the session, and every windowed re-solve (periodic,
final, drain) is bit-identical to a one-shot estimate over the same
window. Chunking is an I/O artifact — it must never change an answer.
"""

import numpy as np
import pytest

from repro import LinearTrajectory, default_antenna, simulate_scan
from repro.pipeline import estimate
from repro.serve import ServeEngine
from repro.stream import (
    DuplicateSessionError,
    EventBus,
    SessionCapacityError,
    SessionClosedError,
    SessionManager,
    StreamConfig,
    TagSession,
    UnknownSessionError,
    replay_records,
    replay_stream,
)
from repro.datasets import session_streams


def _scan(seed=5):
    rng = np.random.default_rng(seed)
    antenna = default_antenna((0.1, 0.9, 0.0), rng)
    return simulate_scan(
        LinearTrajectory((-0.5, 0.0, 0.0), (0.5, 0.0, 0.0)), antenna, rng=rng
    )


def _reads(scan, start=0, end=None):
    end = len(scan) if end is None else end
    return [
        (k / 120.0, scan.positions[k], float(scan.phases[k]))
        for k in range(start, end)
    ]


def _feed_chunked(manager, session_id, reads, chunk):
    for start in range(0, len(reads), chunk):
        manager.feed(session_id, reads[start : start + chunk])


class TestStreamConfig:
    def test_round_trip(self):
        config = StreamConfig(resolve_every_reads=40, settle_epsilon_m=0.01)
        assert StreamConfig.from_dict(config.to_dict()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown stream config"):
            StreamConfig.from_dict({"resolve_cadence": 10})
        with pytest.raises(TypeError):
            StreamConfig().override(resolve_cadence=10)

    @pytest.mark.parametrize(
        "changes",
        [
            {"estimator": ""},
            {"max_window_reads": 2},
            {"min_window_reads": 2},
            {"min_window_reads": 64, "max_window_reads": 32},
            {"update_every_reads": 0},
            {"resolve_every_reads": 0},
            {"settle_window": 1},
            {"settle_epsilon_m": 0.0},
            {"depart_after_s": 0.0},
            {"drift_threshold_m": -1.0},
            {"fast_pair_lag": 0},
            {"fast_min_rows": 0},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ValueError):
            StreamConfig(**changes)

    def test_bad_estimator_fails_at_session_open(self):
        manager = SessionManager()
        with pytest.raises(KeyError):
            manager.open_session("T", config=StreamConfig(estimator="no-such"))
        with pytest.raises(ValueError):
            manager.open_session(
                "T", config=StreamConfig(estimator_config={"dim": 7})
            )
        # failed opens leave no live session behind
        assert manager.active_sessions() == 0


class TestSessionLifecycle:
    def test_events_narrate_the_session(self):
        scan = _scan()
        manager = SessionManager(defaults=StreamConfig(fast_pair_lag=120))
        session = manager.open_session("PALLET-1", antenna="A")
        assert session.state.value == "warming"

        result = manager.feed(session.session_id, _reads(scan))
        kinds = [event.kind for event in result.events]
        assert kinds[0] == "tag_entered"
        assert "position_updated" in kinds
        assert result.accepted == len(scan)
        assert result.estimate is not None
        assert session.state.value in ("tracking", "settled")

        closing = manager.close_session(session.session_id)
        closing_kinds = [event.kind for event in closing.events]
        assert closing_kinds[-1] == "tag_departed"
        # the close flushed one final windowed re-solve
        assert "position_updated" in closing_kinds
        assert manager.active_sessions() == 0

    def test_event_sequence_is_gapless(self):
        scan = _scan()
        manager = SessionManager()
        session = manager.open_session("T1")
        seen = []
        manager.bus.subscribe(lambda event: seen.append(event))
        _feed_chunked(manager, session.session_id, _reads(scan), 50)
        manager.close_session(session.session_id)
        sequences = [event.sequence for event in seen]
        assert sequences == list(range(1, len(sequences) + 1))

    def test_feed_after_close_is_unknown(self):
        manager = SessionManager()
        session = manager.open_session("T1")
        manager.close_session(session.session_id)
        with pytest.raises(UnknownSessionError):
            manager.feed(session.session_id, [(0.0, (0.0, 0.0), 0.1)])

    def test_departed_session_rejects_reads(self):
        session = TagSession("sid", "T1", "1", StreamConfig())
        session.depart("closed")
        with pytest.raises(SessionClosedError):
            session.add_read(0.0, (0.0, 0.0), 0.1)

    def test_depart_is_idempotent(self):
        session = TagSession("sid", "T1", "1", StreamConfig())
        assert [event.kind for event in session.depart("closed")] == ["tag_departed"]
        assert session.depart("closed") == []

    def test_snapshot_is_json_safe(self):
        import json

        scan = _scan()
        manager = SessionManager()
        session = manager.open_session("T1", antenna="A2")
        manager.feed(session.session_id, _reads(scan, 0, 100))
        snapshot = session.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["tag"] == "T1"
        assert snapshot["antenna"] == "A2"
        assert snapshot["reads"] == 100


class TestManagerAdmission:
    def test_capacity(self):
        manager = SessionManager(max_sessions=1)
        manager.open_session("T1")
        with pytest.raises(SessionCapacityError):
            manager.open_session("T2")

    def test_duplicate_key(self):
        manager = SessionManager()
        manager.open_session("T1", antenna="A")
        with pytest.raises(DuplicateSessionError):
            manager.open_session("T1", antenna="A")
        # same tag at another antenna is a distinct session
        manager.open_session("T1", antenna="B")

    def test_duplicate_session_id(self):
        manager = SessionManager()
        manager.open_session("T1", session_id="fixed")
        with pytest.raises(DuplicateSessionError):
            manager.open_session("T2", session_id="fixed")

    def test_key_is_reusable_after_close(self):
        manager = SessionManager()
        first = manager.open_session("T1")
        manager.close_session(first.session_id)
        second = manager.open_session("T1")
        assert second.session_id != first.session_id

    def test_unknown_session(self):
        manager = SessionManager()
        with pytest.raises(UnknownSessionError):
            manager.get_session("nope")
        with pytest.raises(UnknownSessionError):
            manager.close_session("nope")

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            SessionManager().open_session("")

    def test_max_sessions_validated(self):
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)


class TestIdleSweep:
    def test_poll_departs_idle_sessions(self):
        now = [0.0]
        manager = SessionManager(
            defaults=StreamConfig(depart_after_s=1.0), clock=lambda: now[0]
        )
        idle = manager.open_session("IDLE")
        busy = manager.open_session("BUSY")
        now[0] = 0.9
        manager.feed(busy.session_id, [(0.9, (0.0, 0.0), 0.1)])
        now[0] = 1.5
        events = manager.poll()
        assert [event.tag for event in events] == ["IDLE"]
        assert events[0].to_dict()["reason"] == "timeout"
        assert manager.session_ids() == [busy.session_id]
        assert idle.state.value == "departed"


class TestDrain:
    def test_drain_final_resolves_and_sheds_new_opens(self):
        scan = _scan()
        manager = SessionManager()
        fed = manager.open_session("FED")
        empty = manager.open_session("EMPTY")
        manager.feed(fed.session_id, _reads(scan, 0, 200))

        summary = manager.drain()
        assert summary == {"sessions_drained": 2, "final_resolves": 1}
        assert manager.draining
        assert fed.state.value == "departed"
        assert empty.state.value == "departed"
        assert fed.last_estimate["source"] == "windowed"
        with pytest.raises(SessionCapacityError):
            manager.open_session("LATE")
        # idempotent
        assert manager.drain() == {"sessions_drained": 0, "final_resolves": 0}

    def test_stats_shape(self):
        manager = SessionManager()
        manager.open_session("T1")
        stats = manager.stats()
        assert stats["active"] == 1
        assert stats["opened"] == 1
        assert stats["states"] == {"warming": 1}
        for key in (
            "departed",
            "reads",
            "events",
            "resolves_direct",
            "resolves_engine",
            "resolve_errors",
            "draining",
        ):
            assert key in stats


class TestChunkDeterminism:
    """Chunking is transport, not math: any chunking of the same reads
    produces bit-identical windowed solves."""

    @pytest.mark.parametrize("chunk", [1, 7, 64, 10_000])
    def test_final_resolve_independent_of_chunk_size(self, chunk):
        scan = _scan()
        reads = _reads(scan)
        reference = None
        manager = SessionManager()
        session = manager.open_session("T", session_id=f"chunk-{chunk}")
        _feed_chunked(manager, session.session_id, reads, chunk)
        final = session.final_resolve()
        assert final is not None

        baseline_manager = SessionManager()
        baseline = baseline_manager.open_session("T")
        baseline_manager.feed(baseline.session_id, reads)
        reference = baseline.final_resolve()
        assert np.array_equal(final.position, reference.position)

    def test_final_resolve_bit_identical_to_oneshot(self):
        scan = _scan()
        manager = SessionManager()
        session = manager.open_session("T")
        _feed_chunked(manager, session.session_id, _reads(scan), 33)
        final = session.final_resolve()
        name, config, request = session.build_resolve_request()
        oneshot = estimate(name, request, config)
        assert np.array_equal(final.position, oneshot.position)

    def test_window_eviction_keeps_identity(self):
        scan = _scan()
        config = StreamConfig(max_window_reads=250, min_window_reads=12)
        manager = SessionManager(defaults=config)
        session = manager.open_session("T")
        _feed_chunked(manager, session.session_id, _reads(scan), 19)
        assert session.window_size() == 250
        final = session.final_resolve()
        name, cfg, request = session.build_resolve_request()
        assert request.positions.shape[0] == 250
        oneshot = estimate(name, request, cfg)
        assert np.array_equal(final.position, oneshot.position)


class TestEngineResolves:
    def test_windowed_resolves_route_through_engine(self):
        import time

        scan = _scan()
        with ServeEngine() as engine:
            manager = SessionManager(engine=engine)
            session = manager.open_session("T")
            _feed_chunked(manager, session.session_id, _reads(scan), 64)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if (
                    session.last_estimate is not None
                    and session.last_estimate["source"] == "windowed"
                ):
                    break
                time.sleep(0.01)
            stats = manager.stats()
            assert stats["resolves_engine"] > 0
            assert session.last_estimate["source"] == "windowed"
            # the engine-applied estimate equals the one-shot answer for
            # the window it solved — spot-check with a fresh final solve
            final = session.final_resolve()
            name, config, request = session.build_resolve_request()
            oneshot = estimate(name, request, config)
            assert np.array_equal(final.position, oneshot.position)


class TestEventBus:
    def _event(self):
        from repro.stream import TagEntered

        return TagEntered(
            session_id="s", tag="T", antenna="1", sequence=1, timestamp_s=0.0
        )

    def test_kind_filter_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        token = bus.subscribe(seen.append, kinds=["tag_entered"])
        other = bus.subscribe(seen.append, kinds=["tag_departed"])
        bus.publish(self._event())
        assert len(seen) == 1
        assert bus.unsubscribe(token)
        bus.publish(self._event())
        assert len(seen) == 1
        assert not bus.unsubscribe(token)
        assert bus.unsubscribe(other)

    def test_raising_subscriber_is_isolated(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.publish(self._event())
        assert len(seen) == 1
        assert bus.stats()["subscriber_errors"] == 1
        assert bus.stats()["published"] == 1


class TestReplay:
    def _streams(self, seed=9):
        scan = _scan(seed)
        return session_streams(scan.records, dim=2)

    def test_replay_verifies_bit_identity(self):
        results = replay_records(self._streams())
        assert len(results) == 1
        result = results[0]
        assert result.bit_identical is True
        assert result.final_position == result.oneshot_position
        assert result.events["tag_entered"] == 1
        assert result.events["tag_departed"] == 1
        assert result.reads > 0
        assert result.reads_per_sec > 0

    def test_replay_skips_verification_when_asked(self):
        result = replay_records(self._streams(), verify=False)[0]
        assert result.bit_identical is None
        assert result.oneshot_position is None
        assert result.final_position is not None

    def test_paced_replay_sleeps_the_recorded_gaps(self):
        slept = []
        streams = self._streams()
        replay_records(
            streams, speed=2.0, chunk_reads=50, sleep=slept.append
        )
        total = len(streams[0])
        expected_gaps = (total - 1) // 50  # one sleep per non-initial chunk
        assert len(slept) == expected_gaps
        assert all(gap >= 0.0 for gap in slept)
        # 2x speed halves the recorded gap
        recorded = float(
            streams[0].timestamps_s[50] - streams[0].timestamps_s[49]
        )
        assert slept[0] == pytest.approx(recorded / 2.0)

    def test_invalid_speed_and_chunk_rejected(self):
        manager = SessionManager()
        stream = self._streams()[0]
        with pytest.raises(ValueError):
            replay_stream(stream, manager, speed=0.0)
        with pytest.raises(ValueError):
            replay_stream(stream, manager, chunk_reads=0)

    def test_subscriber_sees_the_events(self):
        kinds = []
        replay_records(
            self._streams(), subscriber=lambda event: kinds.append(event.kind)
        )
        assert kinds.count("tag_entered") == 1
        assert kinds.count("tag_departed") == 1
