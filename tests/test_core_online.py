"""Tests for repro.core.online — the streaming RLS localizer."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.online import OnlineLionLocalizer


def _stream(target, n=1000, noise=0.0, rng=None, offset=0.7):
    x = np.linspace(-0.5, 0.5, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset
    if noise > 0:
        phases = phases + rng.normal(0.0, noise, n)
    return positions, np.mod(phases, TWO_PI)


class TestConvergence:
    def test_exact_stream_recovers_target(self):
        target = np.array([0.15, 0.9])
        positions, phases = _stream(target)
        online = OnlineLionLocalizer(dim=2, pair_lag=250)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        estimate = online.estimate()
        assert estimate.position == pytest.approx(target, abs=1e-6)
        assert estimate.recovered_axis == 1

    def test_noisy_stream_subcentimeter(self, rng):
        target = np.array([0.0, 0.8])
        positions, phases = _stream(target, noise=0.08, rng=rng)
        online = OnlineLionLocalizer(dim=2, pair_lag=250)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        estimate = online.estimate()
        assert np.linalg.norm(estimate.position - target) < 0.01

    def test_error_shrinks_with_reads(self, rng):
        target = np.array([0.1, 0.9])
        positions, phases = _stream(target, n=1500, noise=0.08, rng=rng)
        online = OnlineLionLocalizer(dim=2, pair_lag=300)
        checkpoints = []
        for index, (position, phase) in enumerate(zip(positions, phases)):
            online.add_read(position, phase)
            if index in (700, 1499) and online.ready():
                checkpoints.append(
                    np.linalg.norm(online.estimate().position - target)
                )
        assert len(checkpoints) == 2
        assert checkpoints[1] < checkpoints[0] + 0.005

    def test_matches_wrap_count(self):
        """The incremental unwrap survives many 2*pi wraps."""
        target = np.array([0.0, 0.6])
        positions, phases = _stream(target, n=2000)
        online = OnlineLionLocalizer(dim=2, pair_lag=400)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        assert np.linalg.norm(online.estimate().position - target) < 1e-5


class TestRobustGate:
    def test_gate_suppresses_bursts(self, rng):
        target = np.array([0.0, 0.8])
        positions, phases = _stream(target, n=1200, noise=0.05, rng=rng)
        corrupt = rng.choice(1200, size=50, replace=False)
        phases = phases.copy()
        phases[corrupt] = np.mod(
            phases[corrupt] + rng.uniform(-1.5, 1.5, 50), TWO_PI
        )
        gated = OnlineLionLocalizer(dim=2, pair_lag=250, gate_threshold=4.0)
        ungated = OnlineLionLocalizer(dim=2, pair_lag=250, gate_threshold=0.0)
        for position, phase in zip(positions, phases):
            gated.add_read(position, phase)
            ungated.add_read(position, phase)
        error_gated = np.linalg.norm(gated.estimate().position - target)
        error_ungated = np.linalg.norm(ungated.estimate().position - target)
        assert error_gated <= error_ungated * 1.5 + 0.002


class TestLifecycle:
    def test_not_ready_initially(self):
        online = OnlineLionLocalizer(dim=2, pair_lag=10)
        assert not online.ready()
        with pytest.raises(ValueError):
            online.estimate()

    def test_reads_and_rows_counters(self):
        target = np.array([0.0, 0.8])
        positions, phases = _stream(target, n=100)
        online = OnlineLionLocalizer(dim=2, pair_lag=20)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        assert online.reads == 100
        assert online.rows == 80

    def test_reset_clears_state(self):
        target = np.array([0.0, 0.8])
        positions, phases = _stream(target, n=200)
        online = OnlineLionLocalizer(dim=2, pair_lag=20)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        online.reset()
        assert online.reads == 0
        assert not online.ready()

    def test_reuse_after_reset(self):
        online = OnlineLionLocalizer(dim=2, pair_lag=100)
        for target in (np.array([0.1, 0.8]), np.array([-0.2, 1.1])):
            online.reset()
            positions, phases = _stream(target, n=600)
            for position, phase in zip(positions, phases):
                online.add_read(position, phase)
            assert np.linalg.norm(online.estimate().position - target) < 1e-4


class TestValidation:
    def test_config_validated(self):
        with pytest.raises(ValueError):
            OnlineLionLocalizer(dim=4)
        with pytest.raises(ValueError):
            OnlineLionLocalizer(pair_lag=0)
        with pytest.raises(ValueError):
            OnlineLionLocalizer(forgetting=0.0)
        with pytest.raises(ValueError):
            OnlineLionLocalizer(wavelength_m=-1.0)

    def test_position_dim_checked(self):
        online = OnlineLionLocalizer(dim=3)
        with pytest.raises(ValueError):
            online.add_read(np.array([1.0, 2.0]), 0.5)
