"""Tests for repro.core.uncertainty — covariance of LION solutions."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.core.pairing import lag_pairs
from repro.core.solvers import solve_least_squares
from repro.core.system import build_system
from repro.core.uncertainty import estimate_uncertainty, uncertainty_of


def _circle_positions(radius, n):
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)


def _noisy_system(target, positions, sigma_d, rng):
    distances = np.linalg.norm(positions - target, axis=1)
    deltas = distances - distances[0] + rng.normal(0.0, sigma_d, len(distances))
    return build_system(positions, deltas, lag_pairs(len(positions), len(positions) // 4))


class TestEstimateUncertainty:
    def test_covariance_shape(self, rng):
        target = np.array([0.2, 0.9])
        system = _noisy_system(target, _circle_positions(0.3, 60), 0.001, rng)
        solution = solve_least_squares(system)
        uncertainty = estimate_uncertainty(system, solution)
        assert uncertainty.covariance.shape == (3, 3)
        assert uncertainty.position_std_m.shape == (2,)
        assert uncertainty.dof > 0

    def test_std_tracks_monte_carlo(self, rng):
        """The predicted std matches the empirical scatter within ~2x."""
        target = np.array([0.2, 0.9])
        positions = _circle_positions(0.3, 80)
        estimates, predicted = [], []
        for _ in range(60):
            system = _noisy_system(target, positions, 0.002, rng)
            solution = solve_least_squares(system)
            estimates.append(solution.position)
            predicted.append(
                estimate_uncertainty(system, solution).total_std_m()
            )
        empirical = float(
            np.sqrt(np.mean(np.sum((np.vstack(estimates) - target) ** 2, axis=1)))
        )
        mean_predicted = float(np.mean(predicted))
        assert mean_predicted == pytest.approx(empirical, rel=1.0)
        assert 0.3 * empirical < mean_predicted < 3.0 * empirical

    def test_scales_with_noise(self, rng):
        target = np.array([0.0, 0.8])
        positions = _circle_positions(0.3, 60)
        lows, highs = [], []
        for _ in range(10):
            low = estimate_uncertainty(
                *(lambda s: (s, solve_least_squares(s)))(
                    _noisy_system(target, positions, 0.001, rng)
                )
            ).total_std_m()
            high = estimate_uncertainty(
                *(lambda s: (s, solve_least_squares(s)))(
                    _noisy_system(target, positions, 0.004, rng)
                )
            ).total_std_m()
            lows.append(low)
            highs.append(high)
        assert np.mean(highs) > 2.0 * np.mean(lows)

    def test_rejects_underdetermined(self, rng):
        positions = _circle_positions(0.3, 4)
        system = _noisy_system(np.array([0.0, 0.8]), positions, 0.001, rng)
        solution = solve_least_squares(system)
        # 4 reads with lag 1 -> 3 rows for 3 unknowns: no redundancy.
        with pytest.raises(ValueError):
            estimate_uncertainty(system, solution)


class TestConfidenceEllipse:
    def _uncertainty(self, rng):
        # A gently curved sweep: depth (y) is observable but much weaker
        # than the along-track axis, so the ellipse elongates along y.
        # (An exactly straight sweep makes y unobservable by the direct
        # system — that case raises, see test_straight_scan_rejected.)
        target = np.array([0.0, 0.9])
        x = np.linspace(-0.4, 0.4, 80)
        positions = np.stack([x, 0.05 * x**2], axis=1)
        system = _noisy_system(target, positions, 0.002, rng)
        return estimate_uncertainty(system, solve_least_squares(system))

    def test_straight_scan_rejected(self, rng):
        """A perfectly straight sweep cannot quantify depth directly."""
        target = np.array([0.0, 0.9])
        x = np.linspace(-0.4, 0.4, 80)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        system = _noisy_system(target, positions, 0.002, rng)
        with pytest.raises(ValueError):
            estimate_uncertainty(system, solve_least_squares(system))

    def test_axes_ordered(self, rng):
        major, minor, _ = self._uncertainty(rng).confidence_ellipse()
        assert major >= minor >= 0.0

    def test_probability_scales_size(self, rng):
        uncertainty = self._uncertainty(rng)
        major_50, _, _ = uncertainty.confidence_ellipse(probability=0.5)
        major_99, _, _ = uncertainty.confidence_ellipse(probability=0.99)
        assert major_99 > major_50

    def test_linear_scan_major_axis_is_depth(self, rng):
        """For an x-line scan, uncertainty is dominated by y (depth)."""
        uncertainty = self._uncertainty(rng)
        major, minor, angle = uncertainty.confidence_ellipse()
        assert abs(np.sin(angle)) > 0.9  # major axis nearly along y
        assert uncertainty.position_std_m[1] > uncertainty.position_std_m[0]

    def test_validation(self, rng):
        uncertainty = self._uncertainty(rng)
        with pytest.raises(ValueError):
            uncertainty.confidence_ellipse(0, 0)
        with pytest.raises(ValueError):
            uncertainty.confidence_ellipse(0, 5)
        with pytest.raises(ValueError):
            uncertainty.confidence_ellipse(probability=1.5)


class TestUncertaintyOf:
    def test_from_localization_result(self, rng):
        target = np.array([0.1, 0.9])
        angles = np.linspace(0, 2 * np.pi, 200, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        distances = np.linalg.norm(positions - target, axis=1)
        phases = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
            + rng.normal(0, 0.08, 200),
            TWO_PI,
        )
        localizer = LionLocalizer(
            dim=2, interval_m=0.3, preprocess=PreprocessConfig(smoothing_window=1)
        )
        result = localizer.locate(positions, phases)
        uncertainty = uncertainty_of(result)
        error = np.linalg.norm(result.position - target)
        # The actual error should be within a few predicted sigmas.
        assert error < 5.0 * uncertainty.total_std_m() + 1e-4
