"""Tests for repro.core.weights (Eq. 15 and ablation variants)."""

import numpy as np
import pytest

from repro.core.weights import gaussian_residual_weights, huber_weights, uniform_weights


class TestGaussianResidualWeights:
    def test_matches_eq15(self, rng):
        residuals = rng.normal(0.0, 1.0, size=50)
        weights = gaussian_residual_weights(residuals)
        mu, sigma = np.mean(residuals), np.std(residuals)
        expected = np.exp(-((residuals - mu) ** 2) / (2 * sigma**2))
        assert weights == pytest.approx(expected)

    def test_range(self, rng):
        weights = gaussian_residual_weights(rng.normal(size=100))
        assert np.all(weights > 0.0)
        assert np.all(weights <= 1.0)

    def test_outlier_gets_smallest_weight(self, rng):
        residuals = rng.normal(0.0, 0.01, size=50)
        residuals[13] = 5.0
        weights = gaussian_residual_weights(residuals)
        assert np.argmin(weights) == 13

    def test_identical_residuals_uniform(self):
        weights = gaussian_residual_weights(np.full(10, 0.3))
        assert weights == pytest.approx(np.ones(10))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gaussian_residual_weights(np.array([]))


class TestUniformWeights:
    def test_all_ones(self, rng):
        weights = uniform_weights(rng.normal(size=20))
        assert np.array_equal(weights, np.ones(20))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_weights(np.array([]))


class TestHuberWeights:
    def test_inliers_get_unit_weight(self, rng):
        residuals = rng.normal(0.0, 1.0, size=200)
        weights = huber_weights(residuals)
        inliers = np.abs(residuals - np.median(residuals)) < 0.5
        assert np.all(weights[inliers] == 1.0)

    def test_outliers_downweighted(self, rng):
        residuals = rng.normal(0.0, 0.1, size=100)
        residuals[7] = 10.0
        weights = huber_weights(residuals)
        assert weights[7] < 0.05

    def test_constant_residuals_uniform(self):
        assert huber_weights(np.full(5, 2.0)) == pytest.approx(np.ones(5))

    def test_bad_delta_scale_rejected(self):
        with pytest.raises(ValueError):
            huber_weights(np.ones(5), delta_scale=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            huber_weights(np.array([]))
