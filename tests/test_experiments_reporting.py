"""Tests for repro.experiments.reporting."""

import pytest

from repro.experiments.metrics import ExperimentResult
from repro.experiments.reporting import (
    result_to_markdown,
    results_to_markdown,
    write_report,
)


@pytest.fixture
def sample_result():
    result = ExperimentResult(
        "figX",
        "a demo figure",
        columns=["depth_m", "error_cm"],
        paper_expectation="errors grow with depth",
        notes="fast mode",
    )
    result.add_row(depth_m=0.6, error_cm=0.51234)
    result.add_row(depth_m=1.6, error_cm=2.0)
    return result


class TestResultToMarkdown:
    def test_structure(self, sample_result):
        text = result_to_markdown(sample_result)
        lines = text.splitlines()
        assert lines[0].startswith("### figX")
        assert "| depth_m | error_cm |" in text
        assert "| 0.6 | 0.5123 |" in text
        assert "**Paper:**" in text
        assert "**Notes:**" in text

    def test_heading_level(self, sample_result):
        text = result_to_markdown(sample_result, heading_level=2)
        assert text.startswith("## ")

    def test_table_is_valid_markdown(self, sample_result):
        text = result_to_markdown(sample_result)
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        widths = {line.count("|") for line in table_lines}
        assert len(widths) == 1  # consistent column count

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            result_to_markdown(ExperimentResult("x", "t", columns=["a"]))

    def test_bad_heading_rejected(self, sample_result):
        with pytest.raises(ValueError):
            result_to_markdown(sample_result, heading_level=0)


class TestResultsToMarkdown:
    def test_combines_sections(self, sample_result):
        other = ExperimentResult("figY", "other", columns=["v"])
        other.add_row(v=1)
        text = results_to_markdown([sample_result, other], title="Report")
        assert text.startswith("# Report")
        assert "figX" in text and "figY" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            results_to_markdown([])


class TestWriteReport:
    def test_writes_file(self, sample_result, tmp_path):
        path = tmp_path / "report.md"
        write_report([sample_result], str(path))
        content = path.read_text()
        assert "figX" in content
        assert content.endswith("\n")

    def test_end_to_end_with_runner(self, tmp_path):
        from repro.experiments.figures import run_figure

        result = run_figure("fig02", seed=0, fast=True)
        path = tmp_path / "fig02.md"
        write_report([result], str(path), title="Fig 2 regeneration")
        assert "valley_offset_cm" in path.read_text()
