"""HTTP surface of the calibration registry (repro.serve.net).

Thread-mode servers with a ``calibration_store`` configured: the
``/v1/calibrations`` routes (list / history / commit with CAS), fleet
health in ``/statz``, and ``/v1/locate`` resolving named antennas to
the same bits as explicit arrays. Also the negative space: naming
antennas on a store-less server is a 400, the registry routes 404.
"""

import http.client
import json

import numpy as np
import pytest

from repro.calib import CalibrationStore, RecalibrationScheduler, fleet_scan_source
from repro.datasets.fleet import AntennaFleet, FleetDriftConfig
from repro.serve import ServeConfig
from repro.serve.net import BadRequestError, NetServeConfig, ServerHandle, parse_locate_body

TAG = (0.4, -0.6, 0.1)


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw else None
        return response.status, payload
    finally:
        conn.close()


def _commit_body(antenna="ant-000", offset=1.0, **extra):
    body = {
        "antenna": antenna,
        "physical_center": [0.0, 0.8, 0.0],
        "estimated_center": [0.01, 0.81, 0.002],
        "phase_offset_rad": offset,
    }
    body.update(extra)
    return json.dumps(body).encode()


@pytest.fixture(scope="class")
def fleet():
    return AntennaFleet(FleetDriftConfig(size=3, seed=2))


@pytest.fixture(scope="class")
def server(tmp_path_factory, fleet):
    root = tmp_path_factory.mktemp("calib-http") / "store"
    store = CalibrationStore(root)
    RecalibrationScheduler(
        store, fleet_scan_source(fleet), executor="serial", source="seed"
    ).recalibrate(fleet.names)
    config = NetServeConfig(
        port=0,
        shards=1,
        worker_mode="thread",
        engine=ServeConfig(max_wait_s=0.001),
        calibration_store=str(root),
    )
    with ServerHandle(config) as handle:
        yield handle


class TestCalibrationRoutes:
    def test_list_fleet_status(self, server, fleet):
        status, payload = _request(server.port, "GET", "/v1/calibrations")
        assert status == 200
        assert payload["antennas"] == 3
        assert set(payload["latest"]) == set(fleet.names)
        assert all(entry["version"] >= 1 for entry in payload["latest"].values())

    def test_history_route(self, server, fleet):
        name = fleet.names[0]
        status, payload = _request(server.port, "GET", f"/v1/calibrations/{name}")
        assert status == 200
        assert payload["antenna"] == name
        assert payload["latest_version"] == payload["versions"][-1]["version"]
        assert payload["versions"][0]["source"] == "seed"

    def test_history_unknown_antenna_404(self, server):
        status, payload = _request(server.port, "GET", "/v1/calibrations/ghost")
        assert status == 404
        assert payload["error"]["kind"] == "unknown_antenna"

    def test_commit_then_conflict(self, server):
        status, record = _request(
            server.port, "POST", "/v1/calibrations", _commit_body("http-ant", 1.0)
        )
        assert status == 201
        assert record["version"] == 1 and record["source"] == "manual"
        # Correct CAS token commits.
        status, record = _request(
            server.port,
            "POST",
            "/v1/calibrations",
            _commit_body("http-ant", 1.1, expected_version=1, source="scan"),
        )
        assert status == 201 and record["version"] == 2
        # Stale token: 409 with the conflict coordinates.
        status, payload = _request(
            server.port,
            "POST",
            "/v1/calibrations",
            _commit_body("http-ant", 1.2, expected_version=1),
        )
        assert status == 409
        assert payload["error"]["kind"] == "version_conflict"
        assert payload["antenna"] == "http-ant"
        assert (payload["expected"], payload["actual"]) == (1, 2)

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[]",
            json.dumps({"antenna": "a"}).encode(),
            _commit_body("a", "not-a-number"),
            _commit_body("a", 1.0, expected_version="later"),
        ],
    )
    def test_commit_malformed_400(self, server, body):
        status, payload = _request(server.port, "POST", "/v1/calibrations", body)
        assert status == 400
        assert payload["error"]["kind"] == "bad_request"

    def test_statz_has_fleet_health(self, server):
        status, payload = _request(server.port, "GET", "/statz")
        assert status == 200
        health = payload["calibration"]
        assert health["enabled"] is True
        assert health["antennas"] >= 3
        assert health["versions_total"] >= health["antennas"]
        assert health["generation"] >= 3
        assert "resolver" in health

    def test_locate_by_antennas_matches_explicit_arrays(self, server, fleet):
        phases = fleet.static_tag_phases(TAG)
        bounds = [
            [TAG[0] - 0.1, TAG[0] + 0.1],
            [TAG[1] - 0.1, TAG[1] + 0.1],
            [TAG[2] - 0.1, TAG[2] + 0.1],
        ]
        named = {
            "estimator": "lion-multiantenna",
            "config": {"grid_size_m": 0.02},
            "request": {
                "antennas": list(fleet.names),
                "phases_rad": phases.tolist(),
                "bounds": bounds,
            },
        }
        status, by_name = _request(
            server.port, "POST", "/v1/locate", json.dumps(named).encode()
        )
        assert status == 200

        # Rebuild the explicit request from the history route's records:
        # centers verbatim, offsets wrapped relative to antenna 0.
        latest = {}
        for name in fleet.names:
            _, history = _request(server.port, "GET", f"/v1/calibrations/{name}")
            latest[name] = history["versions"][-1]
        reference = latest[fleet.names[0]]["phase_offset_rad"]
        explicit = dict(named)
        explicit["request"] = {
            "positions": [latest[name]["estimated_center"] for name in fleet.names],
            "phases_rad": phases.tolist(),
            "bounds": bounds,
            "offset_corrections_rad": [
                float(
                    np.mod(
                        latest[name]["phase_offset_rad"] - reference + np.pi,
                        2 * np.pi,
                    )
                    - np.pi
                )
                for name in fleet.names
            ],
        }
        status, by_arrays = _request(
            server.port, "POST", "/v1/locate", json.dumps(explicit).encode()
        )
        assert status == 200
        assert by_name["position"] == by_arrays["position"]
        assert by_name["config_hash"] == by_arrays["config_hash"]

    def test_locate_unknown_antenna_404(self, server):
        body = {
            "estimator": "lion-multiantenna",
            "request": {
                "antennas": ["ghost"],
                "phases_rad": [0.1],
                "bounds": [[-0.1, 0.1], [-0.1, 0.1], [-0.1, 0.1]],
            },
        }
        status, payload = _request(
            server.port, "POST", "/v1/locate", json.dumps(body).encode()
        )
        assert status == 404
        assert payload["error"]["kind"] == "unknown_antenna"


class TestWithoutStore:
    @pytest.fixture(scope="class")
    def bare_server(self):
        config = NetServeConfig(
            port=0, shards=1, worker_mode="thread", engine=ServeConfig(max_wait_s=0.001)
        )
        with ServerHandle(config) as handle:
            yield handle

    def test_registry_routes_404(self, bare_server):
        status, payload = _request(bare_server.port, "GET", "/v1/calibrations")
        assert status == 404 and payload["error"]["kind"] == "not_found"
        status, payload = _request(
            bare_server.port, "POST", "/v1/calibrations", _commit_body()
        )
        assert status == 404 and payload["error"]["kind"] == "not_found"

    def test_locate_naming_antennas_400(self, bare_server):
        body = {
            "estimator": "lion-multiantenna",
            "request": {"antennas": ["a"], "phases_rad": [0.1]},
        }
        status, payload = _request(
            bare_server.port, "POST", "/v1/locate", json.dumps(body).encode()
        )
        assert status == 400
        assert "calibration" in payload["error"]["message"]

    def test_statz_reports_disabled(self, bare_server):
        status, payload = _request(bare_server.port, "GET", "/statz")
        assert status == 200
        assert payload["calibration"] == {"enabled": False}


class TestWireParsing:
    def test_antennas_parse_to_string_tuple(self):
        body = json.dumps(
            {
                "estimator": "lion-multiantenna",
                "request": {"antennas": ["a", "b"], "phases_rad": [0.1, 0.2]},
            }
        ).encode()
        call = parse_locate_body(body)
        assert call.scalars["antennas"] == ("a", "b")

    @pytest.mark.parametrize("antennas", ["a", [], [""], [1, 2], ["a", 3]])
    def test_bad_antennas_rejected(self, antennas):
        body = json.dumps(
            {
                "estimator": "lion-multiantenna",
                "request": {"antennas": antennas, "phases_rad": [0.1]},
            }
        ).encode()
        with pytest.raises(BadRequestError):
            parse_locate_body(body)
