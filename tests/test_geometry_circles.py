"""Tests for repro.geometry.circles."""

import numpy as np
import pytest

from repro.geometry.circles import (
    Circle,
    Sphere,
    circle_circle_intersection,
    sphere_sphere_intersection_circle,
)


class TestCircle:
    def test_contains_point_on_circle(self):
        assert Circle((0.0, 0.0), 5.0).contains([3.0, 4.0])

    def test_does_not_contain_interior_point(self):
        assert not Circle((0.0, 0.0), 5.0).contains([1.0, 1.0])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle((0.0, 0.0), -1.0)


class TestSphere:
    def test_contains(self):
        assert Sphere((0.0, 0.0, 0.0), 3.0).contains([2.0, 2.0, 1.0])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere((0.0, 0.0, 0.0), -0.1)


class TestCircleCircleIntersection:
    def test_two_intersections(self):
        points = circle_circle_intersection(
            Circle((0.0, 0.0), 1.0), Circle((1.0, 0.0), 1.0)
        )
        assert points.shape == (2, 2)
        for point in points:
            assert np.linalg.norm(point) == pytest.approx(1.0)
            assert np.linalg.norm(point - [1.0, 0.0]) == pytest.approx(1.0)

    def test_tangent_circles_single_point(self):
        points = circle_circle_intersection(
            Circle((0.0, 0.0), 1.0), Circle((2.0, 0.0), 1.0)
        )
        assert points.shape == (1, 2)
        assert points[0] == pytest.approx([1.0, 0.0])

    def test_disjoint_circles_empty(self):
        points = circle_circle_intersection(
            Circle((0.0, 0.0), 1.0), Circle((5.0, 0.0), 1.0)
        )
        assert points.shape == (0, 2)

    def test_nested_circles_empty(self):
        points = circle_circle_intersection(
            Circle((0.0, 0.0), 5.0), Circle((0.5, 0.0), 1.0)
        )
        assert points.shape == (0, 2)

    def test_concentric_rejected(self):
        with pytest.raises(ValueError):
            circle_circle_intersection(
                Circle((1.0, 1.0), 1.0), Circle((1.0, 1.0), 2.0)
            )


class TestSphereSphereIntersection:
    def test_intersection_circle_geometry(self):
        result = sphere_sphere_intersection_circle(
            Sphere((0.0, 0.0, 0.0), 1.0), Sphere((1.0, 0.0, 0.0), 1.0)
        )
        assert result is not None
        center, normal, radius = result
        assert center == pytest.approx([0.5, 0.0, 0.0])
        assert abs(normal[0]) == pytest.approx(1.0)
        assert radius == pytest.approx(np.sqrt(3.0) / 2.0)

    def test_points_on_intersection_circle_lie_on_both_spheres(self):
        s1 = Sphere((0.0, 0.0, 0.0), 1.3)
        s2 = Sphere((0.7, 0.4, 0.1), 1.1)
        result = sphere_sphere_intersection_circle(s1, s2)
        assert result is not None
        center, normal, radius = result
        seed = np.array([0.0, 0.0, 1.0])
        u = np.cross(normal, seed)
        u /= np.linalg.norm(u)
        v = np.cross(normal, u)
        for angle in np.linspace(0, 2 * np.pi, 7):
            point = center + radius * (np.cos(angle) * u + np.sin(angle) * v)
            assert s1.contains(point, tol=1e-9)
            assert s2.contains(point, tol=1e-9)

    def test_disjoint_returns_none(self):
        assert (
            sphere_sphere_intersection_circle(
                Sphere((0.0, 0.0, 0.0), 1.0), Sphere((5.0, 0.0, 0.0), 1.0)
            )
            is None
        )

    def test_tangent_zero_radius(self):
        result = sphere_sphere_intersection_circle(
            Sphere((0.0, 0.0, 0.0), 1.0), Sphere((2.0, 0.0, 0.0), 1.0)
        )
        assert result is not None
        _, _, radius = result
        assert radius == pytest.approx(0.0)

    def test_concentric_rejected(self):
        with pytest.raises(ValueError):
            sphere_sphere_intersection_circle(
                Sphere((0.0, 0.0, 0.0), 1.0), Sphere((0.0, 0.0, 0.0), 2.0)
            )
