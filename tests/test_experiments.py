"""Tests for the experiment harness (metrics, scenarios, figure registry)."""

import numpy as np
import pytest

from repro.experiments.figures import FIGURE_RUNNERS, run_figure
from repro.experiments.metrics import (
    ExperimentResult,
    axis_errors,
    distance_error,
    error_cdf,
    summarize_errors,
)
from repro.experiments.scenarios import (
    make_clutter_scatterers,
    make_room_reflectors,
    standard_antenna,
)


class TestMetrics:
    def test_distance_error(self):
        assert distance_error(np.array([3.0, 4.0]), np.zeros(2)) == pytest.approx(5.0)

    def test_distance_error_shape_checked(self):
        with pytest.raises(ValueError):
            distance_error(np.zeros(2), np.zeros(3))

    def test_axis_errors(self):
        errors = axis_errors(np.array([1.0, -2.0]), np.array([0.5, 1.0]))
        assert errors == pytest.approx([0.5, 3.0])

    def test_summarize(self):
        stats = summarize_errors([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
        assert stats["max"] == pytest.approx(4.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    def test_error_cdf(self):
        cdf = error_cdf(list(range(1, 101)), levels=(0.5, 0.9))
        assert cdf[0.5] == pytest.approx(50.5)
        assert cdf[0.9] == pytest.approx(90.1)


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("figX", "test", columns=["a", "b"])
        result.add_row(a=1, b=2.0)
        result.add_row(a=3, b=4.0)
        assert result.column("b") == [2.0, 4.0]

    def test_unknown_column_rejected(self):
        result = ExperimentResult("figX", "test", columns=["a"])
        with pytest.raises(KeyError):
            result.add_row(z=1)

    def test_unknown_column_lookup_rejected(self):
        result = ExperimentResult("figX", "test", columns=["a"])
        with pytest.raises(KeyError):
            result.column("z")

    def test_format_table_contains_data(self):
        result = ExperimentResult(
            "figX", "demo", columns=["name", "value"], paper_expectation="exp", notes="n"
        )
        result.add_row(name="alpha", value=1.2345)
        text = result.format_table()
        assert "figX" in text
        assert "alpha" in text
        assert "1.234" in text
        assert "paper:" in text
        assert "notes:" in text


class TestScenarios:
    def test_standard_antenna_geometry(self, rng):
        antenna = standard_antenna(rng, depth_m=0.9, x_m=0.1, height_m=0.2)
        assert antenna.physical_center_array == pytest.approx([0.1, 0.9, 0.2])
        assert 0.02 <= np.linalg.norm(antenna.center_displacement) <= 0.03

    def test_room_reflectors(self, rng):
        antenna = standard_antenna(rng)
        reflectors = make_room_reflectors(antenna, strength=0.3)
        assert len(reflectors) == 3  # side wall, back wall, floor

    def test_room_reflectors_with_scatterer(self, rng):
        antenna = standard_antenna(rng)
        reflectors = make_room_reflectors(antenna, scatterer_strength=0.1)
        assert len(reflectors) == 4

    def test_clutter_scatterers(self, rng):
        scatterers = make_clutter_scatterers(rng, count=5)
        assert len(scatterers) == 5
        with pytest.raises(ValueError):
            make_clutter_scatterers(rng, count=0)

    def test_make_conveyor_scan(self, rng):
        from repro.experiments.scenarios import EvaluationGeometry, make_conveyor_scan

        geometry = EvaluationGeometry()
        assert geometry.track_length_m == pytest.approx(2.5)
        antenna = standard_antenna(rng, depth_m=geometry.default_depth_m)
        scan = make_conveyor_scan(antenna, rng, track_half_length_m=0.5,
                                  read_rate_hz=30.0)
        assert len(scan) > 100
        assert scan.positions[:, 1] == pytest.approx(np.zeros(len(scan)))
        # Off-beam reads get noisier by default (SNR-scaled model).
        assert not scan.exclude_mask.any()


class TestFigureRegistry:
    def test_all_paper_figures_present(self):
        from repro.experiments.figures import EXTENSION_RUNNERS, PAPER_RUNNERS

        expected = {
            "fig02", "fig03", "fig04", "fig06", "fig09", "fig13a", "fig13b",
            "fig14a", "fig14b", "fig15", "fig16_17", "fig18", "fig19_20", "fig21",
        }
        assert set(PAPER_RUNNERS) == expected
        assert set(EXTENSION_RUNNERS) == {"ext_online", "ext_multiref", "ext_wander"}
        assert set(FIGURE_RUNNERS) == expected | set(EXTENSION_RUNNERS)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")


@pytest.mark.slow
class TestFigureRunnersFast:
    """Smoke-run every figure in fast mode; check structure, not values."""

    @pytest.mark.parametrize("figure_id", sorted(FIGURE_RUNNERS))
    def test_runner_produces_rows(self, figure_id):
        result = run_figure(figure_id, seed=1, fast=True)
        assert result.figure_id == figure_id
        assert result.rows, f"{figure_id} produced no rows"
        assert result.columns
        for row in result.rows:
            assert set(row) <= set(result.columns)

    def test_fig02_valley_within_centimeters(self):
        result = run_figure("fig02", seed=0, fast=True)
        for row in result.rows:
            assert abs(row["valley_offset_cm"] - row["true_displacement_cm"]) < 2.0

    def test_fig13b_lion_faster_than_dah(self):
        result = run_figure("fig13b", seed=0, fast=True)
        seconds = {row["method"]: row["seconds"] for row in result.rows}
        assert seconds["LION 2D"] < seconds["DAH 2D"]
        assert seconds["LION 3D"] < seconds["DAH 3D"]

    def test_fig15_wls_beats_ls(self):
        result = run_figure("fig15", seed=0, fast=True)
        means = {row["method"]: row["mean_error_cm"] for row in result.rows}
        assert means["WLS"] < means["LS"]

    def test_fig21_error_decreases_with_radius(self):
        result = run_figure("fig21", seed=0, fast=True)
        totals = result.column("err_total_cm")
        assert totals[-1] < totals[0]
