"""Tests for repro.core.localizer — the end-to-end LION pipeline."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan, TwoLineScan


def _wrapped_phases(positions, target, offset=0.9):
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    return np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset, TWO_PI)


@pytest.fixture
def exact_localizer():
    return LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))


class TestNoiselessExactness:
    def test_circle_scan_2d(self, exact_localizer):
        angles = np.linspace(0, 2 * np.pi, 300, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        target = np.array([0.8, 0.4])
        result = exact_localizer.locate(positions, _wrapped_phases(positions, target))
        assert result.position == pytest.approx(target, abs=1e-6)
        assert result.recovered_axis is None

    def test_linear_scan_2d_lower_dimension(self, exact_localizer):
        x = np.linspace(-0.3, 0.3, 200)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.2, 1.0])
        result = exact_localizer.locate(positions, _wrapped_phases(positions, target))
        assert result.recovered_axis == 1
        assert result.position == pytest.approx(target, abs=1e-6)

    def test_diagonal_linear_scan_2d(self, exact_localizer):
        """A non-axis-aligned line is handled via the line-frame rotation."""
        t = np.linspace(0, 0.6, 200)
        direction = np.array([np.cos(0.4), np.sin(0.4)])
        positions = t[:, np.newaxis] * direction[np.newaxis, :]
        # Target on the positive (left) side of the travel direction.
        normal = np.array([-direction[1], direction[0]])
        target = positions[100] + 0.9 * normal
        result = exact_localizer.locate(positions, _wrapped_phases(positions, target))
        assert result.position == pytest.approx(target, abs=1e-5)

    def test_three_line_scan_3d(self):
        scan = ThreeLineScan(-0.5, 0.5)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        target = np.array([0.1, 0.8, 0.2])
        phases = _wrapped_phases(samples.positions, target)
        localizer = LionLocalizer(dim=3, preprocess=PreprocessConfig(smoothing_window=1))
        result = localizer.locate(
            samples.positions,
            phases,
            segment_ids=samples.segment_ids,
            exclude_mask=scan.transit_mask(samples),
        )
        assert result.position == pytest.approx(target, abs=1e-6)
        assert result.recovered_axis is None

    def test_two_line_scan_3d_recovers_z(self):
        scan = TwoLineScan(-0.5, 0.5)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        target = np.array([0.0, 0.7, 0.25])
        phases = _wrapped_phases(samples.positions, target)
        localizer = LionLocalizer(dim=3, preprocess=PreprocessConfig(smoothing_window=1))
        result = localizer.locate(
            samples.positions,
            phases,
            segment_ids=samples.segment_ids,
            exclude_mask=scan.transit_mask(samples),
        )
        assert result.recovered_axis == 2
        assert result.position == pytest.approx(target, abs=1e-5)


class TestNoisyAccuracy:
    def test_2d_noisy_subcentimeter(self, rng):
        antenna = Antenna(physical_center=(0.2, 1.0, 0.0), boresight=(0, -1, 0))
        scan = simulate_scan(
            LinearTrajectory((-0.4, 0, 0), (0.4, 0, 0)),
            antenna,
            rng=rng,
            noise=GaussianPhaseNoise(0.1),
        )
        result = LionLocalizer(dim=2).locate(scan.positions, scan.phases)
        error = np.linalg.norm(result.position - antenna.phase_center[:2])
        assert error < 0.01

    def test_3d_noisy(self, rng):
        antenna = Antenna(physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0))
        scan = simulate_scan(ThreeLineScan(-0.5, 0.5), antenna, rng=rng,
                             noise=GaussianPhaseNoise(0.05), read_rate_hz=60.0)
        result = LionLocalizer(dim=3).locate(
            scan.positions, scan.phases,
            segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
        )
        error = np.linalg.norm(result.position - antenna.phase_center)
        assert error < 0.01


class TestHardwareOffsetsInvariance:
    def test_offsets_do_not_affect_result(self, rng):
        """Phase differences cancel theta_T + theta_R (Sec. II-B)."""
        x = np.linspace(-0.3, 0.3, 200)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.1, 0.9])
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        results = [
            localizer.locate(positions, _wrapped_phases(positions, target, offset))
            for offset in (0.0, 1.3, 4.5)
        ]
        for result in results[1:]:
            assert result.position == pytest.approx(results[0].position, abs=1e-9)


class TestExcludeMaskAndReference:
    def test_exclude_mask_filters_equations(self, exact_localizer):
        x = np.linspace(-0.5, 0.5, 300)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.0, 0.8])
        phases = _wrapped_phases(positions, target)
        # Corrupt the reads at |x| > 0.3 badly, then exclude them.
        corrupted = phases.copy()
        mask = np.abs(x) > 0.3
        result = exact_localizer.locate(positions, corrupted, exclude_mask=mask)
        assert result.position == pytest.approx(target, abs=1e-6)

    def test_explicit_reference_index(self, exact_localizer):
        x = np.linspace(-0.3, 0.3, 100)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.0, 1.0])
        result = exact_localizer.locate(
            positions, _wrapped_phases(positions, target), reference_index=10
        )
        assert result.position == pytest.approx(target, abs=1e-6)
        assert result.reference_position == pytest.approx(positions[10])

    def test_too_few_reads_rejected(self, exact_localizer):
        with pytest.raises(ValueError):
            exact_localizer.locate(np.zeros((2, 2)), np.zeros(2))

    def test_all_excluded_rejected(self, exact_localizer):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        with pytest.raises(ValueError):
            exact_localizer.locate(
                positions, np.zeros(10), exclude_mask=np.ones(10, dtype=bool)
            )

    def test_shape_mismatch_rejected(self, exact_localizer):
        with pytest.raises(ValueError):
            exact_localizer.locate(np.zeros((5, 2)), np.zeros(4))


class TestUnobservableGeometry:
    def test_line_scan_cannot_give_3d(self):
        x = np.linspace(-0.5, 0.5, 100)
        positions = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        target = np.array([0.0, 0.8, 0.0])
        phases = _wrapped_phases(positions, target)
        localizer = LionLocalizer(dim=3)
        with pytest.raises(ValueError):
            localizer.locate(positions, phases)


class TestConfiguration:
    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            LionLocalizer(dim=4)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            LionLocalizer(method="magic")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            LionLocalizer(interval_m=-0.1)

    def test_ls_method_runs(self, rng):
        x = np.linspace(-0.3, 0.3, 100)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.0, 1.0])
        localizer = LionLocalizer(
            dim=2, method="ls", preprocess=PreprocessConfig(smoothing_window=1)
        )
        result = localizer.locate(positions, _wrapped_phases(positions, target))
        assert result.position == pytest.approx(target, abs=1e-6)
