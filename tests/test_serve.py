"""Serving engine: batching bit-identity, backpressure, deadlines, isolation.

The engine's contract is that putting a caller behind it changes nothing
observable except wall-clock: batched reports are field-identical to the
scalar path (positions, residuals, diagnostics, config hashes), failures
surface as exactly the scalar path's exceptions, and one bad request
never perturbs its batch neighbours. These tests pin that contract with
deterministic single-stepping (``start=False`` + ``drain_once``) plus a
concurrent end-to-end load test.
"""

import os
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import TooFewReadsError
from repro.parallel import get_executor
from repro.pipeline import EstimationRequest, estimate, resolve_config
from repro.serve import (
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
    ResultCache,
    ServeConfig,
    ServeEngine,
    is_batchable,
)
from repro.serve.bench import build_requests, run_load


def _request(seed=0, n=240, target=(0.08, 0.85)):
    """One re-noised line-scan request (the canonical serving workload)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(-0.6, 0.6, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - np.asarray(target), axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.4 + rng.normal(0.0, 0.05, n),
        TWO_PI,
    )
    return EstimationRequest(positions=positions, phases_rad=phases)


def _assert_reports_identical(ours, theirs):
    assert np.array_equal(ours.position, theirs.position)
    assert ours.reference_distance_m == theirs.reference_distance_m
    assert np.array_equal(ours.residuals, theirs.residuals)
    assert ours.diagnostics == theirs.diagnostics
    assert ours.config_hash == theirs.config_hash


class TestBatchGrouping:
    def test_batched_reports_bit_identical_to_scalar(self):
        requests = [_request(seed) for seed in range(12)]
        with ServeEngine(ServeConfig(max_batch_size=12), start=False) as engine:
            tickets = [engine.submit("lion", request) for request in requests]
            assert engine.drain_once() == 12
            reports = [ticket.result(timeout=0) for ticket in tickets]
        stats = engine.stats()
        assert stats["batches"] == 1
        assert stats["batched_requests"] == 12
        for request, report in zip(requests, reports):
            _assert_reports_identical(report, estimate("lion", request))

    def test_incompatible_configs_split_groups(self):
        request = _request(3)
        with ServeEngine(start=False) as engine:
            first = engine.submit("lion", request)
            second = engine.submit("lion", request, config={"interval_m": 0.2})
            assert engine.drain_once() == 1
            assert first.done() and not second.done()
            assert engine.drain_once() == 1
            assert second.done()
        assert first.result(timeout=0).config_hash != second.result(timeout=0).config_hash

    def test_max_batch_size_bounds_one_dispatch(self):
        requests = [_request(seed) for seed in range(5)]
        with ServeEngine(ServeConfig(max_batch_size=2), start=False) as engine:
            for request in requests:
                engine.submit("lion", request)
            assert engine.drain_once() == 2
            assert engine.drain_once() == 2
            assert engine.drain_once() == 1
        assert engine.stats()["completed"] == 5

    def test_non_batchable_method_routes_scalar(self):
        assert is_batchable("lion", resolve_config("lion", None))
        assert not is_batchable("lion", resolve_config("lion", {"method": "ls"}))
        assert not is_batchable("parabola", resolve_config("parabola", None))
        request = _request(1)
        with ServeEngine(start=False) as engine:
            ticket = engine.submit("lion", request, config={"method": "ls"})
            engine.drain_once()
        stats = engine.stats()
        assert stats["scalar_requests"] == 1
        assert stats["batched_requests"] == 0
        _assert_reports_identical(
            ticket.result(timeout=0), estimate("lion", request, {"method": "ls"})
        )


class TestBackpressure:
    def test_queue_full_raises(self):
        engine = ServeEngine(ServeConfig(max_queue_depth=2), start=False)
        engine.submit("lion", _request(0))
        engine.submit("lion", _request(1))
        with pytest.raises(QueueFullError):
            engine.submit("lion", _request(2))
        assert engine.stats()["rejected"] == 1
        engine.close()

    def test_drain_frees_capacity(self):
        engine = ServeEngine(ServeConfig(max_queue_depth=1, max_batch_size=1), start=False)
        engine.submit("lion", _request(0))
        engine.drain_once()
        ticket = engine.submit("lion", _request(1))  # does not raise
        engine.close()
        assert ticket.done()

    def test_closed_engine_rejects_submissions(self):
        engine = ServeEngine(start=False)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit("lion", _request(0))


class TestDeadlines:
    def test_expired_request_gets_deadline_error(self):
        with ServeEngine(start=False) as engine:
            ticket = engine.submit("lion", _request(0), deadline_s=1e-4)
            time.sleep(0.01)
            engine.drain_once()
            with pytest.raises(DeadlineExceededError):
                ticket.result(timeout=0)
        assert engine.stats()["expired"] == 1

    def test_expired_member_does_not_poison_batch(self):
        healthy = _request(5)
        with ServeEngine(start=False) as engine:
            doomed = engine.submit("lion", _request(4), deadline_s=1e-4)
            alive = engine.submit("lion", healthy)
            time.sleep(0.01)
            assert engine.drain_once() == 2
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=0)
        _assert_reports_identical(alive.result(timeout=0), estimate("lion", healthy))

    def test_default_deadline_from_config(self):
        config = ServeConfig(default_deadline_s=1e-4)
        with ServeEngine(config, start=False) as engine:
            ticket = engine.submit("lion", _request(0))
            time.sleep(0.01)
            engine.drain_once()
            assert isinstance(ticket.exception(timeout=0), DeadlineExceededError)

    def test_cancel_while_queued(self):
        with ServeEngine(start=False) as engine:
            ticket = engine.submit("lion", _request(0))
            assert ticket.cancel()
            engine.drain_once()
            assert ticket.cancelled()
        assert engine.stats()["cancelled"] == 1


class TestMemberIsolation:
    def test_degenerate_member_degrades_alone(self):
        bad = EstimationRequest(
            positions=np.array([[0.0, 0.0], [0.1, 0.0]]),
            phases_rad=np.array([0.1, 0.2]),
        )
        good = [_request(seed) for seed in range(3)]
        with ServeEngine(ServeConfig(max_batch_size=4), start=False) as engine:
            tickets = [engine.submit("lion", request) for request in good]
            doomed = engine.submit("lion", bad)
            assert engine.drain_once() == 4
        with pytest.raises(TooFewReadsError):
            doomed.result(timeout=0)
        assert engine.stats()["scalar_fallbacks"] == 1
        for request, ticket in zip(good, tickets):
            _assert_reports_identical(ticket.result(timeout=0), estimate("lion", request))

    def test_missing_fields_surface_scalar_error(self):
        with ServeEngine(start=False) as engine:
            ticket = engine.submit("lion", EstimationRequest())
            engine.drain_once()
            error = ticket.exception(timeout=0)
        assert isinstance(error, ValueError)
        assert "positions" in str(error)

    def test_unknown_estimator_fails_at_submit(self):
        with ServeEngine(start=False) as engine:
            with pytest.raises(KeyError):
                engine.submit("no-such-method", _request(0))


class TestResultCache:
    def test_repeat_request_hits_cache(self):
        request = _request(7)
        with ServeEngine(ServeConfig(cache_entries=8)) as engine:
            first = engine.estimate("lion", request)
            second = engine.estimate("lion", request)
        assert second is first
        assert engine.stats()["cache_hits"] == 1

    def test_cache_disabled_by_zero_entries(self):
        request = _request(7)
        with ServeEngine(ServeConfig(cache_entries=0)) as engine:
            engine.estimate("lion", request)
            engine.estimate("lion", request)
        assert engine.stats()["cache_hits"] == 0

    def test_config_change_misses(self):
        request = _request(7)
        with ServeEngine(ServeConfig(cache_entries=8)) as engine:
            engine.estimate("lion", request)
            engine.estimate("lion", request, config={"interval_m": 0.2})
        assert engine.stats()["cache_hits"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        reports = {
            key: estimate("lion", _request(seed))
            for seed, key in enumerate(["a", "b", "c"])
        }
        cache.put(("lion", "h", "a"), reports["a"])
        cache.put(("lion", "h", "b"), reports["b"])
        assert cache.get(("lion", "h", "a")) is reports["a"]  # refresh a
        cache.put(("lion", "h", "c"), reports["c"])  # evicts b
        assert cache.get(("lion", "h", "b")) is None
        assert cache.get(("lion", "h", "a")) is reports["a"]
        assert cache.info()["size"] == 2

    def test_fingerprint_is_content_based(self):
        first, second = _request(9), _request(9)
        assert first is not second
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() != _request(10).fingerprint()


class TestConcurrency:
    def test_concurrent_submitters_deterministic(self):
        requests = [_request(seed) for seed in range(16)]
        expected = [estimate("lion", request) for request in requests]
        reports = [None] * len(requests)
        with ServeEngine(ServeConfig(max_batch_size=8, cache_entries=0)) as engine:

            def submitter(offset):
                for index in range(offset, len(requests), 4):
                    reports[index] = engine.estimate("lion", requests[index])

            threads = [threading.Thread(target=submitter, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for ours, theirs in zip(reports, expected):
            _assert_reports_identical(ours, theirs)

    def test_close_drains_accepted_requests(self):
        engine = ServeEngine(ServeConfig(max_batch_size=4))
        tickets = [engine.submit("lion", _request(seed)) for seed in range(6)]
        engine.close()
        assert all(ticket.done() for ticket in tickets)
        assert engine.stats()["completed"] == 6


class TestLifecycle:
    def test_close_reports_clean_join(self):
        engine = ServeEngine(ServeConfig())
        engine.submit("lion", _request(0))
        assert engine.close() is True
        assert engine.drained
        # Closing again is a cheap no-op that still reports success.
        assert engine.close() is True

    def test_close_never_started_engine(self):
        engine = ServeEngine(ServeConfig(), start=False)
        ticket = engine.submit("lion", _request(1))
        assert engine.close() is True
        assert ticket.done()

    def test_atexit_drains_forgotten_engine(self):
        # The batcher is a daemon thread, so a forgotten engine used to
        # die *silently mid-batch* at interpreter exit, leaving accepted
        # tickets unresolved. The module-level atexit hook must drain it.
        # atexit runs LIFO, so a checker registered *before* the engine
        # module is imported runs *after* the module's drain hook.
        script = textwrap.dedent(
            """
            import atexit
            import sys

            state = {}

            def check():
                ticket = state["ticket"]
                assert ticket.done(), "atexit drain left an accepted ticket unresolved"
                report = ticket.result(timeout=0)
                assert report.position.shape == (2,)
                sys.stdout.write("ATEXIT_DRAIN_OK")

            atexit.register(check)

            import numpy as np

            from repro.serve import ServeConfig, ServeEngine
            from repro.serve.bench import build_requests

            engine = ServeEngine(ServeConfig(max_wait_s=0.5, max_batch_size=64))
            state["ticket"] = engine.submit("lion", build_requests(1, 64, seed=3)[0])
            # Exit immediately, while the batcher still holds the window
            # open waiting for more arrivals — no close(), no drain.
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert result.returncode == 0, result.stderr
        assert "ATEXIT_DRAIN_OK" in result.stdout


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_batch_size": 0},
            {"max_wait_s": -0.1},
            {"cache_entries": -1},
            {"scalar_executor": "process"},
            {"default_deadline_s": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestMapCatching:
    def test_captures_failures_in_order(self):
        def work(value):
            if value % 2:
                raise RuntimeError(f"odd {value}")
            return value * 10

        outcomes = get_executor("serial").map_catching(work, [0, 1, 2, 3])
        assert [ok for ok, _ in outcomes] == [True, False, True, False]
        assert outcomes[0][1] == 0 and outcomes[2][1] == 20
        assert isinstance(outcomes[1][1], RuntimeError)

    def test_thread_backend_matches_serial(self):
        def work(value):
            if value == 2:
                raise ValueError("boom")
            return value + 1

        serial = get_executor("serial").map_catching(work, range(5))
        threaded = get_executor("thread", jobs=2).map_catching(work, range(5))
        assert [ok for ok, _ in serial] == [ok for ok, _ in threaded]


@pytest.mark.slow
class TestLoad:
    def test_load_generator_end_to_end(self):
        payload = run_load(requests=48, reads=300, batch_sizes=(1, 16), seed=2)
        assert payload["batch"]["16"]["requests_per_sec"] > 0
        assert payload["speedup_16_vs_1"] > 1.0

    def test_build_requests_deterministic(self):
        ours = build_requests(3, 50, seed=1)
        theirs = build_requests(3, 50, seed=1)
        for a, b in zip(ours, theirs):
            assert a.fingerprint() == b.fingerprint()
