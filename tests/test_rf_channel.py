"""Tests for repro.rf.channel — the end-to-end Eq. (1) phase model."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.rf.antenna import Antenna
from repro.rf.channel import Channel, ChannelConfig
from repro.rf.multipath import Reflector
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.rf.tag import Tag


def _clean_channel(antenna: Antenna, tag: Tag) -> Channel:
    return Channel(antenna=antenna, tag=tag, config=ChannelConfig(noise=NoPhaseNoise()))


class TestIdealPhase:
    def test_matches_eq1(self, ideal_antenna, ideal_tag):
        channel = _clean_channel(ideal_antenna, ideal_tag)
        position = (0.3, 0.0, 0.0)
        d = ideal_antenna.distance_to(position)
        expected = np.mod(2.0 * TWO_PI * d / DEFAULT_WAVELENGTH_M, TWO_PI)
        assert channel.ideal_phase(position) == pytest.approx(expected)

    def test_includes_hardware_offsets(self):
        antenna = Antenna(physical_center=(0, 1, 0), phase_offset_rad=0.7)
        tag = Tag(phase_offset_rad=0.5)
        channel = _clean_channel(antenna, tag)
        base = Channel(
            antenna=Antenna(physical_center=(0, 1, 0)),
            tag=Tag(),
            config=ChannelConfig(noise=NoPhaseNoise()),
        )
        position = (0.0, 0.0, 0.0)
        delta = np.mod(
            channel.ideal_phase(position) - base.ideal_phase(position), TWO_PI
        )
        assert delta == pytest.approx(1.2)


class TestObservePhase:
    def test_noiseless_equals_ideal(self, ideal_antenna, ideal_tag, rng):
        channel = _clean_channel(ideal_antenna, ideal_tag)
        position = (0.2, 0.1, 0.0)
        assert channel.observe_phase(position, rng) == pytest.approx(
            channel.ideal_phase(position)
        )

    def test_phase_uses_true_phase_center(self, rng):
        """The crux of the paper: signals emanate from the displaced center."""
        displaced = Antenna(
            physical_center=(0.0, 1.0, 0.0), center_displacement=(0.0, -0.05, 0.0)
        )
        channel = _clean_channel(displaced, Tag())
        position = (0.0, 0.0, 0.0)
        d_true = 0.95
        expected = np.mod(2.0 * TWO_PI * d_true / DEFAULT_WAVELENGTH_M, TWO_PI)
        assert channel.observe_phase(position, rng) == pytest.approx(expected)

    def test_noise_perturbs(self, ideal_antenna, ideal_tag, rng):
        channel = Channel(
            antenna=ideal_antenna,
            tag=ideal_tag,
            config=ChannelConfig(noise=GaussianPhaseNoise(0.1)),
        )
        position = (0.0, 0.0, 0.0)
        draws = [channel.observe_phase(position, rng) for _ in range(100)]
        assert np.std(draws) > 0.01

    def test_output_in_range(self, ideal_antenna, ideal_tag, rng):
        channel = Channel(
            antenna=ideal_antenna,
            tag=ideal_tag,
            config=ChannelConfig(noise=GaussianPhaseNoise(0.5)),
        )
        for x in np.linspace(-1, 1, 20):
            phase = channel.observe_phase((x, 0.0, 0.0), rng)
            assert 0.0 <= phase < TWO_PI

    def test_tag_at_phase_center_rejected(self, ideal_tag, rng):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0))
        channel = _clean_channel(antenna, ideal_tag)
        with pytest.raises(ValueError):
            channel.observe_phase((0.0, 0.0, 0.0), rng)


class TestMultipathDistortion:
    def test_multipath_shifts_phase(self, ideal_antenna, ideal_tag, rng):
        clean = _clean_channel(ideal_antenna, ideal_tag)
        dirty = Channel(
            antenna=ideal_antenna,
            tag=ideal_tag,
            config=ChannelConfig(
                noise=NoPhaseNoise(),
                reflectors=(Reflector((0.0, 4.0, 0.0), amplitude=0.5),),
            ),
        )
        positions = [(x, 0.0, 0.0) for x in np.linspace(-0.5, 0.5, 9)]
        deltas = [
            abs(dirty.observe_phase(p, rng) - clean.observe_phase(p, rng))
            for p in positions
        ]
        assert max(deltas) > 1e-3


class TestRssi:
    def test_decays_with_distance(self, ideal_antenna, ideal_tag):
        channel = _clean_channel(ideal_antenna, ideal_tag)
        near = channel.observe_rssi((0.0, 0.3, 0.0))
        far = channel.observe_rssi((0.0, -1.0, 0.0))
        assert near > far

    def test_decays_off_beam(self, ideal_antenna, ideal_tag):
        channel = _clean_channel(ideal_antenna, ideal_tag)
        boresight = channel.observe_rssi((0.0, 0.0, 0.0))
        off_beam = channel.observe_rssi((0.8, 0.8, 0.0))
        assert boresight > off_beam


class TestConfigValidation:
    def test_bad_wavelength_rejected(self):
        with pytest.raises(ValueError):
            ChannelConfig(wavelength_m=-1.0)
