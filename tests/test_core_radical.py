"""Tests for repro.core.radical — Eq. (7) and Eq. (9) row construction."""

import numpy as np
import pytest

from repro.core.radical import radical_row, radical_rows


def _exact_row_check(target, reference, position_i, position_j):
    """A radical row built from exact geometry must be satisfied by the target."""
    target = np.asarray(target, dtype=float)
    reference = np.asarray(reference, dtype=float)
    d_r = float(np.linalg.norm(target - reference))
    delta_i = float(np.linalg.norm(target - position_i)) - d_r
    delta_j = float(np.linalg.norm(target - position_j)) - d_r
    coefficients, kappa = radical_row(position_i, delta_i, position_j, delta_j)
    unknowns = np.concatenate([target, [d_r]])
    assert float(coefficients @ unknowns) == pytest.approx(kappa, abs=1e-9)


class TestRadicalRow2D:
    def test_exact_geometry_satisfies_row(self):
        _exact_row_check(
            target=[0.5, 1.2],
            reference=[0.0, 0.0],
            position_i=np.array([0.3, 0.0]),
            position_j=np.array([-0.3, 0.0]),
        )

    def test_many_random_geometries(self, rng):
        for _ in range(25):
            target = rng.uniform(-1, 1, size=2)
            points = rng.uniform(-1, 1, size=(3, 2))
            _exact_row_check(target, points[0], points[1], points[2])

    def test_coefficient_structure(self):
        coefficients, _ = radical_row(
            np.array([0.4, 0.0]), 0.01, np.array([0.1, 0.2]), 0.03
        )
        assert coefficients[0] == pytest.approx(2 * (0.4 - 0.1))
        assert coefficients[1] == pytest.approx(2 * (0.0 - 0.2))
        assert coefficients[2] == pytest.approx(2 * (0.01 - 0.03))

    def test_kappa_structure(self):
        pi, pj = np.array([0.4, 0.1]), np.array([0.1, 0.2])
        di, dj = 0.01, 0.03
        _, kappa = radical_row(pi, di, pj, dj)
        expected = pi @ pi - pj @ pj - di**2 + dj**2
        assert kappa == pytest.approx(expected)

    def test_coincident_positions_rejected(self):
        with pytest.raises(ValueError):
            radical_row(np.array([1.0, 1.0]), 0.0, np.array([1.0, 1.0]), 0.1)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            radical_row(np.array([1.0, 1.0]), 0.0, np.array([1.0, 1.0, 1.0]), 0.1)


class TestRadicalRow3D:
    def test_exact_geometry_satisfies_row(self, rng):
        for _ in range(25):
            target = rng.uniform(-1, 1, size=3)
            points = rng.uniform(-1, 1, size=(3, 3))
            _exact_row_check(target, points[0], points[1], points[2])

    def test_row_width(self):
        coefficients, _ = radical_row(
            np.array([1.0, 0.0, 0.0]), 0.0, np.array([0.0, 1.0, 0.0]), 0.0
        )
        assert coefficients.shape == (4,)


class TestRadicalRows:
    def test_matches_scalar_construction(self, rng):
        positions = rng.uniform(-1, 1, size=(6, 2))
        deltas = rng.uniform(-0.1, 0.1, size=6)
        pairs = [(0, 1), (2, 3), (1, 5)]
        matrix, rhs = radical_rows(positions, deltas, pairs)
        for row_index, (i, j) in enumerate(pairs):
            coefficients, kappa = radical_row(
                positions[i], deltas[i], positions[j], deltas[j]
            )
            assert matrix[row_index] == pytest.approx(coefficients)
            assert rhs[row_index] == pytest.approx(kappa)

    def test_shapes(self, rng):
        positions = rng.uniform(-1, 1, size=(5, 3))
        deltas = np.zeros(5)
        matrix, rhs = radical_rows(positions, deltas, [(0, 1), (1, 2)])
        assert matrix.shape == (2, 4)
        assert rhs.shape == (2,)

    def test_empty_pairs_rejected(self, rng):
        with pytest.raises(ValueError):
            radical_rows(np.zeros((3, 2)), np.zeros(3), [])

    def test_out_of_range_index_rejected(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            radical_rows(positions, np.zeros(2), [(0, 5)])

    def test_coincident_pair_rejected(self):
        positions = np.array([[0.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            radical_rows(positions, np.zeros(2), [(0, 1)])

    def test_delta_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            radical_rows(np.zeros((3, 2)), np.zeros(4), [(0, 1)])
