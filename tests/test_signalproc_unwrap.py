"""Tests for repro.signalproc.unwrap."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.signalproc.unwrap import (
    count_wraps,
    stitch_profiles,
    unwrap_error_estimate,
    unwrap_phase,
    unwrap_segments,
)
from repro.signalproc.wrapping import phase_from_distance, wrap_phase


def _linear_scan_profile(distances: np.ndarray) -> np.ndarray:
    """Wrapped phases of a smooth distance profile."""
    return wrap_phase(phase_from_distance(distances, wrapped=False))


class TestUnwrapPhase:
    def test_recovers_smooth_profile_up_to_constant(self):
        distances = np.linspace(0.8, 1.6, 400)
        expected = phase_from_distance(distances, wrapped=False)
        unwrapped = unwrap_phase(_linear_scan_profile(distances))
        offset = expected[0] - unwrapped[0]
        assert unwrapped + offset == pytest.approx(expected)

    def test_first_sample_preserved(self):
        wrapped = np.array([1.0, 1.2, 1.4])
        assert unwrap_phase(wrapped)[0] == pytest.approx(1.0)

    def test_no_jumps_after_unwrap(self):
        distances = np.linspace(0.5, 2.0, 600)
        unwrapped = unwrap_phase(_linear_scan_profile(distances))
        assert np.max(np.abs(np.diff(unwrapped))) < np.pi

    def test_single_sample(self):
        assert unwrap_phase(np.array([2.0])) == pytest.approx([2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            unwrap_phase(np.array([]))

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            unwrap_phase(np.array([1.0, 2.0]), jump_threshold_rad=0.0)


class TestCountWraps:
    def test_no_wraps(self):
        assert count_wraps(np.array([1.0, 1.1, 1.2])) == 0

    def test_counts_jumps(self):
        wrapped = np.array([6.2, 0.1, 6.2, 0.1])
        assert count_wraps(wrapped) == 3

    def test_short_input(self):
        assert count_wraps(np.array([1.0])) == 0


class TestUnwrapSegments:
    def test_each_segment_unwrapped_independently(self):
        d1 = np.linspace(1.0, 1.4, 100)
        d2 = np.linspace(1.4, 1.0, 100)
        segments = unwrap_segments(
            [_linear_scan_profile(d1), _linear_scan_profile(d2)]
        )
        assert len(segments) == 2
        for segment in segments:
            assert np.max(np.abs(np.diff(segment))) < np.pi


class TestStitchProfiles:
    def test_stitched_differences_match_distance_differences(self):
        """After stitching, cross-profile phase diffs follow 4*pi/lambda * dd."""
        d1 = np.linspace(1.0, 1.3, 120)
        d2 = np.linspace(1.25, 0.95, 120)
        profiles = unwrap_segments(
            [_linear_scan_profile(d1), _linear_scan_profile(d2)]
        )
        stitched = stitch_profiles(profiles, [d1[0], d2[0]])
        k = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M
        measured = stitched[1][40] - stitched[0][10]
        expected = k * (d2[40] - d1[10])
        assert measured == pytest.approx(expected, abs=1e-6)

    def test_first_profile_unchanged(self):
        p = [np.array([1.0, 1.2]), np.array([3.0, 3.3])]
        stitched = stitch_profiles(p, [1.0, 1.1])
        assert stitched[0] == pytest.approx(p[0])

    def test_shifts_are_wrap_multiples_when_consistent(self):
        d1 = np.linspace(1.0, 1.2, 50)
        d2 = np.linspace(1.18, 1.4, 50)
        profiles = unwrap_segments(
            [_linear_scan_profile(d1), _linear_scan_profile(d2)]
        )
        stitched = stitch_profiles(profiles, [d1[0], d2[0]])
        shift = stitched[1][0] - profiles[1][0]
        assert shift / TWO_PI == pytest.approx(round(shift / TWO_PI), abs=1e-6)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stitch_profiles([np.array([1.0])], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stitch_profiles([], [])


class TestUnwrapErrorEstimate:
    def test_zero_for_identical_shapes(self):
        profile = np.linspace(0.0, 10.0, 50)
        assert unwrap_error_estimate(profile, profile + 5.0) == pytest.approx(0.0)

    def test_positive_for_differing_shapes(self):
        a = np.linspace(0.0, 10.0, 50)
        b = a.copy()
        b[25:] += 1.0
        assert unwrap_error_estimate(a, b) > 0.1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unwrap_error_estimate(np.zeros(3), np.zeros(4))
