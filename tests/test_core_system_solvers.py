"""Tests for repro.core.system and repro.core.solvers."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.pairing import lag_pairs
from repro.core.solvers import solve_least_squares, solve_weighted_least_squares
from repro.core.system import LinearSystem, build_system, delta_distances
from repro.core.weights import huber_weights


def _exact_scan(target, positions, reference_index=0):
    """Exact delta distances for a target seen from scan positions."""
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    return distances - distances[reference_index]


class TestDeltaDistances:
    def test_matches_eq6(self):
        profile = np.array([0.0, TWO_PI, 2 * TWO_PI])
        deltas = delta_distances(profile, 0)
        assert deltas == pytest.approx(
            [0.0, DEFAULT_WAVELENGTH_M / 2.0, DEFAULT_WAVELENGTH_M]
        )

    def test_reference_index(self):
        profile = np.array([1.0, 2.0, 3.0])
        deltas = delta_distances(profile, 1)
        assert deltas[1] == 0.0
        assert deltas[0] < 0.0 < deltas[2]

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            delta_distances(np.zeros(3), 5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            delta_distances(np.array([]), 0)


class TestBuildSystem:
    def test_shapes_2d(self, rng):
        positions = rng.uniform(-1, 1, size=(20, 2))
        deltas = np.zeros(20)
        system = build_system(positions, deltas, lag_pairs(20, 5))
        assert system.matrix.shape == (15, 3)
        assert system.dim == 2

    def test_shapes_3d(self, rng):
        positions = rng.uniform(-1, 1, size=(10, 3))
        system = build_system(positions, np.zeros(10), lag_pairs(10, 2), dim=3)
        assert system.matrix.shape == (8, 4)

    def test_3d_positions_projected_for_2d(self, rng):
        positions = rng.uniform(-1, 1, size=(10, 3))
        system = build_system(positions, np.zeros(10), lag_pairs(10, 3), dim=2)
        assert system.matrix.shape[1] == 3

    def test_2d_positions_promoted_for_3d(self, rng):
        positions = rng.uniform(-1, 1, size=(10, 2))
        system = build_system(positions, np.zeros(10), lag_pairs(10, 3), dim=3)
        assert system.matrix.shape[1] == 4

    def test_column_excitation_flags_missing_axis(self):
        x = np.linspace(-0.5, 0.5, 30)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        target = np.array([0.2, 1.0])
        deltas = _exact_scan(target, positions)
        system = build_system(positions, deltas, lag_pairs(30, 10))
        observable = system.observable_coordinates()
        assert observable[0]
        assert not observable[1]

    def test_invalid_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            build_system(rng.uniform(size=(5, 2)), np.zeros(5), [(0, 1)], dim=4)


class TestLinearSystemValidation:
    def test_matrix_width_checked(self):
        with pytest.raises(ValueError):
            LinearSystem(matrix=np.zeros((3, 2)), rhs=np.zeros(3), dim=2)

    def test_rhs_length_checked(self):
        with pytest.raises(ValueError):
            LinearSystem(matrix=np.zeros((3, 3)), rhs=np.zeros(4), dim=2)

    def test_dim_checked(self):
        with pytest.raises(ValueError):
            LinearSystem(matrix=np.zeros((3, 5)), rhs=np.zeros(3), dim=4)


class TestSolveLeastSquares:
    def test_exact_recovery_2d(self, rng):
        """Noiseless radical systems recover target and d_r exactly."""
        for _ in range(10):
            target = rng.uniform(-1, 1, size=2)
            angles = rng.uniform(0, 2 * np.pi, size=30)
            positions = 0.4 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
            deltas = _exact_scan(target, positions)
            system = build_system(positions, deltas, lag_pairs(30, 7))
            solution = solve_least_squares(system)
            assert solution.position == pytest.approx(target, abs=1e-8)
            d_r = float(np.linalg.norm(target - positions[0]))
            assert solution.reference_distance == pytest.approx(d_r, abs=1e-8)

    def test_exact_recovery_3d(self, rng):
        target = np.array([0.1, 0.9, 0.4])
        positions = rng.uniform(-0.5, 0.5, size=(40, 3))
        deltas = _exact_scan(target, positions)
        system = build_system(positions, deltas, lag_pairs(40, 9), dim=3)
        solution = solve_least_squares(system)
        assert solution.position == pytest.approx(target, abs=1e-8)

    def test_residuals_zero_for_exact_data(self, rng):
        target = np.array([0.5, 0.8])
        positions = rng.uniform(-0.5, 0.5, size=(20, 2))
        deltas = _exact_scan(target, positions)
        system = build_system(positions, deltas, lag_pairs(20, 4))
        solution = solve_least_squares(system)
        assert solution.rms_residual == pytest.approx(0.0, abs=1e-10)

    def test_empty_system_rejected(self):
        system = LinearSystem(matrix=np.zeros((0, 3)), rhs=np.zeros(0), dim=2)
        with pytest.raises(ValueError):
            solve_least_squares(system)


class TestSolveWeightedLeastSquares:
    def _noisy_system_with_outliers(self, rng, outlier_count=6):
        target = np.array([0.2, 1.0])
        angles = np.linspace(0, 2 * np.pi, 80, endpoint=False)
        positions = 0.4 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        deltas = _exact_scan(target, positions)
        deltas += rng.normal(0.0, 0.0005, size=deltas.shape)
        corrupt = rng.choice(80, size=outlier_count, replace=False)
        deltas[corrupt] += rng.uniform(0.03, 0.06, size=outlier_count)
        system = build_system(positions, deltas, lag_pairs(80, 20))
        return system, target

    def test_wls_beats_ls_with_outliers(self, rng):
        wins = 0
        for _ in range(10):
            system, target = self._noisy_system_with_outliers(rng)
            ls_error = np.linalg.norm(solve_least_squares(system).position - target)
            wls_error = np.linalg.norm(
                solve_weighted_least_squares(system).position - target
            )
            wins += wls_error <= ls_error
        assert wins >= 7

    def test_outlier_rows_downweighted(self, rng):
        system, _ = self._noisy_system_with_outliers(rng)
        solution = solve_weighted_least_squares(system)
        worst = np.argsort(np.abs(solution.residuals))[-3:]
        cleanest = np.argsort(np.abs(solution.residuals))[:3]
        assert solution.weights[worst].mean() < solution.weights[cleanest].mean()

    def test_converges_on_clean_data(self, rng):
        target = np.array([0.5, 0.5])
        positions = rng.uniform(-0.5, 0.5, size=(30, 2))
        deltas = _exact_scan(target, positions)
        system = build_system(positions, deltas, lag_pairs(30, 6))
        solution = solve_weighted_least_squares(system)
        assert solution.converged
        assert solution.position == pytest.approx(target, abs=1e-6)

    def test_custom_weight_function(self, rng):
        system, target = self._noisy_system_with_outliers(rng)
        solution = solve_weighted_least_squares(system, weight_function=huber_weights)
        assert np.linalg.norm(solution.position - target) < 0.05

    def test_iteration_parameters_validated(self, rng):
        system, _ = self._noisy_system_with_outliers(rng)
        with pytest.raises(ValueError):
            solve_weighted_least_squares(system, max_iterations=0)
        with pytest.raises(ValueError):
            solve_weighted_least_squares(system, tolerance_m=0.0)

    def test_mean_residual_is_normalized(self, rng):
        system, _ = self._noisy_system_with_outliers(rng)
        solution = solve_weighted_least_squares(system)
        assert solution.normalized_residuals.shape == solution.residuals.shape
        norms = np.linalg.norm(system.matrix, axis=1)
        assert solution.normalized_residuals == pytest.approx(
            solution.residuals / norms
        )
