"""Tests for the trajectory subpackage."""

import numpy as np
import pytest

from repro.trajectory.base import TrajectorySamples
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan, TwoLineScan
from repro.trajectory.waypoints import WaypointTrajectory


class TestLinearTrajectory:
    def test_endpoints(self):
        line = LinearTrajectory((0, 0, 0), (1, 0, 0))
        assert line.position_at(0.0) == pytest.approx([0, 0, 0])
        assert line.position_at(1.0) == pytest.approx([1, 0, 0])

    def test_midpoint(self):
        line = LinearTrajectory((0, 0, 0), (2, 0, 0))
        assert line.position_at(1.0) == pytest.approx([1, 0, 0])

    def test_length(self):
        line = LinearTrajectory((0, 0, 0), (3, 4, 0))
        assert line.total_length_m == pytest.approx(5.0)

    def test_out_of_range_rejected(self):
        line = LinearTrajectory((0, 0, 0), (1, 0, 0))
        with pytest.raises(ValueError):
            line.position_at(1.5)
        with pytest.raises(ValueError):
            line.position_at(-0.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            LinearTrajectory((1, 1, 1), (1, 1, 1))

    def test_sampling_spacing_matches_speed_and_rate(self):
        line = LinearTrajectory((0, 0, 0), (1, 0, 0))
        samples = line.sample(speed_mps=0.1, read_rate_hz=100.0)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        assert steps[:-1] == pytest.approx(0.001, rel=1e-6)

    def test_sampling_validation(self):
        line = LinearTrajectory((0, 0, 0), (1, 0, 0))
        with pytest.raises(ValueError):
            line.sample(speed_mps=0.0)
        with pytest.raises(ValueError):
            line.sample(read_rate_hz=0.0)


class TestCircularTrajectory:
    def test_points_on_circle(self):
        circle = CircularTrajectory((0, 0, 0), radius=0.3)
        samples = circle.sample(speed_mps=0.1, read_rate_hz=50.0)
        radii = np.linalg.norm(samples.positions[:, :2], axis=1)
        assert radii == pytest.approx(0.3)

    def test_full_turn_closes(self):
        circle = CircularTrajectory((1, 2, 0), radius=0.5)
        start = circle.position_at(0.0)
        end = circle.position_at(circle.total_length_m)
        assert start == pytest.approx(end)

    def test_stays_in_plane(self):
        circle = CircularTrajectory((0, 0, 1), radius=0.2, normal=(0, 0, 1))
        samples = circle.sample(speed_mps=0.05, read_rate_hz=30.0)
        assert samples.positions[:, 2] == pytest.approx(np.ones(len(samples)))

    def test_partial_turns(self):
        circle = CircularTrajectory((0, 0, 0), radius=1.0, turns=0.5)
        assert circle.total_length_m == pytest.approx(np.pi)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircularTrajectory((0, 0, 0), radius=0.0)
        with pytest.raises(ValueError):
            CircularTrajectory((0, 0, 0), radius=1.0, turns=0.0)


class TestThreeLineScan:
    def test_line_geometry(self):
        scan = ThreeLineScan(-0.5, 0.5, y_offset=0.2, z_offset=0.3)
        assert scan.line1.start == pytest.approx([-0.5, 0.0, 0.0])
        assert scan.line2.start[2] == pytest.approx(0.3)
        assert scan.line3.start[1] == pytest.approx(-0.2)

    def test_transits_connect_lines(self):
        scan = ThreeLineScan(-0.5, 0.5)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=60.0)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        # The whole traversal is continuous: no jump exceeds the sample step.
        assert np.max(steps) < 0.01

    def test_data_and_transit_segments(self):
        scan = ThreeLineScan(-0.5, 0.5)
        assert len(scan.data_segment_ids) == 3
        assert len(scan.transit_segment_ids) == 2

    def test_transit_mask(self):
        scan = ThreeLineScan(-0.5, 0.5)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=60.0)
        mask = scan.transit_mask(samples)
        assert mask.any()
        assert not mask.all()
        # Non-transit reads lie exactly on one of the three lines.
        data = samples.positions[~mask]
        on_line = (
            (np.isclose(data[:, 1], 0.0) & np.isclose(data[:, 2], 0.0))
            | (np.isclose(data[:, 1], 0.0) & np.isclose(data[:, 2], scan.z_offset))
            | (np.isclose(data[:, 1], -scan.y_offset) & np.isclose(data[:, 2], 0.0))
        )
        assert on_line.all()

    def test_without_transits(self):
        scan = ThreeLineScan(-0.5, 0.5, include_transits=False)
        assert len(scan.transit_segment_ids) == 0
        assert len(scan.lines) == 3

    def test_line_ids_for_pairing_ordered(self):
        scan = ThreeLineScan(-0.5, 0.5)
        l1, l2, l3 = scan.line_ids_for_pairing()
        assert l1 < l2 < l3

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreeLineScan(0.0, 0.0)
        with pytest.raises(ValueError):
            ThreeLineScan(-0.5, 0.5, y_offset=0.0)


class TestTwoLineScan:
    def test_lines_in_plane(self):
        scan = TwoLineScan(-0.4, 0.4, y_offset=0.25)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        assert samples.positions[:, 2] == pytest.approx(np.zeros(len(samples)))

    def test_continuous_traversal(self):
        scan = TwoLineScan(-0.4, 0.4)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=60.0)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        assert np.max(steps) < 0.01


class TestWaypointTrajectory:
    def test_length(self):
        path = WaypointTrajectory([(0, 0, 0), (1, 0, 0), (1, 1, 0)])
        assert path.total_length_m == pytest.approx(2.0)

    def test_interpolation(self):
        path = WaypointTrajectory([(0, 0, 0), (2, 0, 0)])
        assert path.position_at(0.5) == pytest.approx([0.5, 0, 0])

    def test_corner(self):
        path = WaypointTrajectory([(0, 0, 0), (1, 0, 0), (1, 2, 0)])
        assert path.position_at(1.0) == pytest.approx([1, 0, 0])
        assert path.position_at(2.0) == pytest.approx([1, 1, 0])

    def test_duplicate_waypoints_rejected(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([(0, 0, 0), (0, 0, 0), (1, 0, 0)])

    def test_single_waypoint_rejected(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([(0, 0, 0)])


class TestTrajectorySamples:
    def test_segment_extraction(self):
        samples = TrajectorySamples(
            positions=np.zeros((4, 3)),
            timestamps_s=np.arange(4.0),
            segment_ids=np.array([0, 0, 1, 1]),
        )
        segment = samples.segment(1)
        assert len(segment) == 2

    def test_missing_segment_rejected(self):
        samples = TrajectorySamples(
            positions=np.zeros((2, 3)),
            timestamps_s=np.arange(2.0),
            segment_ids=np.zeros(2, dtype=int),
        )
        with pytest.raises(KeyError):
            samples.segment(7)

    def test_restricted_to_range(self):
        positions = np.zeros((5, 3))
        positions[:, 0] = [-2.0, -0.5, 0.0, 0.5, 2.0]
        samples = TrajectorySamples(
            positions=positions,
            timestamps_s=np.arange(5.0),
            segment_ids=np.zeros(5, dtype=int),
        )
        restricted = samples.restricted_to_range(axis=0, center=0.0, width=2.0)
        assert len(restricted) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TrajectorySamples(
                positions=np.zeros((3, 2)),
                timestamps_s=np.arange(3.0),
                segment_ids=np.zeros(3, dtype=int),
            )
