"""Tests for repro.viz — ASCII rendering."""

import numpy as np
import pytest

from repro.viz import heatmap, line_plot, scatter_2d, sparkline


class TestSparkline:
    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5])
        blocks = "▁▂▃▄▅▆▇█"
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)
        assert levels[0] == 0 and levels[-1] == len(blocks) - 1

    def test_constant_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_resampling_width(self):
        line = sparkline(np.linspace(0, 1, 100), width=10)
        assert len(line) == 10

    def test_nan_renders_space(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line[1] == " "

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestLinePlot:
    def test_contains_markers_and_labels(self):
        text = line_plot([0, 1, 2], [5.0, 7.0, 6.0], title="demo")
        assert "demo" in text
        assert "*" in text
        assert "7" in text and "5" in text  # y labels
        assert "0" in text and "2" in text  # x labels

    def test_extremes_placed_correctly(self):
        text = line_plot([0, 1], [0.0, 1.0], width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert "*" in rows[0]    # max at top
        assert "*" in rows[-1]   # min at bottom

    def test_constant_series_ok(self):
        text = line_plot([0, 1, 2], [3.0, 3.0, 3.0])
        assert "*" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([1], [1, 2])
        with pytest.raises(ValueError):
            line_plot([], [])
        with pytest.raises(ValueError):
            line_plot([1, 2], [1, 2], width=2)
        with pytest.raises(ValueError):
            line_plot([1.0], [float("nan")])


class TestHeatmap:
    def test_peak_is_darkest(self):
        grid = np.zeros((30, 30))
        grid[20, 10] = 1.0
        text = heatmap(grid, width=30, height=30)
        assert "@" in text
        assert text.count("@") == 1

    def test_downsamples_large_grids(self):
        grid = np.random.default_rng(0).random((500, 400))
        text = heatmap(grid, width=40, height=16)
        lines = text.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 40 for line in lines)

    def test_row_orientation(self):
        """Largest y (second-axis index) renders on the TOP row."""
        grid = np.zeros((10, 10))
        grid[:, -1] = 1.0
        text = heatmap(grid, width=10, height=10)
        lines = text.splitlines()
        assert set(lines[0]) == {"@"}
        assert "@" not in lines[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))
        with pytest.raises(ValueError):
            heatmap(np.zeros((0, 3)))


class TestScatter2D:
    def test_points_and_truth(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = scatter_2d(points, truth=np.array([0.5, 0.5]))
        assert "o" in text
        assert "X" in text

    def test_overlapping_points_emphasised(self):
        points = np.array([[0.0, 0.0]] * 5 + [[1.0, 1.0]])
        text = scatter_2d(points)
        assert "O" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_2d(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            scatter_2d(np.zeros((5, 3)))


class TestIntegrationWithFigures:
    def test_sparkline_of_fig18_errors(self):
        """Viz composes with ExperimentResult columns."""
        from repro.experiments.metrics import ExperimentResult

        result = ExperimentResult("figX", "t", columns=["v"])
        for value in (4.4, 3.0, 2.0, 3.0, 1.5, 1.9):
            result.add_row(v=value)
        line = sparkline([float(v) for v in result.column("v")])
        assert len(line) == 6
