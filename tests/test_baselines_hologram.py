"""Tests for repro.baselines.hologram (Tagoram DAH)."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.baselines.hologram import DifferentialHologram, hologram_likelihood


def _phases(positions, target, offset=0.7, noise=None, rng=None):
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset
    if noise:
        phases = phases + rng.normal(0.0, noise, size=len(distances))
    return np.mod(phases, TWO_PI)


class TestHologramLikelihood:
    def test_unity_at_target(self):
        positions = np.array([[0.0, 0.0], [0.3, 0.0], [0.0, 0.3], [-0.2, 0.1]])
        target = np.array([0.5, 0.8])
        phases = _phases(positions, target)
        likelihood = hologram_likelihood(positions, phases, target[np.newaxis, :])
        assert likelihood[0] == pytest.approx(1.0)

    def test_lower_away_from_target(self):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 15)])
        target = np.array([0.1, 0.9])
        phases = _phases(positions, target)
        cells = np.array([target, target + [0.05, 0.05]])
        likelihood = hologram_likelihood(positions, phases, cells)
        assert likelihood[0] > likelihood[1]

    def test_offset_invariance(self):
        """Differencing against the reference cancels hardware offsets."""
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 15)])
        target = np.array([0.1, 0.9])
        cells = np.array([target, target + [0.03, 0.0]])
        base = hologram_likelihood(positions, _phases(positions, target, 0.0), cells)
        shifted = hologram_likelihood(positions, _phases(positions, target, 2.8), cells)
        assert shifted == pytest.approx(base, abs=1e-9)

    def test_weights_change_scores(self):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 9)])
        target = np.array([0.0, 0.8])
        phases = _phases(positions, target)
        phases[0] += 1.0  # corrupt one read
        cells = target[np.newaxis, :]
        uniform = hologram_likelihood(positions, phases, cells)
        weights = np.ones(9)
        weights[0] = 1e-6
        weighted = hologram_likelihood(positions, phases, cells, weights=weights)
        assert weighted[0] > uniform[0]

    def test_chunking_consistent(self):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 9)])
        target = np.array([0.0, 0.8])
        phases = _phases(positions, target)
        cells = np.stack(
            np.meshgrid(np.linspace(-0.2, 0.2, 21), np.linspace(0.6, 1.0, 21),
                        indexing="ij"),
            axis=-1,
        ).reshape(-1, 2)
        full = hologram_likelihood(positions, phases, cells, chunk_cells=10**6)
        chunked = hologram_likelihood(positions, phases, cells, chunk_cells=37)
        assert chunked == pytest.approx(full)

    def test_validation(self):
        with pytest.raises(ValueError):
            hologram_likelihood(np.zeros((1, 2)), np.zeros(1), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            hologram_likelihood(np.zeros((3, 2)), np.zeros(3), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            hologram_likelihood(
                np.zeros((3, 2)), np.zeros(3), np.zeros((2, 2)), weights=np.zeros(3)
            )


class TestDifferentialHologram:
    def test_locates_2d_target(self, rng):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 30)])
        target = np.array([0.1, 0.9])
        phases = _phases(positions, target, noise=0.05, rng=rng)
        hologram = DifferentialHologram(grid_size_m=0.005)
        result = hologram.locate(
            positions, phases, [(-0.1, 0.3), (0.7, 1.1)]
        )
        assert np.linalg.norm(result.position - target) < 0.02

    def test_locates_3d_target(self, rng):
        positions = rng.uniform(-0.4, 0.4, size=(40, 3))
        target = np.array([0.05, 0.75, 0.1])
        phases = _phases(positions, target, noise=0.03, rng=rng)
        hologram = DifferentialHologram(grid_size_m=0.02)
        result = hologram.locate(
            positions, phases, [(t - 0.1, t + 0.1) for t in target]
        )
        assert np.linalg.norm(result.position - target) < 0.04

    def test_keep_hologram_shape(self, rng):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.3, 0.3, 10)])
        target = np.array([0.0, 0.8])
        phases = _phases(positions, target)
        hologram = DifferentialHologram(grid_size_m=0.01, augmentation_rounds=0)
        result = hologram.locate(
            positions, phases, [(-0.1, 0.1), (0.7, 0.9)], keep_hologram=True
        )
        assert result.hologram is not None
        assert result.hologram.shape == result.grid_shape
        assert result.cell_count == np.prod(result.grid_shape)

    def test_augmentation_downweights_corrupted_reads(self, rng):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.4, 0.4, 40)])
        target = np.array([0.0, 0.8])
        phases = _phases(positions, target, noise=0.02, rng=rng)
        phases[:8] += 1.5  # heavy corruption on one flank
        plain = DifferentialHologram(grid_size_m=0.004, augmentation_rounds=0)
        augmented = DifferentialHologram(grid_size_m=0.004, augmentation_rounds=2)
        bounds = [(-0.15, 0.15), (0.65, 0.95)]
        error_plain = np.linalg.norm(plain.locate(positions, phases, bounds).position - target)
        error_aug = np.linalg.norm(augmented.locate(positions, phases, bounds).position - target)
        assert error_aug <= error_plain + 0.002

    def test_cell_count_scales_with_grid(self, rng):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.3, 0.3, 10)])
        phases = _phases(positions, np.array([0.0, 0.8]))
        coarse = DifferentialHologram(grid_size_m=0.02).locate(
            positions, phases, [(-0.1, 0.1), (0.7, 0.9)]
        )
        fine = DifferentialHologram(grid_size_m=0.005).locate(
            positions, phases, [(-0.1, 0.1), (0.7, 0.9)]
        )
        assert fine.cell_count > 10 * coarse.cell_count

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DifferentialHologram(grid_size_m=0.0)
        with pytest.raises(ValueError):
            DifferentialHologram(augmentation_rounds=-1)
        with pytest.raises(ValueError):
            DifferentialHologram(wavelength_m=-1.0)

    def test_bounds_validation(self, rng):
        positions = np.array([[x, 0.0] for x in np.linspace(-0.3, 0.3, 10)])
        phases = _phases(positions, np.array([0.0, 0.8]))
        hologram = DifferentialHologram(grid_size_m=0.01)
        with pytest.raises(ValueError):
            hologram.locate(positions, phases, [(-0.1, 0.1)])
        with pytest.raises(ValueError):
            hologram.locate(positions, phases, [(0.1, -0.1), (0.7, 0.9)])
