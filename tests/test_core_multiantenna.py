"""Tests for repro.core.multiantenna."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.calibration import AntennaCalibration
from repro.core.multiantenna import (
    CalibratedArray,
    differential_hologram,
    locate_tag_differential,
    locate_tag_with_array,
)
from repro.rf.antenna import Antenna


def _measured_phases(centers, tag, offsets):
    k = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M
    distances = np.linalg.norm(np.asarray(centers) - np.asarray(tag), axis=1)
    return np.mod(k * distances + np.asarray(offsets), TWO_PI)


@pytest.fixture
def line_array():
    centers = np.array([[-0.3, 0.0], [0.0, 0.0], [0.3, 0.0]])
    tag = np.array([-0.1, 0.8])
    offsets = np.array([1.0, 1.2, 0.9])
    phases = _measured_phases(centers, tag, offsets)
    return centers, tag, offsets, phases


class TestDifferentialHologram:
    def test_exact_with_corrections(self, line_array):
        centers, tag, offsets, phases = line_array
        result = differential_hologram(
            centers,
            phases,
            bounds=[(tag[0] - 0.15, tag[0] + 0.15), (tag[1] - 0.15, tag[1] + 0.15)],
            grid_size_m=0.002,
            offset_corrections_rad=offsets - offsets[0],
        )
        assert np.linalg.norm(result.position - tag) < 0.005
        assert result.likelihood == pytest.approx(1.0, abs=0.01)

    def test_uncorrected_offsets_degrade(self, line_array):
        centers, tag, offsets, phases = line_array
        bounds = [(tag[0] - 0.15, tag[0] + 0.15), (tag[1] - 0.15, tag[1] + 0.15)]
        corrected = differential_hologram(
            centers, phases, bounds, 0.004, offsets - offsets[0]
        )
        uncorrected = differential_hologram(centers, phases, bounds, 0.004)
        error_corrected = np.linalg.norm(corrected.position - tag)
        error_uncorrected = np.linalg.norm(uncorrected.position - tag)
        assert error_corrected < error_uncorrected

    def test_3d_bounds(self):
        centers = np.array([[-0.3, 0.0, 0.0], [0.0, 0.0, 0.2], [0.3, 0.0, 0.0],
                            [0.0, 0.3, 0.0]])
        tag = np.array([0.05, 0.7, 0.1])
        phases = _measured_phases(centers, tag, np.zeros(4))
        result = differential_hologram(
            centers, phases,
            bounds=[(t - 0.08, t + 0.08) for t in tag],
            grid_size_m=0.008,
        )
        assert np.linalg.norm(result.position - tag) < 0.02

    def test_validation(self, line_array):
        centers, tag, offsets, phases = line_array
        bounds = [(-0.2, 0.2), (0.6, 1.0)]
        with pytest.raises(ValueError):
            differential_hologram(centers[:1], phases[:1], bounds)
        with pytest.raises(ValueError):
            differential_hologram(centers, phases[:2], bounds)
        with pytest.raises(ValueError):
            differential_hologram(centers, phases, bounds, grid_size_m=0.0)
        with pytest.raises(ValueError):
            differential_hologram(
                centers, phases, bounds, offset_corrections_rad=np.zeros(2)
            )
        with pytest.raises(ValueError):
            differential_hologram(centers, phases, [(-0.2, 0.2)])


class TestLocateTagDifferential:
    def test_converges_from_nearby_guess(self, line_array):
        centers, tag, offsets, phases = line_array
        result = locate_tag_differential(
            centers,
            phases,
            initial_guess=tag + [0.03, -0.04],
            offset_corrections_rad=offsets - offsets[0],
        )
        assert np.linalg.norm(result.position - tag) < 0.005
        assert result.cell_count == 0

    def test_guess_shape_checked(self, line_array):
        centers, _, _, phases = line_array
        with pytest.raises(ValueError):
            locate_tag_differential(centers, phases, initial_guess=np.zeros(3))


class TestCalibratedArray:
    def _build(self):
        antennas = [
            Antenna(physical_center=(x, 0.0, 0.0), boresight=(0, 1, 0), name=f"A{i}")
            for i, x in enumerate((-0.3, 0.0, 0.3))
        ]
        calibrations = [
            AntennaCalibration(
                antenna_name=a.name,
                physical_center=a.physical_center_array,
                estimated_center=a.physical_center_array + [0.02, -0.01, 0.0],
                phase_offset_rad=1.0 + 0.3 * i,
            )
            for i, a in enumerate(antennas)
        ]
        return CalibratedArray(antennas=antennas, calibrations=calibrations)

    def test_centers_per_level(self):
        array = self._build()
        none = array.centers("none")
        full = array.centers("full")
        assert none[0] == pytest.approx([-0.3, 0.0])
        assert full[0] == pytest.approx([-0.28, -0.01])

    def test_offset_corrections(self):
        array = self._build()
        assert array.offset_corrections("none") == pytest.approx(np.zeros(3))
        assert array.offset_corrections("center") == pytest.approx(np.zeros(3))
        assert array.offset_corrections("full") == pytest.approx([0.0, 0.3, 0.6])

    def test_level_ordering_end_to_end(self):
        """Through locate_tag_with_array, full <= center in error."""
        array = self._build()
        tag = np.array([-0.05, 0.75])
        true_centers = np.vstack([c.estimated_center[:2] for c in array.calibrations])
        true_offsets = np.array([c.phase_offset_rad for c in array.calibrations])
        phases = _measured_phases(true_centers, tag, true_offsets)
        bounds = [(tag[0] - 0.12, tag[0] + 0.12), (tag[1] - 0.12, tag[1] + 0.12)]
        errors = {}
        for level in ("none", "center", "full"):
            result = locate_tag_with_array(array, phases, bounds, level=level,
                                           grid_size_m=0.004)
            errors[level] = np.linalg.norm(result.position - tag)
        assert errors["full"] <= errors["center"] + 1e-9
        assert errors["full"] < 0.01

    def test_validation(self):
        array = self._build()
        with pytest.raises(ValueError):
            CalibratedArray(antennas=array.antennas[:2], calibrations=array.calibrations)
        with pytest.raises(ValueError):
            CalibratedArray(antennas=array.antennas[:1], calibrations=array.calibrations[:1])
