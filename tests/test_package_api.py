"""Package-level API integrity checks.

These are the release gates an open-source project runs in CI: every name
promised by ``__all__`` must exist, every public callable must carry a
docstring, and the version must be sane. They catch the classic refactor
accidents (renamed function, forgotten export) that unit tests of the
moved code itself cannot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.constants",
    "repro.viz",
    "repro.cli",
    "repro.geometry",
    "repro.signalproc",
    "repro.rf",
    "repro.trajectory",
    "repro.core",
    "repro.baselines",
    "repro.pipeline",
    "repro.pipeline.config",
    "repro.pipeline.contract",
    "repro.pipeline.registry",
    "repro.pipeline.estimators",
    "repro.pipeline.batch",
    "repro.datasets",
    "repro.experiments",
    "repro.experiments.crlb",
    "repro.experiments.montecarlo",
    "repro.experiments.reporting",
]


def _walk_public_modules():
    """Every importable module in the package."""
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(info.name)
    return modules


class TestExports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_every_submodule_imports(self):
        for module_name in _walk_public_modules():
            importlib.import_module(module_name)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_root_all_covers_key_apis(self):
        for name in (
            "LionLocalizer",
            "calibrate_antenna",
            "DifferentialHologram",
            "simulate_scan",
            "ThreeLineScan",
            "OnlineLionLocalizer",
            "locate_multireference",
            "EstimationRequest",
            "estimate",
            "create_estimator",
        ):
            assert name in repro.__all__


class TestEstimatorRegistry:
    """The registry is the package's serving surface: complete, no dupes."""

    EXPECTED = [
        "angle",
        "hologram",
        "hyperbola",
        "lion",
        "lion-adaptive",
        "lion-multiantenna",
        "lion-multiref",
        "lion-online",
        "parabola",
    ]

    def test_registry_lists_every_estimator_exactly_once(self):
        names = repro.estimator_names()
        assert names == self.EXPECTED
        assert len(names) == len(set(names))

    def test_every_estimator_constructible_by_name(self):
        for name in repro.estimator_names():
            estimator = repro.create_estimator(name)
            assert isinstance(estimator, repro.Estimator)
            assert estimator.name == name

    def test_every_summary_nonempty(self):
        for name, summary in repro.list_estimators().items():
            assert summary.strip(), f"estimator {name!r} has no summary"


class TestDocstrings:
    def _public_members(self, module):
        names = getattr(module, "__all__", None)
        if names is None:
            names = [n for n in vars(module) if not n.startswith("_")]
        for name in names:
            member = getattr(module, name, None)
            if member is None:
                continue
            if inspect.isfunction(member) or inspect.isclass(member):
                if getattr(member, "__module__", "").startswith("repro"):
                    yield f"{module.__name__}.{name}", member

    def test_all_public_callables_documented(self):
        undocumented = []
        for module_name in _walk_public_modules():
            module = importlib.import_module(module_name)
            for qualified, member in self._public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(qualified)
        assert not undocumented, f"missing docstrings: {sorted(set(undocumented))}"

    def test_all_modules_documented(self):
        missing = [
            name
            for name in _walk_public_modules()
            if not (importlib.import_module(name).__doc__ or "").strip()
        ]
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_methods_documented_on_key_classes(self):
        from repro.core.localizer import LionLocalizer
        from repro.core.online import OnlineLionLocalizer
        from repro.baselines.hologram import DifferentialHologram

        for cls in (LionLocalizer, OnlineLionLocalizer, DifferentialHologram):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"
