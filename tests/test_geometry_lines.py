"""Tests for repro.geometry.lines — radical lines are the heart of LION."""

import numpy as np
import pytest

from repro.geometry.circles import Circle, circle_circle_intersection
from repro.geometry.lines import (
    Line2D,
    Plane3D,
    intersect_lines,
    intersect_planes,
    radical_line,
    radical_plane,
)


class TestLine2D:
    def test_contains_point_on_line(self):
        line = Line2D(1.0, -1.0, 0.0)  # y = x
        assert line.contains([2.0, 2.0])

    def test_distance_to_point(self):
        line = Line2D(0.0, 1.0, 0.0)  # the x-axis
        assert line.distance_to([5.0, 3.0]) == pytest.approx(3.0)

    def test_direction_perpendicular_to_normal(self):
        line = Line2D(2.0, 3.0, 1.0)
        assert np.dot(line.direction, line.normal) == pytest.approx(0.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Line2D(0.0, 0.0, 1.0)


class TestPlane3D:
    def test_contains(self):
        plane = Plane3D(0.0, 0.0, 1.0, 2.0)  # z = 2
        assert plane.contains([7.0, -3.0, 2.0])

    def test_distance(self):
        plane = Plane3D(0.0, 0.0, 2.0, 4.0)  # z = 2 scaled
        assert plane.distance_to([0.0, 0.0, 5.0]) == pytest.approx(3.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Plane3D(0.0, 0.0, 0.0, 1.0)


class TestRadicalLine:
    def test_passes_through_circle_intersections(self):
        """Observation 1: the radical line contains both intersection points."""
        target = np.array([0.5, 1.2])
        c1 = np.array([0.0, 0.0])
        c2 = np.array([1.0, 0.3])
        r1 = float(np.linalg.norm(target - c1))
        r2 = float(np.linalg.norm(target - c2))
        line = radical_line(c1, r1, c2, r2)
        points = circle_circle_intersection(Circle(tuple(c1), r1), Circle(tuple(c2), r2))
        assert points.shape[0] == 2
        for point in points:
            assert line.contains(point, tol=1e-9)

    def test_passes_through_target(self):
        target = np.array([-0.3, 0.9])
        for center in ([0.0, 0.0], [0.4, -0.2], [-1.0, 0.5]):
            c = np.asarray(center)
            line = radical_line(c, float(np.linalg.norm(target - c)), [1.0, 1.0],
                                float(np.linalg.norm(target - [1.0, 1.0])))
            assert line.contains(target, tol=1e-9)

    def test_concentric_rejected(self):
        with pytest.raises(ValueError):
            radical_line([1.0, 1.0], 2.0, [1.0, 1.0], 3.0)

    def test_perpendicular_to_center_line(self):
        line = radical_line([0.0, 0.0], 1.0, [2.0, 0.0], 1.0)
        # Centers along x -> radical line is vertical: direction has no x.
        assert abs(line.direction[0]) == pytest.approx(0.0, abs=1e-12)


class TestRadicalPlane:
    def test_contains_target_on_both_spheres(self):
        target = np.array([0.2, 0.8, 0.5])
        c1 = np.array([0.0, 0.0, 0.0])
        c2 = np.array([1.0, 0.0, 0.4])
        plane = radical_plane(
            c1, float(np.linalg.norm(target - c1)), c2, float(np.linalg.norm(target - c2))
        )
        assert plane.contains(target, tol=1e-9)

    def test_concentric_rejected(self):
        with pytest.raises(ValueError):
            radical_plane([0, 0, 0], 1.0, [0, 0, 0], 2.0)


class TestIntersectLines:
    def test_two_lines(self):
        a = Line2D(1.0, 0.0, 2.0)  # x = 2
        b = Line2D(0.0, 1.0, 3.0)  # y = 3
        assert intersect_lines([a, b]) == pytest.approx([2.0, 3.0])

    def test_three_radical_lines_meet_at_target(self):
        """All pairwise radical lines intersect at the common point (Fig. 5)."""
        target = np.array([0.7, 1.1])
        centers = [np.array(c) for c in ([0.0, 0.0], [1.0, 0.0], [0.5, -0.8])]
        radii = [float(np.linalg.norm(target - c)) for c in centers]
        lines = [
            radical_line(centers[i], radii[i], centers[j], radii[j])
            for i, j in ((0, 1), (0, 2), (1, 2))
        ]
        assert intersect_lines(lines) == pytest.approx(target)

    def test_parallel_rejected(self):
        a = Line2D(1.0, 0.0, 0.0)
        b = Line2D(2.0, 0.0, 5.0)
        with pytest.raises(ValueError):
            intersect_lines([a, b])

    def test_single_line_rejected(self):
        with pytest.raises(ValueError):
            intersect_lines([Line2D(1.0, 0.0, 0.0)])


class TestIntersectPlanes:
    def test_three_planes(self):
        planes = [
            Plane3D(1.0, 0.0, 0.0, 1.0),
            Plane3D(0.0, 1.0, 0.0, 2.0),
            Plane3D(0.0, 0.0, 1.0, 3.0),
        ]
        assert intersect_planes(planes) == pytest.approx([1.0, 2.0, 3.0])

    def test_radical_planes_meet_at_target(self):
        target = np.array([0.1, 0.9, 0.4])
        centers = [
            np.array(c)
            for c in ([0, 0, 0], [1, 0, 0], [0, 1, 0], [0.3, 0.2, 0.9])
        ]
        radii = [float(np.linalg.norm(target - c)) for c in centers]
        planes = [
            radical_plane(centers[0], radii[0], centers[k], radii[k])
            for k in (1, 2, 3)
        ]
        assert intersect_planes(planes) == pytest.approx(target)

    def test_degenerate_normals_rejected(self):
        planes = [
            Plane3D(1.0, 0.0, 0.0, 0.0),
            Plane3D(2.0, 0.0, 0.0, 1.0),
            Plane3D(0.0, 1.0, 0.0, 0.0),
        ]
        with pytest.raises(ValueError):
            intersect_planes(planes)

    def test_too_few_planes_rejected(self):
        with pytest.raises(ValueError):
            intersect_planes([Plane3D(1, 0, 0, 0), Plane3D(0, 1, 0, 0)])
