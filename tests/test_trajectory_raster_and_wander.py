"""Tests for the RasterScan trajectory and angle-dependent phase center."""

import numpy as np
import pytest

from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.trajectory.raster import RasterScan


class TestRasterScan:
    def test_row_geometry(self):
        scan = RasterScan(-0.5, 0.5, row_axis="y", row_start=0.0,
                          row_count=4, row_spacing=0.1)
        rows = scan.rows
        assert len(rows) == 4
        assert rows[0].start[1] == pytest.approx(0.0)
        assert rows[3].start[1] == pytest.approx(0.3)

    def test_serpentine_alternates_direction(self):
        scan = RasterScan(-0.5, 0.5, row_count=3)
        rows = scan.rows
        assert rows[0].direction[0] > 0
        assert rows[1].direction[0] < 0
        assert rows[2].direction[0] > 0

    def test_continuous_traversal(self):
        scan = RasterScan(-0.4, 0.4, row_count=4, row_spacing=0.08)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=60.0)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        assert np.max(steps) < 0.01  # unwrappable throughout

    def test_z_axis_rows(self):
        scan = RasterScan(-0.3, 0.3, row_axis="z", row_count=3, row_spacing=0.15)
        assert scan.rows[2].start[2] == pytest.approx(0.3)
        assert scan.rows[2].start[1] == pytest.approx(0.0)

    def test_transit_segments_flagged(self):
        scan = RasterScan(-0.3, 0.3, row_count=3)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        mask = scan.transit_mask(samples)
        assert mask.any() and not mask.all()

    def test_validation(self):
        with pytest.raises(ValueError):
            RasterScan(0.0, 0.0)
        with pytest.raises(ValueError):
            RasterScan(row_count=1)
        with pytest.raises(ValueError):
            RasterScan(row_spacing=0.0)
        with pytest.raises(ValueError):
            RasterScan(row_axis="w")

    def test_raster_calibration_beats_three_lines_in_conditioning(self, rng):
        """A full plane gives more y-diversity than two discrete lines;
        noiseless both are exact, so compare under noise."""
        from repro.trajectory.multiline import TwoLineScan

        antenna = Antenna(physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0))
        truth = antenna.phase_center
        raster_errors, twoline_errors = [], []
        for _ in range(5):
            raster = simulate_scan(
                RasterScan(-0.5, 0.5, row_start=-0.4, row_count=5, row_spacing=0.1),
                antenna, rng=rng, noise=GaussianPhaseNoise(0.08), read_rate_hz=30.0,
            )
            result = LionLocalizer(dim=3, interval_m=0.25).locate(
                raster.positions, raster.phases,
                segment_ids=raster.segment_ids, exclude_mask=raster.exclude_mask,
            )
            raster_errors.append(np.linalg.norm(result.position - truth))

            twoline = simulate_scan(
                TwoLineScan(-0.5, 0.5, y_offset=0.2),
                antenna, rng=rng, noise=GaussianPhaseNoise(0.08), read_rate_hz=30.0,
            )
            result = LionLocalizer(dim=3, interval_m=0.25).locate(
                twoline.positions, twoline.phases,
                segment_ids=twoline.segment_ids, exclude_mask=twoline.exclude_mask,
            )
            twoline_errors.append(np.linalg.norm(result.position - truth))
        assert np.mean(raster_errors) < np.mean(twoline_errors) * 1.5


class TestCenterWander:
    def test_zero_wander_is_point_center(self):
        antenna = Antenna(physical_center=(0, 0, 0), boresight=(0, 1, 0))
        assert antenna.effective_phase_center((1.0, 1.0, 0.0)) == pytest.approx(
            antenna.phase_center
        )

    def test_boresight_observation_unshifted(self):
        antenna = Antenna(
            physical_center=(0, 0, 0), boresight=(0, 1, 0), center_wander_m=0.01
        )
        assert antenna.effective_phase_center((0.0, 2.0, 0.0)) == pytest.approx(
            antenna.phase_center
        )

    def test_off_boresight_center_recedes(self):
        antenna = Antenna(
            physical_center=(0, 0, 0), boresight=(0, 1, 0), center_wander_m=0.01
        )
        angle = np.pi / 4
        point = (np.sin(angle) * 2.0, np.cos(angle) * 2.0, 0.0)
        center = antenna.effective_phase_center(point)
        # Shift is along -boresight (-y) by wander * angle^2.
        assert center[1] == pytest.approx(-0.01 * angle**2)
        assert center[0] == pytest.approx(0.0)

    def test_wander_sets_calibration_floor(self, rng):
        """With a wandering center, even noiseless calibration has residual
        error — there is no single point to find."""
        from repro.trajectory.multiline import ThreeLineScan

        errors = {}
        for wander in (0.0, 0.02):
            antenna = Antenna(
                physical_center=(0.0, 0.8, 0.0),
                boresight=(0, -1, 0),
                center_wander_m=wander,
            )
            scan = simulate_scan(
                ThreeLineScan(-0.5, 0.5), antenna,
                rng=np.random.default_rng(1), noise=NoPhaseNoise(),
                read_rate_hz=30.0,
            )
            result = LionLocalizer(dim=3, interval_m=0.25).locate(
                scan.positions, scan.phases,
                segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
            )
            errors[wander] = np.linalg.norm(result.position - antenna.phase_center)
        assert errors[0.0] < 1e-4
        assert errors[0.02] > 0.005
        # The estimate remains a bounded *effective* center — the error is
        # a small multiple of the wander scale (it concentrates in depth,
        # where the angle-dependent extra path looks like extra distance).
        assert errors[0.02] < 0.06