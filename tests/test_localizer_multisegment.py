"""Tests for the localizer's generic multi-segment pairing path.

Scans that are multi-segment but not the canonical three-line geometry
(e.g. a raster with five rows) route through
``LionLocalizer._generic_multisegment_pairs``: within-segment spacing
pairs plus cross-segment matches between consecutive segments.
"""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.trajectory.raster import RasterScan


def _wrapped(positions, target, offset=0.5):
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    return np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset, TWO_PI)


class TestGenericMultisegment:
    def test_five_row_raster_noiseless_exact(self):
        scan_path = RasterScan(-0.5, 0.5, row_start=-0.4, row_count=5, row_spacing=0.1)
        samples = scan_path.sample(speed_mps=0.1, read_rate_hz=30.0)
        target = np.array([0.1, 0.8, 0.15])
        phases = _wrapped(samples.positions, target)
        localizer = LionLocalizer(dim=3, preprocess=PreprocessConfig(smoothing_window=1))
        result = localizer.locate(
            samples.positions, phases,
            segment_ids=samples.segment_ids,
            exclude_mask=scan_path.transit_mask(samples),
        )
        assert result.recovered_axis == 2  # z via d_r (plane scan)
        assert result.position == pytest.approx(target, abs=1e-4)

    def test_two_segment_2d_scan(self):
        """Two offset sweeps in the plane: generic path, full-rank 2D."""
        x = np.linspace(-0.4, 0.4, 150)
        first = np.stack([x, np.zeros_like(x)], axis=1)
        second = np.stack([x[::-1], np.full_like(x, -0.2)], axis=1)
        positions = np.vstack([first, second])
        segments = np.repeat([0, 1], 150)
        target = np.array([0.1, 0.9])
        phases = _wrapped(positions, target)
        # Treat the concatenation as continuous: bridge the jump manually
        # by construction (end of first ~ (0.4, 0), start of second
        # (0.4, -0.2)) -- 20 cm exceeds lambda/4, so feed segment-aware
        # profiles via the exclude-free multiref-style call instead:
        # here we simply verify the pairing machinery by giving exact
        # unwrapped-consistent phases (offset identical, no wrap damage).
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = localizer.locate(positions, phases, segment_ids=segments)
        # The cross-segment jump can cost a wrap; accept either exactness
        # or a clear failure signal, never silent garbage.
        assert np.all(np.isfinite(result.position))

    def test_raster_with_noise(self, rng):
        antenna = Antenna(physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0))
        scan = simulate_scan(
            RasterScan(-0.5, 0.5, row_start=-0.4, row_count=4, row_spacing=0.12),
            antenna, rng=rng, noise=GaussianPhaseNoise(0.08), read_rate_hz=30.0,
        )
        result = LionLocalizer(dim=3, interval_m=0.25).locate(
            scan.positions, scan.phases,
            segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
        )
        error = np.linalg.norm(result.position - antenna.phase_center)
        assert error < 0.03

    def test_pairs_exist_across_segments(self):
        """The generic path adds cross-segment pairs, improving the y
        excitation beyond what within-row pairs provide."""
        from repro.core.pairgraph import analyze_pairing

        scan_path = RasterScan(-0.4, 0.4, row_start=-0.3, row_count=4, row_spacing=0.1)
        samples = scan_path.sample(speed_mps=0.1, read_rate_hz=30.0)
        mask = scan_path.transit_mask(samples)
        positions = samples.positions[~mask]
        segments = samples.segment_ids[~mask]
        localizer = LionLocalizer(dim=3)
        pairs = localizer._generic_multisegment_pairs(positions, segments, 0.2)
        diagnostics = analyze_pairing(positions, pairs)
        # x (rows) and y (row offsets) both excited.
        assert diagnostics.axis_excitation[0] > 0.05
        assert diagnostics.axis_excitation[1] > 0.02
