"""End-to-end tests through the read-record path (the LLRP-shaped data).

Everything earlier feeds arrays around in memory; these tests force the
full production data path: simulate -> records -> CSV -> reload ->
localize/calibrate, including the frequency-hopping record fields.
"""

import numpy as np
import pytest

from repro.core.calibration import estimate_phase_offset
from repro.core.localizer import LionLocalizer
from repro.datasets.io import read_records_csv, write_records_csv
from repro.datasets.synthetic import simulate_scan, simulate_static_reads
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.rf.reader import ReaderConfig
from repro.rf.tag import Tag
from repro.trajectory.linear import LinearTrajectory


class TestRecordPathLocalization:
    def test_locate_from_reloaded_records(self, tmp_path, rng):
        antenna = Antenna(
            physical_center=(0.1, 0.9, 0.0),
            center_displacement=(0.02, -0.01, 0.0),
            boresight=(0, -1, 0),
        )
        scan = simulate_scan(
            LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)), antenna, rng=rng,
            noise=GaussianPhaseNoise(0.05), read_rate_hz=40.0,
        )
        path = tmp_path / "scan.csv"
        write_records_csv(scan.records, path)
        records = read_records_csv(path)

        positions = np.array([r.tag_position for r in records])
        phases = np.array([r.phase_rad for r in records])
        result = LionLocalizer(dim=2).locate(positions, phases)
        error = np.linalg.norm(result.position - antenna.phase_center[:2])
        assert error < 0.01

    def test_offset_estimate_through_records(self, tmp_path, rng):
        """Eq. 17 offset survives a CSV round trip bit-exactly."""
        antenna = Antenna(
            physical_center=(0.0, 0.8, 0.0),
            phase_offset_rad=1.9,
            boresight=(0, -1, 0),
        )
        tag = Tag(phase_offset_rad=0.6)
        records = simulate_static_reads(
            antenna, tag, (0.0, 0.0, 0.0), 200, rng, noise=GaussianPhaseNoise(0.05)
        )
        path = tmp_path / "static.csv"
        write_records_csv(records, path)
        reloaded = read_records_csv(path)

        positions = np.array([r.tag_position for r in reloaded])
        phases = np.array([r.phase_rad for r in reloaded])
        # Many reads of a single position still yield the offset given the
        # true center (distance identical for all reads).
        estimate = estimate_phase_offset(positions, phases, antenna.phase_center)
        expected = (1.9 + 0.6) % (2 * np.pi)
        delta = (estimate - expected + np.pi) % (2 * np.pi) - np.pi
        assert abs(delta) < 0.05


class TestHoppingRecords:
    def test_hop_fields_roundtrip(self, tmp_path, ideal_antenna, ideal_tag, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)),
            ideal_antenna, tag=ideal_tag, rng=rng, noise=NoPhaseNoise(),
            read_rate_hz=40.0,
            reader_config=ReaderConfig(
                frequency_hopping=True, hop_interval_s=0.3, read_rate_hz=40.0
            ),
        )
        channels = {r.channel_index for r in scan.records}
        assert len(channels) > 1
        path = tmp_path / "hop.csv"
        write_records_csv(scan.records, path)
        reloaded = read_records_csv(path)
        assert reloaded == scan.records
        for record in reloaded:
            assert record.wavelength_m == pytest.approx(
                299_792_458.0 / record.frequency_hz
            )

    def test_hop_blocks_usable_by_multiref(self, tmp_path, rng):
        """Records grouped by hop channel feed locate_multireference.

        Note: the simulated phases here use the channel's own wavelength
        per block (as real hopped reads would), built directly rather than
        through Channel (whose wavelength is fixed per config).
        """
        from repro.constants import TWO_PI, wavelength_for_frequency
        from repro.core.multiref import locate_multireference

        target = np.array([0.05, 0.85])
        x = np.linspace(-0.5, 0.5, 400)
        positions3 = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        blocks = np.repeat([3, 17], 200)  # two FCC channels
        wavelengths = {
            3: wavelength_for_frequency(904.25e6),
            17: wavelength_for_frequency(911.25e6),
        }
        phases = np.zeros(400)
        for block in (3, 17):
            members = blocks == block
            distances = np.linalg.norm(positions3[members, :2] - target, axis=1)
            phases[members] = np.mod(
                2.0 * TWO_PI / wavelengths[block] * distances
                + rng.uniform(0, TWO_PI)
                + rng.normal(0, 0.04, 200),
                TWO_PI,
            )
        solution = locate_multireference(
            positions3[:, :2], phases, blocks, dim=2,
            interval_m=0.2, wavelengths_m=wavelengths,
        )
        assert np.linalg.norm(solution.position - target) < 0.02
