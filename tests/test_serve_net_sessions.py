"""HTTP streaming-session surface of repro.serve.net.

The session routes are a thin wire face over ``repro.stream``: the same
state machine, the same events, the same bit-identity — plus the HTTP
error taxonomy (429 capacity, 404 unknown, 409 duplicate/closed, 503
draining) and session-aware drain. Thread-mode workers keep everything
in-process.
"""

import http.client
import json

import numpy as np
import pytest

from repro import LinearTrajectory, default_antenna, simulate_scan
from repro.pipeline import estimate
from repro.serve import ServeConfig
from repro.serve.net import (
    BadRequestError,
    NetServeConfig,
    ServerHandle,
    parse_reads_ndjson,
    parse_session_create,
)
from repro.stream import StreamConfig


def _scan(seed=21):
    rng = np.random.default_rng(seed)
    antenna = default_antenna((0.1, 0.9, 0.0), rng)
    return simulate_scan(
        LinearTrajectory((-0.5, 0.0, 0.0), (0.5, 0.0, 0.0)), antenna, rng=rng
    )


def _ndjson(scan, start=0, end=None):
    end = len(scan) if end is None else end
    lines = [
        json.dumps(
            {
                "t": k / 120.0,
                "position": [float(v) for v in scan.positions[k][:2]],
                "phase": float(scan.phases[k]),
            }
        )
        for k in range(start, end)
    ]
    return ("\n".join(lines)).encode()


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw else None
        return response.status, dict(response.headers), payload
    finally:
        conn.close()


def _config(**overrides):
    defaults = dict(
        port=0,
        shards=1,
        worker_mode="thread",
        engine=ServeConfig(max_wait_s=0.001),
    )
    defaults.update(overrides)
    return NetServeConfig(**defaults)


class TestParseSessionCreate:
    def test_minimal_body(self):
        tag, antenna, session_id, config = parse_session_create(
            json.dumps({"tag": "T1"}).encode(), StreamConfig()
        )
        assert (tag, antenna, session_id) == ("T1", "1", None)
        assert config == StreamConfig()

    def test_overrides_merge_over_defaults(self):
        body = {
            "tag": "T1",
            "antenna": "A3",
            "session_id": "fixed",
            "estimator": "lion",
            "estimator_config": {"dim": 2},
            "stream": {"resolve_every_reads": 40},
        }
        defaults = StreamConfig(update_every_reads=25)
        tag, antenna, session_id, config = parse_session_create(
            json.dumps(body).encode(), defaults
        )
        assert (tag, antenna, session_id) == ("T1", "A3", "fixed")
        assert config.resolve_every_reads == 40
        assert config.update_every_reads == 25  # default survives
        assert config.estimator_config == {"dim": 2}

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[]",
            b"{}",
            json.dumps({"tag": ""}).encode(),
            json.dumps({"tag": "T", "unknown": 1}).encode(),
            json.dumps({"tag": "T", "stream": {"no_such_knob": 1}}).encode(),
            json.dumps({"tag": "T", "stream": {"max_window_reads": 1}}).encode(),
            json.dumps({"tag": "T", "stream": []}).encode(),
            json.dumps({"tag": "T", "antenna": 3}).encode(),
        ],
    )
    def test_bad_bodies_rejected(self, body):
        with pytest.raises(BadRequestError):
            parse_session_create(body, StreamConfig())


class TestParseReadsNdjson:
    def test_reads_parse_in_order(self):
        raw = b'{"t": 0.0, "position": [0.1, 0.2], "phase": 1.5}\n\n' \
              b'{"t": 0.5, "position": [0.2, 0.2, 0.0], "phase": 1.6}\n'
        reads = parse_reads_ndjson(raw)
        assert len(reads) == 2
        timestamp, position, phase = reads[0]
        assert timestamp == 0.0
        assert tuple(position) == (0.1, 0.2)
        assert phase == 1.5
        assert len(reads[1][1]) == 3

    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"\n\n",
            b"not json",
            b'{"t": 0.0, "phase": 1.0}',
            b'{"t": 0.0, "position": [0.1, 0.2], "phase": 1.0, "rssi": -60}',
            b'{"t": "zero", "position": [0.1, 0.2], "phase": 1.0}',
            b'{"t": 0.0, "position": [0.1], "phase": 1.0}',
            b'{"t": 0.0, "position": "here", "phase": 1.0}',
            b'{"t": 0.0, "position": [0.1, "y"], "phase": 1.0}',
        ],
    )
    def test_bad_chunks_rejected(self, raw):
        with pytest.raises(BadRequestError):
            parse_reads_ndjson(raw)


class TestSessionRoutes:
    def test_session_lifecycle_over_http(self):
        scan = _scan()
        with ServerHandle(_config()) as handle:
            port = handle.port
            status, _, snapshot = _request(
                port,
                "POST",
                "/v1/sessions",
                json.dumps({"tag": "PALLET-9", "antenna": "A1"}).encode(),
            )
            assert status == 201
            assert snapshot["state"] == "warming"
            sid = snapshot["session_id"]

            status, _, result = _request(
                port, "POST", f"/v1/sessions/{sid}/reads", _ndjson(scan, 0, 400)
            )
            assert status == 200
            assert result["accepted"] == 400
            kinds = [event["kind"] for event in result["events"]]
            assert kinds[0] == "tag_entered"
            assert "position_updated" in kinds
            assert result["estimate"] is not None

            status, _, snapshot = _request(port, "GET", f"/v1/sessions/{sid}")
            assert status == 200
            assert snapshot["reads"] == 400
            assert snapshot["state"] in ("tracking", "settled")

            # served estimate is the library's own answer, bit for bit
            session = handle.server.sessions.get_session(sid)
            name, config, request = session.build_resolve_request()
            oneshot = estimate(name, request, config)
            final = session.final_resolve()
            assert np.array_equal(final.position, oneshot.position)

            # /metrics is Prometheus text — fetch raw
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode()
            conn.close()
            assert "lion_serve_stream_sessions_active" in text
            assert "lion_serve_stream_reads_total" in text
            assert 'lion_serve_stream_events_total{kind="tag_entered"}' in text

            status, _, statz = _request(port, "GET", "/statz")
            assert status == 200
            assert statz["sessions"]["active"] == 1
            assert statz["sessions"]["reads"] == 400

            status, _, closed = _request(port, "DELETE", f"/v1/sessions/{sid}")
            assert status == 200
            assert closed["events"][-1]["kind"] == "tag_departed"

            status, _, error = _request(port, "GET", f"/v1/sessions/{sid}")
            assert status == 404
            assert error["error"]["kind"] == "unknown_session"

    def test_error_taxonomy(self):
        with ServerHandle(_config(max_sessions=2)) as handle:
            port = handle.port
            create = json.dumps({"tag": "T1"}).encode()
            status, _, _ = _request(port, "POST", "/v1/sessions", create)
            assert status == 201

            # duplicate (tag, antenna) key
            status, _, error = _request(port, "POST", "/v1/sessions", create)
            assert status == 409
            assert error["error"]["kind"] == "duplicate_session"

            status, _, _ = _request(
                port, "POST", "/v1/sessions", json.dumps({"tag": "T2"}).encode()
            )
            assert status == 201

            # capacity: a third tag is shed with Retry-After
            status, headers, error = _request(
                port, "POST", "/v1/sessions", json.dumps({"tag": "T3"}).encode()
            )
            assert status == 429
            assert error["error"]["kind"] == "session_capacity"
            assert "Retry-After" in headers
            assert error["retry_after_s"] > 0

            # malformed create / feed bodies
            status, _, error = _request(port, "POST", "/v1/sessions", b"not json")
            assert status == 400
            status, _, error = _request(
                port, "POST", "/v1/sessions/nope/reads", b'{"bad": 1}'
            )
            assert status == 400

            # unknown session id
            status, _, error = _request(
                port,
                "POST",
                "/v1/sessions/nope/reads",
                b'{"t": 0.0, "position": [0.1, 0.2], "phase": 1.0}',
            )
            assert status == 404
            assert error["error"]["kind"] == "unknown_session"

            # wrong verbs
            status, _, _ = _request(port, "PUT", "/v1/sessions")
            assert status == 405
            status, _, _ = _request(port, "GET", "/v1/sessions/nope/reads")
            assert status == 405
            status, _, _ = _request(port, "GET", "/v1/sessions/a/b/c/d")
            assert status == 404

    def test_session_aware_drain(self):
        scan = _scan()
        with ServerHandle(_config()) as handle:
            port = handle.port
            status, _, snapshot = _request(
                port,
                "POST",
                "/v1/sessions",
                json.dumps({"tag": "DRAINED"}).encode(),
            )
            assert status == 201
            sid = snapshot["session_id"]
            status, _, _ = _request(
                port, "POST", f"/v1/sessions/{sid}/reads", _ndjson(scan, 0, 300)
            )
            assert status == 200

            handle.stop()
            summary = handle.server.session_drain
            assert summary == {"sessions_drained": 1, "final_resolves": 1}

    def test_draining_sheds_creates_and_feeds_with_503(self):
        import threading
        import time

        with ServerHandle(_config(drain_grace_s=1.0)) as handle:
            port = handle.port
            status, _, snapshot = _request(
                port, "POST", "/v1/sessions", json.dumps({"tag": "T"}).encode()
            )
            assert status == 201
            sid = snapshot["session_id"]

            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            try:
                deadline = time.monotonic() + 5.0
                status = None
                while time.monotonic() < deadline:
                    status, _, error = _request(
                        port,
                        "POST",
                        "/v1/sessions",
                        json.dumps({"tag": "LATE"}).encode(),
                    )
                    if status == 503:
                        break
                    time.sleep(0.02)
                assert status == 503
                assert error["error"]["kind"] == "draining"

                status, _, error = _request(
                    port,
                    "POST",
                    f"/v1/sessions/{sid}/reads",
                    b'{"t": 0.0, "position": [0.1, 0.2], "phase": 1.0}',
                )
                assert status == 503
                assert error["error"]["kind"] == "draining"
            finally:
                stopper.join(timeout=30.0)

    def test_timeseries_carries_session_fields(self):
        with ServerHandle(_config(history_cadence_s=0.05)) as handle:
            port = handle.port
            _request(
                port,
                "POST",
                "/v1/sessions",
                json.dumps({"tag": "TS"}).encode(),
            )
            import time

            deadline = time.monotonic() + 5.0
            sample = None
            while time.monotonic() < deadline:
                status, _, payload = _request(port, "GET", "/debug/timeseries")
                assert status == 200
                samples = payload.get("samples", [])
                if samples:
                    sample = samples[-1]
                    if sample.get("sessions"):
                        break
                time.sleep(0.05)
            assert sample is not None
            assert "sessions" in sample
            assert "stream_reads_s" in sample
            assert "stream_events_s" in sample
            assert sample["sessions"] == 1
