"""Tests for the drifting antenna-fleet simulator (repro.datasets.fleet)."""

import numpy as np
import pytest

from repro.core.calibration import calibrate_antenna
from repro.datasets.fleet import AntennaFleet, FleetDriftConfig, antenna_name


def _fleet(**overrides):
    return AntennaFleet(FleetDriftConfig(size=4, seed=11, **overrides))


class TestFleetConstruction:
    def test_layout_and_names(self):
        fleet = _fleet()
        assert fleet.names == ("ant-000", "ant-001", "ant-002", "ant-003")
        assert antenna_name(7) == "ant-007"
        xs = [fleet.antenna(n).physical_center_array[0] for n in fleet.names]
        assert xs == sorted(xs)
        assert np.isclose(np.mean(xs), 0.0)
        for name in fleet.names:
            assert fleet.antenna(name).physical_center_array[1] == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetDriftConfig(size=0)
        with pytest.raises(ValueError):
            FleetDriftConfig(spacing_m=-1.0)
        with pytest.raises(ValueError):
            _fleet().advance(-1.0)


class TestDrift:
    def test_deterministic_replay(self):
        first, second = _fleet(), _fleet()
        for fleet in (first, second):
            fleet.advance(3600.0)
            fleet.advance(1800.0)
        for name in first.names:
            assert first.true_offset_rad(name) == second.true_offset_rad(name)
            assert np.array_equal(
                first.antenna(name).phase_center, second.antenna(name).phase_center
            )

    def test_step_sequence_matters(self):
        whole, split = _fleet(), _fleet()
        whole.advance(7200.0)
        split.advance(3600.0)
        split.advance(3600.0)
        assert whole.clock_s == split.clock_s
        # Different draw sequences: the walks disagree even at equal time.
        assert any(
            whole.true_offset_rad(n) != split.true_offset_rad(n) for n in whole.names
        )

    def test_offsets_move_and_wrap(self):
        fleet = _fleet()
        before = [fleet.true_offset_rad(n) for n in fleet.names]
        fleet.advance(12 * 3600.0)
        after = [fleet.true_offset_rad(n) for n in fleet.names]
        assert all(0.0 <= offset < 2 * np.pi for offset in after)
        assert any(a != b for a, b in zip(after, before))

    def test_temperature_coupling_dominates_when_walk_off(self):
        fleet = _fleet(
            offset_walk_std_rad=0.0,
            displacement_walk_std_m=0.0,
            offset_temp_coeff_rad_per_c=0.1,
            temp_sensitivity_spread=0.0,
        )
        before = np.array([fleet.true_offset_rad(n) for n in fleet.names])
        dt = fleet.config.temp_period_s / 4.0  # up to the temperature peak
        expected_delta = 0.1 * (
            fleet.ambient_temperature_c(dt) - fleet.ambient_temperature_c(0.0)
        )
        fleet.advance(dt)
        after = np.array([fleet.true_offset_rad(n) for n in fleet.names])
        deltas = np.mod(after - before + np.pi, 2 * np.pi) - np.pi
        assert np.allclose(deltas, expected_delta, atol=1e-9)

    def test_zero_drift_without_dynamics(self):
        fleet = _fleet(
            offset_walk_std_rad=0.0,
            displacement_walk_std_m=0.0,
            offset_temp_coeff_rad_per_c=0.0,
        )
        before = [fleet.true_offset_rad(n) for n in fleet.names]
        fleet.advance(3600.0)
        assert [fleet.true_offset_rad(n) for n in fleet.names] == before


class TestScansAndPhases:
    def test_calibration_scan_shapes_and_grid(self):
        fleet = _fleet()
        scan, grid = fleet.calibration_scan("ant-002")
        assert scan.positions.shape[0] == scan.phases.shape[0]
        assert scan.segment_ids.shape == scan.phases.shape
        assert scan.exclude_mask.shape == scan.phases.shape
        portal_x = fleet.antenna("ant-002").physical_center_array[0]
        assert grid.center == pytest.approx(portal_x)
        # Scan track is centered on the portal, not the origin.
        assert np.isclose(np.median(scan.positions[:, 0]), portal_x, atol=0.05)

    def test_scan_deterministic_and_salted(self):
        fleet = _fleet()
        one, _ = fleet.calibration_scan("ant-001")
        two, _ = fleet.calibration_scan("ant-001")
        salted, _ = fleet.calibration_scan("ant-001", salt=1)
        assert np.array_equal(one.phases, two.phases)
        assert not np.array_equal(one.phases, salted.phases)

    def test_scan_calibrates_to_truth(self):
        fleet = _fleet()
        scan, grid = fleet.calibration_scan("ant-001")
        calibration, _ = calibrate_antenna(
            scan.positions,
            scan.phases,
            fleet.antenna("ant-001").physical_center_array,
            antenna_name="ant-001",
            segment_ids=scan.segment_ids,
            exclude_mask=scan.exclude_mask,
            grid=grid,
        )
        true_total = fleet.true_offset_rad("ant-001") + fleet.tag.phase_offset_rad
        delta = np.mod(calibration.phase_offset_rad - true_total + np.pi, 2 * np.pi) - np.pi
        assert abs(delta) < 0.1
        truth_center = fleet.antenna("ant-001").phase_center
        assert np.linalg.norm(calibration.estimated_center - truth_center) < 0.05

    def test_static_tag_phases(self):
        fleet = _fleet()
        phases = fleet.static_tag_phases((0.2, -0.5, 0.0))
        assert phases.shape == (4,)
        assert np.all((phases >= 0.0) & (phases < 2 * np.pi))
        again = fleet.static_tag_phases((0.2, -0.5, 0.0))
        assert np.array_equal(phases, again)
        noisy = fleet.static_tag_phases((0.2, -0.5, 0.0), noise_std_rad=0.05)
        assert not np.array_equal(phases, noisy)

    def test_true_relative_offsets_wrapped(self):
        fleet = _fleet()
        fleet.advance(24 * 3600.0)
        relative = fleet.true_relative_offsets()
        assert relative[0] == 0.0
        assert np.all((relative > -np.pi) & (relative <= np.pi))
