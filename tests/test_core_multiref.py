"""Tests for repro.core.multiref — multi-run radical systems."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI, wavelength_for_frequency
from repro.core.multiref import (
    build_multireference_system,
    locate_multireference,
    solve_multireference,
)


def _run_phases(positions, target, wavelength, offset, noise, rng):
    distances = np.linalg.norm(positions - target, axis=1)
    phases = 2.0 * TWO_PI / wavelength * distances + offset
    if noise > 0:
        phases = phases + rng.normal(0.0, noise, len(distances))
    return np.mod(phases, TWO_PI)


def _three_sweeps(target, n=150, noise=0.0, rng=None):
    """Three parallel x-sweeps with independent phase datums."""
    x = np.linspace(-0.5, 0.5, n)
    lines = [
        np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1),
        np.stack([x, np.zeros_like(x), np.full_like(x, 0.2)], axis=1),
        np.stack([x, np.full_like(x, -0.2), np.zeros_like(x)], axis=1),
    ]
    local_rng = rng or np.random.default_rng(0)
    positions = np.vstack(lines)
    runs = np.repeat([0, 1, 2], n)
    phases = np.concatenate(
        [
            _run_phases(
                line, target, DEFAULT_WAVELENGTH_M,
                local_rng.uniform(0, TWO_PI), noise, local_rng,
            )
            for line in lines
        ]
    )
    return positions, phases, runs


class TestSeparateSweeps:
    def test_exact_3d_without_stitching(self):
        """The headline feature: Fig. 11 geometry with NO transit moves and
        independent per-line phase datums still localizes exactly."""
        target = np.array([0.1, 0.8, 0.15])
        positions, phases, runs = _three_sweeps(target)
        solution = locate_multireference(
            positions, phases, runs, dim=3, interval_m=0.25, smoothing_window=1
        )
        assert solution.position == pytest.approx(target, abs=1e-6)

    def test_reference_distances_match_geometry(self):
        target = np.array([0.0, 0.9, 0.1])
        positions, phases, runs = _three_sweeps(target)
        solution = locate_multireference(
            positions, phases, runs, dim=3, interval_m=0.25, smoothing_window=1
        )
        for run in (0, 1, 2):
            members = np.flatnonzero(runs == run)
            reference = positions[members[members.size // 2]]
            expected = float(np.linalg.norm(target - reference))
            assert solution.reference_distances[run] == pytest.approx(expected, abs=1e-6)

    def test_noisy_centimeter_accuracy(self, rng):
        target = np.array([0.1, 0.8, 0.15])
        errors = []
        for _ in range(5):
            positions, phases, runs = _three_sweeps(target, noise=0.05, rng=rng)
            solution = locate_multireference(
                positions, phases, runs, dim=3, interval_m=0.25
            )
            errors.append(np.linalg.norm(solution.position - target))
        # The y/z recovery amplifies d_r noise by ~depth/line-offset (4-5x
        # here), so individual draws can reach several centimeters; the
        # mean stays centimeter-scale. The stitched single-datum pipeline
        # remains the higher-accuracy option when transits are available.
        assert float(np.mean(errors)) < 0.04

    def test_datum_invariance(self):
        """Changing any run's phase datum must not change the answer."""
        target = np.array([0.05, 0.75, 0.2])
        x = np.linspace(-0.5, 0.5, 120)
        lines = [
            np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1),
            np.stack([x, np.zeros_like(x), np.full_like(x, 0.2)], axis=1),
            np.stack([x, np.full_like(x, -0.2), np.zeros_like(x)], axis=1),
        ]
        positions = np.vstack(lines)
        runs = np.repeat([0, 1, 2], 120)
        results = []
        for datums in ([0.0, 0.0, 0.0], [1.0, 3.0, 5.5]):
            phases = np.concatenate(
                [
                    _run_phases(line, target, DEFAULT_WAVELENGTH_M, datum, 0.0, None)
                    for line, datum in zip(lines, datums)
                ]
            )
            results.append(
                locate_multireference(
                    positions, phases, runs, dim=3, interval_m=0.25, smoothing_window=1
                ).position
            )
        assert results[0] == pytest.approx(results[1], abs=1e-9)


class TestFrequencyHopping:
    def test_two_channels_on_a_circle(self, rng):
        target = np.array([0.9, 0.2])
        angles = np.linspace(0, 2 * np.pi, 400, endpoint=False)
        circle = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        runs = np.repeat([0, 1], 200)
        wavelengths = {
            0: wavelength_for_frequency(903e6),
            1: wavelength_for_frequency(920e6),
        }
        phases = np.zeros(400)
        for run in (0, 1):
            members = runs == run
            phases[members] = _run_phases(
                circle[members], target, wavelengths[run],
                rng.uniform(0, TWO_PI), 0.05, rng,
            )
        solution = locate_multireference(
            circle, phases, runs, dim=2, interval_m=0.2, wavelengths_m=wavelengths
        )
        assert np.linalg.norm(solution.position - target) < 0.015

    def test_collinear_runs_fall_back_to_sqrt_recovery(self, rng):
        """Hop blocks on a single straight sweep: references are collinear,
        so the unobserved depth comes from one reference sphere + prior."""
        target = np.array([0.1, 0.9])
        x = np.linspace(-0.5, 0.5, 400)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        runs = np.repeat([0, 1], 200)
        wavelengths = {
            0: wavelength_for_frequency(903e6),
            1: wavelength_for_frequency(925e6),
        }
        phases = np.zeros(400)
        for run in (0, 1):
            members = runs == run
            phases[members] = _run_phases(
                positions[members], target, wavelengths[run],
                rng.uniform(0, TWO_PI), 0.03, rng,
            )
        solution = locate_multireference(
            positions, phases, runs, dim=2, interval_m=0.2,
            wavelengths_m=wavelengths,
        )
        assert np.linalg.norm(solution.position - target) < 0.02

    def test_negative_side_prior(self):
        target = np.array([0.0, -0.8])
        x = np.linspace(-0.5, 0.5, 300)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        runs = np.zeros(300, dtype=int)
        phases = _run_phases(
            positions, target, DEFAULT_WAVELENGTH_M, 0.3, 0.0, None
        )
        solution = locate_multireference(
            positions, phases, runs, dim=2, interval_m=0.2,
            smoothing_window=1, positive_side=False,
        )
        assert solution.position == pytest.approx(target, abs=1e-5)

    def test_missing_wavelength_rejected(self, rng):
        positions = np.stack([np.linspace(0, 1, 20), np.zeros(20)], axis=1)
        with pytest.raises(ValueError):
            locate_multireference(
                positions, np.zeros(20), np.zeros(20, dtype=int),
                dim=2, wavelengths_m={5: 0.3},
            )


class TestBuildSystem:
    def _simple(self):
        positions = np.array(
            [[0.0, 0.0], [0.2, 0.0], [0.4, 0.0], [0.0, 0.3], [0.2, 0.3], [0.4, 0.3]]
        )
        runs = np.array([0, 0, 0, 1, 1, 1])
        deltas = np.zeros(6)
        return positions, deltas, runs

    def test_column_layout(self):
        positions, deltas, runs = self._simple()
        system = build_multireference_system(
            positions, deltas, runs, [(0, 1), (3, 4)]
        )
        assert system.matrix.shape == (2, 2 + 2)
        assert system.run_ids == (0, 1)
        # Row 0 belongs to run 0: its d_r coefficient sits in column 2.
        assert system.matrix[0, 3] == 0.0
        assert system.matrix[1, 2] == 0.0

    def test_cross_run_pair_rejected(self):
        positions, deltas, runs = self._simple()
        with pytest.raises(ValueError):
            build_multireference_system(positions, deltas, runs, [(0, 3)])

    def test_coincident_pair_rejected(self):
        positions, deltas, runs = self._simple()
        positions[1] = positions[0]
        with pytest.raises(ValueError):
            build_multireference_system(positions, deltas, runs, [(0, 1)])

    def test_empty_pairs_rejected(self):
        positions, deltas, runs = self._simple()
        with pytest.raises(ValueError):
            build_multireference_system(positions, deltas, runs, [])

    def test_solver_validation(self):
        positions, deltas, runs = self._simple()
        system = build_multireference_system(positions, deltas, runs, [(0, 1)])
        with pytest.raises(ValueError):
            solve_multireference(system, max_iterations=0)

    def test_short_run_rejected(self):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        runs = np.array([0] * 8 + [1] * 2)
        with pytest.raises(ValueError):
            locate_multireference(positions, np.zeros(10), runs, dim=2)
