"""Tests for repro.core.adaptive."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import AdaptiveResult, ParameterGrid, adaptive_localize
from repro.core.localizer import LionLocalizer, PreprocessConfig


def _scan(target, noise_std=0.0, rng=None, n=400, half=1.0):
    x = np.linspace(-half, half, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.4
    if noise_std > 0.0:
        phases = phases + rng.normal(0.0, noise_std, size=n)
    return positions, np.mod(phases, TWO_PI)


class TestParameterGrid:
    def test_defaults_match_paper_sweeps(self):
        grid = ParameterGrid()
        assert min(grid.ranges_m) == pytest.approx(0.6)
        assert max(grid.ranges_m) == pytest.approx(1.1)
        assert min(grid.intervals_m) == pytest.approx(0.10)
        assert max(grid.intervals_m) == pytest.approx(0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterGrid(ranges_m=())
        with pytest.raises(ValueError):
            ParameterGrid(ranges_m=(0.0,))
        with pytest.raises(ValueError):
            ParameterGrid(intervals_m=(-0.1,))


class TestAdaptiveLocalize:
    def test_noiseless_recovery(self):
        target = np.array([0.1, 0.8])
        positions, phases = _scan(target)
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = adaptive_localize(localizer, positions, phases)
        assert result.position == pytest.approx(target, abs=1e-5)

    def test_outcomes_cover_grid(self):
        target = np.array([0.0, 0.9])
        positions, phases = _scan(target)
        grid = ParameterGrid(ranges_m=(0.6, 0.8), intervals_m=(0.2, 0.3))
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = adaptive_localize(localizer, positions, phases, grid=grid)
        assert len(result.outcomes) == 4
        combos = {(o.range_m, o.interval_m) for o in result.outcomes}
        assert combos == {(0.6, 0.2), (0.6, 0.3), (0.8, 0.2), (0.8, 0.3)}

    def test_interval_geq_range_skipped(self):
        target = np.array([0.0, 0.9])
        positions, phases = _scan(target)
        grid = ParameterGrid(ranges_m=(0.3,), intervals_m=(0.2, 0.4))
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        result = adaptive_localize(localizer, positions, phases, grid=grid)
        assert len(result.outcomes) == 1
        assert result.outcomes[0].interval_m == pytest.approx(0.2)

    def test_selection_quantile(self, rng):
        target = np.array([0.0, 0.8])
        positions, phases = _scan(target, noise_std=0.1, rng=rng)
        localizer = LionLocalizer(dim=2)
        result = adaptive_localize(
            localizer, positions, phases, selection_quantile=0.5
        )
        assert len(result.selected) == int(np.ceil(0.5 * len(result.outcomes)))

    def test_best_outcome_minimises_criterion(self, rng):
        target = np.array([0.0, 0.8])
        positions, phases = _scan(target, noise_std=0.1, rng=rng)
        localizer = LionLocalizer(dim=2)
        result = adaptive_localize(localizer, positions, phases)
        best = result.best_outcome
        assert all(best.abs_mean_residual <= o.abs_mean_residual for o in result.outcomes)

    def test_mean_abs_criterion(self, rng):
        target = np.array([0.0, 0.8])
        positions, phases = _scan(target, noise_std=0.1, rng=rng)
        localizer = LionLocalizer(dim=2)
        result = adaptive_localize(
            localizer, positions, phases, criterion="mean_abs"
        )
        assert np.linalg.norm(result.position - target) < 0.05

    def test_unknown_criterion_rejected(self):
        localizer = LionLocalizer(dim=2)
        with pytest.raises(ValueError):
            adaptive_localize(localizer, np.zeros((5, 2)), np.zeros(5), criterion="bogus")

    def test_bad_quantile_rejected(self):
        localizer = LionLocalizer(dim=2)
        with pytest.raises(ValueError):
            adaptive_localize(
                localizer, np.zeros((5, 2)), np.zeros(5), selection_quantile=0.0
            )

    def test_no_valid_configuration_rejected(self):
        # Scan far smaller than every grid range/interval combination.
        x = np.linspace(-0.01, 0.01, 10)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        grid = ParameterGrid(ranges_m=(0.001,), intervals_m=(0.3,))
        localizer = LionLocalizer(dim=2)
        with pytest.raises(ValueError):
            adaptive_localize(localizer, positions, np.zeros(10), grid=grid)
