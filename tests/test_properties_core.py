"""Property-based tests (hypothesis) for the LION core model.

The central invariant: for *any* geometry with exact (noise-free) phase
data, the radical-equation system is satisfied exactly by the true target
and reference distance — regardless of trajectory shape, pair selection or
dimension. These tests drive that invariant over randomized geometry.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.lowerdim import recover_coordinate_from_reference
from repro.core.pairing import lag_pairs
from repro.core.radical import radical_row
from repro.core.solvers import solve_least_squares, solve_weighted_least_squares
from repro.core.system import build_system
from repro.core.weights import gaussian_residual_weights, huber_weights

coordinates = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@st.composite
def target_and_scan_2d(draw):
    """A random 2D target plus a random non-degenerate scan."""
    target = np.array([draw(coordinates), draw(coordinates)])
    n = draw(st.integers(min_value=8, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-1.0, 1.0, size=(n, 2))
    # Reject scans containing the target or near-duplicate positions.
    assume(np.min(np.linalg.norm(positions - target, axis=1)) > 0.05)
    diffs = positions[:, np.newaxis, :] - positions[np.newaxis, :, :]
    distances = np.linalg.norm(diffs, axis=2) + np.eye(n)
    assume(np.min(distances) > 1e-3)
    return target, positions


class TestRadicalInvariant:
    @given(target_and_scan_2d())
    @settings(max_examples=50, deadline=None)
    def test_true_target_satisfies_every_row(self, data):
        target, positions = data
        reference = positions[0]
        d_r = float(np.linalg.norm(target - reference))
        distances = np.linalg.norm(positions - target, axis=1)
        deltas = distances - d_r
        unknowns = np.concatenate([target, [d_r]])
        for i in range(1, len(positions)):
            coefficients, kappa = radical_row(
                positions[0], deltas[0], positions[i], deltas[i]
            )
            assert abs(coefficients @ unknowns - kappa) < 1e-8

    @given(target_and_scan_2d())
    @settings(max_examples=30, deadline=None)
    def test_ls_solution_recovers_target(self, data):
        target, positions = data
        distances = np.linalg.norm(positions - target, axis=1)
        deltas = distances - distances[0]
        system = build_system(positions, deltas, lag_pairs(len(positions), 1))
        # Require a well-conditioned system (random scans can be nearly
        # collinear, where recovery degrades legitimately).
        singular_values = np.linalg.svd(system.matrix, compute_uv=False)
        assume(singular_values[-1] > 1e-3 * singular_values[0])
        solution = solve_least_squares(system)
        assert np.linalg.norm(solution.position - target) < 1e-5


class TestSolverProperties:
    @given(target_and_scan_2d(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_wls_never_catastrophically_worse_than_ls(self, data, noise_seed):
        target, positions = data
        rng = np.random.default_rng(noise_seed)
        distances = np.linalg.norm(positions - target, axis=1)
        deltas = distances - distances[0] + rng.normal(0.0, 0.002, len(positions))
        system = build_system(positions, deltas, lag_pairs(len(positions), 1))
        singular_values = np.linalg.svd(system.matrix, compute_uv=False)
        assume(singular_values[-1] > 1e-3 * singular_values[0])
        ls = solve_least_squares(system)
        wls = solve_weighted_least_squares(system)
        error_ls = np.linalg.norm(ls.position - target)
        error_wls = np.linalg.norm(wls.position - target)
        assert error_wls < 10.0 * error_ls + 0.01

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_gaussian_weights_bounded(self, residuals):
        weights = gaussian_residual_weights(np.array(residuals))
        assert np.all(weights > 0.0)
        assert np.all(weights <= 1.0 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_huber_weights_bounded(self, residuals):
        weights = huber_weights(np.array(residuals))
        assert np.all(weights > 0.0)
        assert np.all(weights <= 1.0 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_gaussian_weights_affine_invariant(self, residuals, scale, shift):
        """Scaling/shifting all residuals must not change the weights."""
        base = np.array(residuals)
        assume(np.std(base) > 1e-6)
        original = gaussian_residual_weights(base)
        transformed = gaussian_residual_weights(base * scale + shift)
        assert np.allclose(original, transformed, atol=1e-9)


class TestLowerDimensionProperties:
    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=0.05, max_value=2.0),
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_recovery_exact_for_consistent_inputs(self, x, y_height, ref_x, ref_y):
        """If d_r is geometrically consistent, recovery is exact."""
        target = np.array([x, ref_y + y_height])
        reference = np.array([ref_x, ref_y])
        d_r = float(np.linalg.norm(target - reference))
        partial = np.array([x, 0.0])
        result = recover_coordinate_from_reference(partial, 1, d_r, reference)
        assert abs(result.position[1] - target[1]) < 1e-9

    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_candidates_symmetric_about_reference(self, x, d_r, ref_y):
        reference = np.array([x, ref_y])
        result = recover_coordinate_from_reference(
            np.array([x, 0.0]), 1, d_r, reference
        )
        high, low = result.candidates[0, 1], result.candidates[1, 1]
        assert high + low == pytest.approx(2.0 * ref_y, abs=1e-9)


class TestPhaseToSystemRoundTrip:
    @given(target_and_scan_2d(), st.floats(min_value=0.0, max_value=TWO_PI))
    @settings(max_examples=25, deadline=None)
    def test_hardware_offset_cancels(self, data, offset):
        """Any constant phase offset leaves the recovered position unchanged
        (delta distances difference it away)."""
        target, positions = data
        distances = np.linalg.norm(positions - target, axis=1)
        k = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M
        unwrapped = k * distances + offset
        deltas = (unwrapped - unwrapped[0]) / k
        system = build_system(positions, deltas, lag_pairs(len(positions), 1))
        singular_values = np.linalg.svd(system.matrix, compute_uv=False)
        assume(singular_values[-1] > 1e-3 * singular_values[0])
        solution = solve_least_squares(system)
        assert np.linalg.norm(solution.position - target) < 1e-5
