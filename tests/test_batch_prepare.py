"""Batched request-path preprocessing: bit-identity, caching, ragged edges.

``repro.core.batch_prepare`` promises the scalar ``prepare()`` contract
at batch scale: float64 results bit-for-bit identical per member, every
per-member failure ejected as exactly the scalar path's exception
without touching batchmates, and repeat geometries served from the
trajectory-template cache. The float32 pipeline is opt-in and bounded,
not exact — property tests pin its error ceiling.
"""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.batch_prepare import (
    batch_prepare,
    clear_template_cache,
    prepare_batch,
    template_cache_info,
)
from repro.core.localizer import (
    DegenerateGeometryError,
    LionLocalizer,
    TooFewReadsError,
)
from repro.core.sweep import clear_pair_cache
from repro.pipeline.contract import EstimationRequest
from repro.pipeline.registry import create_estimator, estimate
from repro.serve.batching import execute_batch
from repro.serve.engine import ServeConfig, ServeEngine


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_template_cache()
    clear_pair_cache()
    yield
    clear_template_cache()
    clear_pair_cache()


def _line_request(seed=0, reads=40, dim=2, target=(0.3, 0.8), **fields):
    rng = np.random.default_rng(seed)
    x = np.linspace(-0.5, 0.5, reads)
    if dim == 2:
        positions = np.stack([x, np.zeros(reads)], axis=1)
        goal = np.asarray(target, dtype=float)
    else:
        positions = np.stack([x, np.zeros(reads), np.zeros(reads)], axis=1)
        goal = np.asarray((*target, 0.0), dtype=float)
    distances = np.linalg.norm(positions - goal, axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + rng.normal(0.0, 0.04, reads),
        TWO_PI,
    )
    return EstimationRequest(positions=positions, phases_rad=phases, **fields)


def _l_request(seed=0, reads=30):
    """Two-segment L-scan (x-sweep then y-sweep) spanning both axes."""
    rng = np.random.default_rng(seed)
    half = reads // 2
    sweep_x = np.stack([np.linspace(-0.4, 0.4, half), np.full(half, -0.2)], axis=1)
    sweep_y = np.stack([np.full(reads - half, 0.4), np.linspace(-0.2, 0.5, reads - half)], axis=1)
    positions = np.concatenate([sweep_x, sweep_y])
    segment_ids = np.concatenate([np.zeros(half, int), np.ones(reads - half, int)])
    distances = np.linalg.norm(positions - np.array([0.1, 0.9]), axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + rng.normal(0.0, 0.04, reads),
        TWO_PI,
    )
    return EstimationRequest(
        positions=positions, phases_rad=phases, segment_ids=segment_ids
    )


def _assert_scan_equal(ours, theirs):
    assert np.array_equal(ours.solve_points, theirs.solve_points)
    assert np.array_equal(ours.used_profile, theirs.used_profile)
    assert np.array_equal(ours.delta_d, theirs.delta_d)
    assert ours.reference_index == theirs.reference_index
    assert ours.missing_axis == theirs.missing_axis
    if theirs.rotation is None:
        assert ours.rotation is None
    else:
        assert np.array_equal(ours.rotation, theirs.rotation)
    if theirs.used_segments is None:
        assert ours.used_segments is None
    else:
        assert np.array_equal(ours.used_segments, theirs.used_segments)


class TestBitIdentity:
    def test_mixed_batch_matches_scalar_prepare(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        mask = np.zeros(40, bool)
        mask[::7] = True
        requests = [
            _line_request(seed=1),
            _line_request(seed=2, exclude_mask=mask),
            _l_request(seed=3),
            _line_request(seed=4, reference_index=11),
            _line_request(seed=5, reads=25),
        ]
        batched = batch_prepare(localizer, requests)
        for request, ours in zip(requests, batched):
            theirs = localizer.prepare(
                request.positions,
                request.phases_rad,
                segment_ids=request.segment_ids,
                exclude_mask=request.exclude_mask,
                reference_index=request.reference_index,
            )
            _assert_scan_equal(ours, theirs)

    def test_property_random_batches_bit_identical(self):
        localizer = LionLocalizer(dim=2, interval_m=0.2)
        rng = np.random.default_rng(99)
        for trial in range(10):
            requests = [
                _line_request(seed=int(rng.integers(1 << 30)), reads=int(rng.integers(20, 60)))
                for _ in range(6)
            ]
            for ours, request in zip(batch_prepare(localizer, requests), requests):
                theirs = localizer.prepare(request.positions, request.phases_rad)
                _assert_scan_equal(ours, theirs)

    def test_execute_batch_float64_reports_identical(self):
        estimator = create_estimator("lion", {"dim": 2, "method": "wls"})
        requests = [_line_request(seed=s) for s in range(8)]
        for report, request in zip(execute_batch(estimator, requests), requests):
            scalar = estimate("lion", request, {"dim": 2, "method": "wls"})
            assert np.array_equal(report.position, scalar.position)
            assert report.diagnostics == scalar.diagnostics
            assert np.array_equal(report.residuals, scalar.residuals)


class TestFloat32Bounds:
    #: Position-error ceiling of the float32 pipeline, meters. The solver
    #: converges to ~1e-4; the ceiling leaves room for sqrt-recovery
    #: amplification on near-zero radicands.
    TOLERANCE_M = 5e-3

    def test_property_positions_bounded(self):
        estimator = create_estimator("lion", {"dim": 2, "method": "wls"})
        rng = np.random.default_rng(7)
        for trial in range(8):
            requests = [
                _line_request(
                    seed=int(rng.integers(1 << 30)),
                    target=(float(rng.uniform(-0.3, 0.3)), float(rng.uniform(0.6, 1.1))),
                )
                for _ in range(8)
            ]
            batched = execute_batch(estimator, requests, dtype="float32")
            for report, request in zip(batched, requests):
                scalar = estimate("lion", request, {"dim": 2, "method": "wls"})
                error = float(np.max(np.abs(report.position - scalar.position)))
                assert error < self.TOLERANCE_M

    def test_prepared_deltas_bounded(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        requests = [_line_request(seed=s) for s in range(4)]
        exact = batch_prepare(localizer, requests)
        approx = batch_prepare(localizer, requests, dtype=np.float32)
        for ours, theirs in zip(approx, exact):
            assert ours.delta_d.dtype == np.float32
            assert float(np.max(np.abs(ours.delta_d - theirs.delta_d))) < 1e-5

    def test_diagnostics_shape_matches_scalar(self):
        estimator = create_estimator("lion", {"dim": 2, "method": "wls"})
        requests = [_line_request(seed=3)]
        report = execute_batch(estimator, requests, dtype="float32")[0]
        scalar = estimate("lion", requests[0], {"dim": 2, "method": "wls"})
        assert set(report.diagnostics) == set(scalar.diagnostics)
        assert report.diagnostics["recovered_axis"] == scalar.diagnostics["recovered_axis"]
        assert report.raw.recovery is not None


class TestTemplateCache:
    def test_repeat_geometry_hits(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        requests = [_line_request(seed=s) for s in range(4)]
        batch_prepare(localizer, requests)
        first = template_cache_info()
        # all four members share one trajectory digest -> one build.
        assert first["misses"] == 1
        assert first["hits"] == 3
        batch_prepare(localizer, requests)
        second = template_cache_info()
        assert second["misses"] == 1
        assert second["hits"] == 7
        assert second["size"] == 1

    def test_distinct_masks_distinct_templates(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        mask = np.zeros(40, bool)
        mask[:5] = True
        requests = [_line_request(seed=1), _line_request(seed=1, exclude_mask=mask)]
        batch_prepare(localizer, requests)
        assert template_cache_info()["misses"] == 2

    def test_clear_resets_counters(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        batch_prepare(localizer, [_line_request()])
        clear_template_cache()
        info = template_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0, "max_size": info["max_size"]}


class TestRaggedBatches:
    def test_too_few_reads_member_ejects_alone(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        bad = EstimationRequest(
            positions=np.array([[0.0, 0.0], [0.1, 0.0]]),
            phases_rad=np.array([0.1, 0.2]),
        )
        good = [_line_request(seed=s) for s in range(3)]
        results = batch_prepare(localizer, [good[0], bad, good[1], good[2]])
        assert isinstance(results[1], TooFewReadsError)
        for slot, request in ((0, good[0]), (2, good[1]), (3, good[2])):
            _assert_scan_equal(results[slot], localizer.prepare(request.positions, request.phases_rad))

    def test_mixed_2d_3d_rejection(self):
        """A planar member under a 3D localizer ejects as the scalar error."""
        localizer = LionLocalizer(dim=3, interval_m=0.25)
        flat = _line_request(seed=1)  # (n, 2): unobservable 3D target
        spatial = _line_request(seed=2, dim=3)
        spatial_positions = spatial.positions.copy()
        spatial_positions[:, 1] = np.linspace(-0.3, 0.3, spatial_positions.shape[0])
        spatial = EstimationRequest(
            positions=spatial_positions, phases_rad=spatial.phases_rad
        )
        results = batch_prepare(localizer, [flat, spatial])
        assert isinstance(results[0], DegenerateGeometryError)
        _assert_scan_equal(
            results[1], localizer.prepare(spatial.positions, spatial.phases_rad)
        )

    def test_bad_shape_member_ejects_alone(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        bad = EstimationRequest(
            positions=np.zeros((10, 4)), phases_rad=np.zeros(10)
        )
        good = _line_request(seed=4)
        results = batch_prepare(localizer, [bad, good])
        assert isinstance(results[0], ValueError)
        assert "positions must be" in str(results[0])
        _assert_scan_equal(results[1], localizer.prepare(good.positions, good.phases_rad))

    def test_empty_after_mask_member(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        smothered = _line_request(seed=5, exclude_mask=np.ones(40, bool))
        thin = _line_request(seed=6, exclude_mask=~np.isin(np.arange(40), [0, 7]))
        good = _line_request(seed=7)
        results = batch_prepare(localizer, [smothered, thin, good])
        assert isinstance(results[0], TooFewReadsError)
        assert isinstance(results[1], TooFewReadsError)
        _assert_scan_equal(results[2], localizer.prepare(good.positions, good.phases_rad))

    def test_non_finite_phases_member_ejects_alone(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        poisoned = _line_request(seed=8)
        phases = poisoned.phases_rad.copy()
        phases[3] = np.nan
        poisoned = EstimationRequest(positions=poisoned.positions, phases_rad=phases)
        good = _line_request(seed=9)
        results = batch_prepare(localizer, [poisoned, good])
        assert isinstance(results[0], ValueError)
        assert "non-finite" in str(results[0])
        _assert_scan_equal(results[1], localizer.prepare(good.positions, good.phases_rad))

    def test_missing_fields_member(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        results = batch_prepare(
            localizer, [EstimationRequest(positions=np.zeros((5, 2))), _line_request()]
        )
        assert isinstance(results[0], ValueError)
        assert "phases_rad" in str(results[0])
        assert not isinstance(results[1], ValueError)

    def test_execute_batch_isolates_failures(self):
        estimator = create_estimator("lion", {"dim": 2, "method": "wls"})
        bad = EstimationRequest(
            positions=np.array([[0.0, 0.0], [0.1, 0.0]]),
            phases_rad=np.array([0.1, 0.2]),
        )
        good = _line_request(seed=11)
        for dtype in ("float64", "float32"):
            results = execute_batch(estimator, [good, bad], dtype=dtype)
            assert isinstance(results[1], TooFewReadsError)
            assert results[0].position.shape == (2,)


class TestPrepareCopyContract:
    def test_assume_preprocessed_reads_input_in_place(self):
        """Satellite: no defensive copy; inputs stay unmutated, outputs don't alias."""
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        request = _line_request(seed=12)
        profile = localizer.preprocess_phase(request.phases_rad)
        snapshot = profile.copy()
        prepared = localizer.prepare(
            request.positions, profile, assume_preprocessed=True
        )
        # the input was not mutated by preparation...
        assert np.array_equal(profile, snapshot)
        # ...and the prepared scan holds no view of it: mutating the
        # input afterwards must not change the prepared profile.
        before = prepared.used_profile.copy()
        profile += 123.0
        assert np.array_equal(prepared.used_profile, before)

    def test_assume_preprocessed_matches_two_step(self):
        localizer = LionLocalizer(dim=2, interval_m=0.25)
        request = _line_request(seed=13)
        profile = localizer.preprocess_phase(request.phases_rad)
        direct = localizer.prepare(request.positions, request.phases_rad)
        two_step = localizer.prepare(
            request.positions, profile, assume_preprocessed=True
        )
        _assert_scan_equal(two_step, direct)


class TestFingerprintCache:
    def test_fingerprint_computed_once(self):
        request = _line_request(seed=14)
        first = request.fingerprint()
        assert request.fingerprint() is first  # cached object, not recomputed

    def test_equal_content_equal_fingerprint(self):
        a = _line_request(seed=15)
        b = EstimationRequest(
            positions=a.positions.copy(), phases_rad=a.phases_rad.copy()
        )
        c = _line_request(seed=16)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestServeIntegration:
    def test_dtype_knob_validated(self):
        assert ServeConfig(dtype="float32").dtype == "float32"
        with pytest.raises(ValueError, match="dtype"):
            ServeConfig(dtype="float16")

    def test_engine_float32_end_to_end(self):
        config = ServeConfig(dtype="float32", cache_entries=0)
        requests = [_line_request(seed=s) for s in range(6)]
        with ServeEngine(config) as engine:
            tickets = [engine.submit("lion", request) for request in requests]
            reports = [ticket.result(timeout=30.0) for ticket in tickets]
            stats = engine.stats()
        for report, request in zip(reports, requests):
            scalar = estimate("lion", request)
            assert float(np.max(np.abs(report.position - scalar.position))) < 5e-3
        assert {"hits", "misses", "hit_rate"} <= set(stats["template_cache"])
        assert {"hits", "misses", "hit_rate"} <= set(stats["pair_cache"])

    def test_single_request_dispatch_warms_template_cache(self):
        """The streaming windowed re-solve path (engine.submit of one
        request at a time) rides the template cache under
        ``fuse_singletons`` — and at load, singleton re-solves batch up
        with concurrent traffic and ride it regardless."""
        with ServeEngine(ServeConfig(cache_entries=0, fuse_singletons=True)) as engine:
            engine.submit("lion", _line_request(seed=20)).result(timeout=30.0)
            engine.submit("lion", _line_request(seed=21)).result(timeout=30.0)
        info = template_cache_info()
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_stats_hit_rate_none_before_traffic(self):
        with ServeEngine(ServeConfig(cache_entries=0)) as engine:
            stats = engine.stats()
        assert stats["template_cache"]["hit_rate"] is None

    def test_timeseries_sample_carries_cache_rates(self):
        from repro.serve.net.http import derive_serve_sample
        from repro.obs.history import Sample

        sample = Sample(
            t=100.0,
            dt=1.0,
            counters={
                "serve.template_cache_hits": [({}, 9.0)],
                "serve.template_cache_misses": [({}, 1.0)],
                "adaptive.pair_cache_total": [
                    ({"result": "hit"}, 3.0),
                    ({"result": "miss"}, 1.0),
                ],
            },
            gauges={},
            histograms={},
        )
        derived = derive_serve_sample(sample)
        assert derived["template_hit_rate"] == 0.9
        assert derived["pair_hit_rate"] == 0.75
        empty = Sample(t=101.0, dt=1.0, counters={}, gauges={}, histograms={})
        assert derive_serve_sample(empty)["template_hit_rate"] is None
