"""Tests for repro.rf.multipath."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.rf.multipath import Reflector, WallReflector, multipath_components


class TestReflector:
    def test_path_length(self):
        reflector = Reflector(image_position=(0.0, 0.0, 0.0))
        assert reflector.path_length((3.0, 4.0, 0.0)) == pytest.approx(5.0)

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            Reflector(image_position=(0, 0, 0), amplitude=1.5)


class TestWallReflector:
    def test_image_mirrored_across_plane(self):
        wall = WallReflector(point_on_plane=(0.0, 2.0, 0.0), normal=(0.0, 1.0, 0.0))
        image = wall.image_for((0.0, 0.5, 0.0))
        assert image.image_array() == pytest.approx([0.0, 3.5, 0.0])

    def test_image_preserves_in_plane_coordinates(self):
        wall = WallReflector(point_on_plane=(5.0, 0.0, 0.0), normal=(1.0, 0.0, 0.0))
        image = wall.image_for((1.0, 2.0, 3.0))
        assert image.image_array() == pytest.approx([9.0, 2.0, 3.0])

    def test_antenna_on_plane_maps_to_itself(self):
        wall = WallReflector(point_on_plane=(0.0, 1.0, 0.0), normal=(0.0, 1.0, 0.0))
        image = wall.image_for((0.3, 1.0, -0.2))
        assert image.image_array() == pytest.approx([0.3, 1.0, -0.2])

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            WallReflector(point_on_plane=(0, 0, 0), normal=(0, 0, 0))


class TestMultipathComponents:
    def test_no_reflectors_zero(self):
        assert multipath_components([], (1.0, 0.0, 0.0), DEFAULT_WAVELENGTH_M, 1.0) == 0.0

    def test_magnitude_scales_with_amplitude(self):
        tag = (0.0, 1.0, 0.0)
        weak = multipath_components(
            [Reflector((0.0, -3.0, 0.0), amplitude=0.1)], tag, DEFAULT_WAVELENGTH_M, 1.0
        )
        strong = multipath_components(
            [Reflector((0.0, -3.0, 0.0), amplitude=0.3)], tag, DEFAULT_WAVELENGTH_M, 1.0
        )
        # The mixed (dominant) term is linear in the reflection amplitude.
        assert abs(strong) == pytest.approx(3.0 * abs(weak), rel=0.05)

    def test_mixed_term_dominates_double_bounce(self):
        tag = (0.0, 1.0, 0.0)
        reflector = Reflector((0.0, -3.0, 0.0), amplitude=0.3)
        total = multipath_components([reflector], tag, DEFAULT_WAVELENGTH_M, 1.0)
        length = reflector.path_length(tag)
        mixed = 2.0 * reflector.amplitude / (1.0 * length)
        double = (reflector.amplitude / length) ** 2
        assert abs(total) <= mixed + double
        assert abs(total) >= mixed - double

    def test_departure_gain_attenuates(self):
        tag = (0.0, 1.0, 0.0)
        reflector = Reflector((0.0, -3.0, 0.0), amplitude=0.3)
        full = multipath_components(
            [reflector], tag, DEFAULT_WAVELENGTH_M, 1.0, departure_gains=[1.0]
        )
        suppressed = multipath_components(
            [reflector], tag, DEFAULT_WAVELENGTH_M, 1.0, departure_gains=[0.01]
        )
        assert abs(suppressed) < abs(full) * 0.2

    def test_relative_influence_grows_with_depth(self):
        """The Fig. 14(b) mechanism: echo-to-LoS ratio rises with depth."""
        reflector = Reflector((0.0, 4.0, 0.0), amplitude=0.3)
        ratios = []
        for depth in (0.6, 1.0, 1.6):
            tag = (0.0, 0.0, 0.0)
            # Antenna at (0, depth, 0); image fixed beyond it.
            echo = abs(
                multipath_components([reflector], tag, DEFAULT_WAVELENGTH_M, depth)
            )
            los = 1.0 / depth**2
            ratios.append(echo / los)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_gain_list_length_validated(self):
        with pytest.raises(ValueError):
            multipath_components(
                [Reflector((0, 0, 0))], (1, 1, 1), DEFAULT_WAVELENGTH_M, 1.0,
                departure_gains=[1.0, 1.0],
            )

    def test_bad_wavelength_rejected(self):
        with pytest.raises(ValueError):
            multipath_components([], (1, 1, 1), 0.0, 1.0)

    def test_bad_distance_rejected(self):
        with pytest.raises(ValueError):
            multipath_components([], (1, 1, 1), DEFAULT_WAVELENGTH_M, 0.0)
