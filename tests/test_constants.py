"""Tests for repro.constants."""

import math

import pytest

from repro import constants


class TestWavelength:
    def test_default_wavelength_matches_speed_of_light(self):
        assert constants.DEFAULT_WAVELENGTH_M == pytest.approx(
            constants.SPEED_OF_LIGHT / constants.DEFAULT_FREQUENCY_HZ
        )

    def test_default_wavelength_about_32_cm(self):
        # 920.625 MHz -> ~0.3256 m; half wavelength ~16 cm as the paper says.
        assert 0.32 < constants.DEFAULT_WAVELENGTH_M < 0.33

    def test_wavelength_for_frequency(self):
        assert constants.wavelength_for_frequency(300e6) == pytest.approx(
            constants.SPEED_OF_LIGHT / 300e6
        )

    def test_wavelength_rejects_zero(self):
        with pytest.raises(ValueError):
            constants.wavelength_for_frequency(0.0)

    def test_wavelength_rejects_negative(self):
        with pytest.raises(ValueError):
            constants.wavelength_for_frequency(-1.0)


class TestFccChannels:
    def test_first_channel(self):
        assert constants.fcc_channel_frequency(0) == pytest.approx(902.75e6)

    def test_last_channel_within_band(self):
        frequency = constants.fcc_channel_frequency(constants.FCC_CHANNEL_COUNT - 1)
        assert frequency < 928e6

    def test_channel_spacing(self):
        delta = constants.fcc_channel_frequency(7) - constants.fcc_channel_frequency(6)
        assert delta == pytest.approx(500e3)

    @pytest.mark.parametrize("index", [-1, 50, 1000])
    def test_out_of_range_channel_rejected(self, index):
        with pytest.raises(ValueError):
            constants.fcc_channel_frequency(index)


def test_two_pi():
    assert constants.TWO_PI == pytest.approx(2.0 * math.pi)
