"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rf.antenna import Antenna
from repro.rf.tag import Tag


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def ideal_antenna() -> Antenna:
    """An antenna with no hidden displacement or offset, facing -y."""
    return Antenna(
        physical_center=(0.0, 0.8, 0.0),
        boresight=(0.0, -1.0, 0.0),
        name="ideal",
    )


@pytest.fixture
def displaced_antenna() -> Antenna:
    """An antenna with a known center displacement and phase offset."""
    return Antenna(
        physical_center=(0.1, 0.9, 0.0),
        center_displacement=(0.02, -0.015, 0.025),
        phase_offset_rad=1.2,
        boresight=(0.0, -1.0, 0.0),
        name="displaced",
    )


@pytest.fixture
def ideal_tag() -> Tag:
    """A tag with zero hardware phase offset."""
    return Tag(epc="TEST-0001", phase_offset_rad=0.0)
