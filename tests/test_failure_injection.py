"""Failure-injection tests: degraded inputs must degrade gracefully.

Production scans are not clean: readers drop reads, report duplicates,
suffer interference bursts, and operators point antennas the wrong way.
These tests pin how the pipeline behaves at the edges — either still
producing a sane estimate or failing with a clear ValueError, never
silently returning garbage shapes or NaNs.
"""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.rf.reader import ReaderConfig
from repro.trajectory.linear import LinearTrajectory


def _phases(positions, target, noise=0.0, rng=None, offset=0.4):
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset
    if noise > 0:
        phases = phases + rng.normal(0.0, noise, len(distances))
    return np.mod(phases, TWO_PI)


class TestDropouts:
    def test_heavy_dropouts_still_localize(self, ideal_antenna, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)),
            ideal_antenna,
            rng=rng,
            noise=GaussianPhaseNoise(0.08),
            reader_config=ReaderConfig(dropout_probability=0.6),
        )
        assert len(scan) < 800  # most reads gone
        result = LionLocalizer(dim=2).locate(scan.positions, scan.phases)
        error = np.linalg.norm(result.position - ideal_antenna.phase_center[:2])
        assert error < 0.02

    def test_irregular_sampling_still_localizes(self, rng):
        """Non-uniform read spacing (as dropouts create) is handled by the
        spacing-based pairing."""
        target = np.array([0.1, 0.9])
        x = np.sort(rng.uniform(-0.5, 0.5, 300))
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target, noise=0.05, rng=rng)
        result = LionLocalizer(dim=2).locate(positions, phases)
        assert np.linalg.norm(result.position - target) < 0.02


class TestDuplicateReads:
    def test_repeated_positions_tolerated(self, rng):
        """Back-to-back duplicate positions (reader bursts at one spot)
        must not produce degenerate radical rows."""
        target = np.array([0.0, 0.8])
        x = np.repeat(np.linspace(-0.4, 0.4, 100), 3)  # each position 3x
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target, noise=0.05, rng=rng)
        result = LionLocalizer(dim=2).locate(positions, phases)
        assert np.linalg.norm(result.position - target) < 0.02


class TestExtremeNoise:
    def test_huge_noise_returns_finite_estimate(self, rng):
        target = np.array([0.0, 0.8])
        x = np.linspace(-0.5, 0.5, 400)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target, noise=0.8, rng=rng)
        result = LionLocalizer(dim=2).locate(positions, phases)
        assert np.all(np.isfinite(result.position))

    def test_pure_random_phases_do_not_crash(self, rng):
        x = np.linspace(-0.5, 0.5, 200)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = rng.uniform(0, TWO_PI, 200)
        result = LionLocalizer(dim=2).locate(positions, phases)
        assert np.all(np.isfinite(result.position))


class TestGeometryEdgeCases:
    def test_target_between_scan_points(self, rng):
        """Target inside the scan hull (circle scan around the antenna)."""
        target = np.array([0.02, -0.03])
        angles = np.linspace(0, 2 * np.pi, 300, endpoint=False)
        positions = 0.4 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        phases = _phases(positions, target, noise=0.05, rng=rng)
        result = LionLocalizer(dim=2, interval_m=0.3).locate(positions, phases)
        assert np.linalg.norm(result.position - target) < 0.02

    def test_target_far_away(self, rng):
        target = np.array([0.0, 5.0])
        x = np.linspace(-1.0, 1.0, 500)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target, noise=0.02, rng=rng)
        result = LionLocalizer(dim=2, interval_m=0.4).locate(positions, phases)
        # Far-field depth is poorly conditioned; along-track must stay tight.
        assert abs(result.position[0] - target[0]) < 0.05

    def test_very_short_scan_rejected_or_poor(self):
        positions = np.array([[0.0, 0.0], [0.01, 0.0], [0.02, 0.0]])
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        target = np.array([0.0, 0.8])
        phases = _phases(positions, target)
        # Either a clear error (no valid pairs) or a finite estimate.
        try:
            result = localizer.locate(positions, phases)
        except ValueError:
            return
        assert np.all(np.isfinite(result.position))

    def test_negative_side_deployment(self, rng):
        """Antenna *below* the scan plane: positive_side=False required."""
        target = np.array([0.1, -0.9])
        x = np.linspace(-0.4, 0.4, 300)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target, noise=0.03, rng=rng)
        wrong = LionLocalizer(dim=2).locate(positions, phases)
        right = LionLocalizer(dim=2, positive_side=False).locate(positions, phases)
        assert np.linalg.norm(right.position - target) < 0.01
        # The wrong prior lands on the mirror image.
        assert wrong.position[1] == pytest.approx(-right.position[1], abs=0.01)


class TestNonFiniteInputs:
    def test_nan_phase_rejected_with_clear_error(self):
        x = np.linspace(-0.4, 0.4, 100)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, np.array([0.0, 0.8]))
        phases[50] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            LionLocalizer(dim=2).locate(positions, phases)

    def test_inf_position_rejected(self):
        x = np.linspace(-0.4, 0.4, 100)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, np.array([0.0, 0.8]))
        positions = positions.copy()
        positions[10, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            LionLocalizer(dim=2).locate(positions, phases)


class TestScanDirectionInvariance:
    def test_reversed_scan_same_answer(self, rng):
        target = np.array([0.1, 0.9])
        x = np.linspace(-0.4, 0.4, 300)
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        phases = _phases(positions, target)
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=1))
        forward = localizer.locate(positions, phases)
        backward = localizer.locate(positions[::-1].copy(), phases[::-1].copy())
        assert forward.position == pytest.approx(backward.position, abs=1e-6)
