"""Tests for repro.signalproc.stats (circular statistics)."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.signalproc.stats import (
    circular_difference,
    circular_distance,
    circular_mean,
    circular_std,
    mean_resultant_length,
)


class TestCircularMean:
    def test_simple_cluster(self):
        assert circular_mean(np.array([0.1, 0.2, 0.3])) == pytest.approx(0.2)

    def test_cluster_across_wrap(self):
        """Arithmetic mean of {6.2, 0.1} is ~3.15; circular mean is ~0."""
        angles = np.array([TWO_PI - 0.1, 0.1])
        mean = circular_mean(angles)
        assert min(mean, TWO_PI - mean) == pytest.approx(0.0, abs=1e-9)

    def test_invariant_to_rotation(self, rng):
        angles = rng.normal(1.0, 0.2, size=100)
        shift = 2.5
        shifted_mean = circular_mean(np.mod(angles + shift, TWO_PI))
        base_mean = circular_mean(np.mod(angles, TWO_PI))
        diff = circular_difference(shifted_mean, base_mean)
        assert diff == pytest.approx(shift, abs=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))

    def test_balanced_rejected(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([0.0, np.pi]))


class TestMeanResultantLength:
    def test_identical_angles(self):
        assert mean_resultant_length(np.full(10, 1.3)) == pytest.approx(1.0)

    def test_uniform_spread_near_zero(self):
        angles = np.linspace(0.0, TWO_PI, 100, endpoint=False)
        assert mean_resultant_length(angles) == pytest.approx(0.0, abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_resultant_length(np.array([]))


class TestCircularStd:
    def test_zero_for_identical(self):
        assert circular_std(np.full(5, 0.7)) == pytest.approx(0.0, abs=1e-9)

    def test_grows_with_spread(self, rng):
        tight = circular_std(rng.normal(0.0, 0.05, 500))
        loose = circular_std(rng.normal(0.0, 0.5, 500))
        assert loose > tight

    def test_matches_linear_std_for_small_spread(self, rng):
        samples = rng.normal(2.0, 0.1, 5000)
        assert circular_std(samples) == pytest.approx(0.1, rel=0.1)


class TestCircularDifference:
    def test_plain(self):
        assert circular_difference(1.0, 0.3) == pytest.approx(0.7)

    def test_across_wrap(self):
        assert circular_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    def test_result_in_range(self, rng):
        a = rng.uniform(0, TWO_PI, 100)
        b = rng.uniform(0, TWO_PI, 100)
        diffs = circular_difference(a, b)
        assert np.all(diffs > -np.pi)
        assert np.all(diffs <= np.pi)


class TestCircularDistance:
    def test_non_negative_and_bounded(self, rng):
        a = rng.uniform(0, TWO_PI, 200)
        b = rng.uniform(0, TWO_PI, 200)
        d = circular_distance(a, b)
        assert np.all(d >= 0.0)
        assert np.all(d <= np.pi)

    def test_symmetric(self):
        assert circular_distance(0.4, 5.9) == pytest.approx(circular_distance(5.9, 0.4))
