"""Tests for repro.parallel and its integration into the evaluation stack.

The load-bearing guarantee: parallelism never changes an answer. Every
backend must produce bit-identical results for Monte-Carlo studies, the
adaptive sweep, and the batched solver against their serial references.

Work functions used with the process backend live at module level so the
pool can pickle them.
"""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import ParameterGrid, adaptive_localize
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.core.system import LinearSystem
from repro.core.solvers import (
    solve_weighted_least_squares,
    solve_weighted_least_squares_batch,
)
from repro.core.weights import huber_weights
from repro.experiments.montecarlo import run_monte_carlo
from repro.parallel import (
    JOBS_ENV_VAR,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_items,
    default_chunk_size,
    get_executor,
    resolve_jobs,
    set_default_jobs,
)

BACKENDS = ("serial", "thread", "process")


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise RuntimeError("three")
    return x


def _mc_trial(rng):
    return {"v": float(rng.normal()), "w": float(rng.random())}


def _flaky_trial(rng):
    if rng.random() < 0.3:
        raise RuntimeError("flaky")
    return {"v": float(rng.random())}


class TestJobResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            set_default_jobs(None)

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() >= 1

    def test_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            set_default_jobs(-1)
        monkeypatch.setenv(JOBS_ENV_VAR, "zero")
        with pytest.raises(ValueError):
            resolve_jobs()
        monkeypatch.setenv(JOBS_ENV_VAR, "-2")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestChunking:
    def test_chunks_preserve_order(self):
        chunks = chunk_items(list(range(10)), 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1], 0)

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 4) * 4 * 4 >= 100
        assert default_chunk_size(3, 8) == 1


class TestExecutors:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        executor = get_executor(backend, jobs=2)
        assert executor.map(_square, range(25)) == [x * x for x in range(25)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_empty(self, backend):
        executor = get_executor(backend, jobs=2)
        assert executor.map(_square, []) == []

    def test_map_reduce_without_reducer_returns_list(self):
        assert SerialExecutor().map_reduce(_square, range(4)) == [0, 1, 4, 9]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_reduce_folds_in_order(self, backend):
        executor = get_executor(backend, jobs=2)
        # Non-commutative fold: string concatenation pins the order.
        result = executor.map_reduce(
            str, range(8), reduce_fn=lambda acc, item: acc + item, initial=""
        )
        assert result == "01234567"

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_exceptions_propagate(self, backend):
        executor = get_executor(backend, jobs=2)
        with pytest.raises(RuntimeError):
            executor.map(_raise_on_three, range(6))

    def test_explicit_chunk_size(self):
        executor = ThreadExecutor(jobs=2, chunk_size=2)
        assert executor.map(_square, range(7)) == [x * x for x in range(7)]

    def test_executor_passthrough(self):
        executor = ThreadExecutor(jobs=2)
        assert get_executor(executor) is executor

    def test_none_is_serial(self):
        assert isinstance(get_executor(None), SerialExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_executor("gpu")

    def test_backend_names(self):
        assert SerialExecutor().name == "serial"
        assert ThreadExecutor(jobs=1).name == "thread"
        assert ProcessExecutor(jobs=1).name == "process"


class TestMonteCarloBackends:
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_bit_identical_to_serial(self, backend):
        serial = run_monte_carlo(_mc_trial, trials=60, seed=11)
        parallel = run_monte_carlo(
            _mc_trial, trials=60, seed=11, executor=backend, jobs=3
        )
        assert parallel.trials == serial.trials
        for name in ("v", "w"):
            assert np.array_equal(serial[name].samples, parallel[name].samples)
            assert serial[name].mean == parallel[name].mean
            assert serial[name].ci_low == parallel[name].ci_low
            assert serial[name].ci_high == parallel[name].ci_high
            assert serial[name].failures == parallel[name].failures

    def test_failures_counted_identically(self):
        serial = run_monte_carlo(_flaky_trial, trials=80, seed=4)
        threaded = run_monte_carlo(
            _flaky_trial, trials=80, seed=4, executor="thread", jobs=4
        )
        assert np.array_equal(serial["v"].samples, threaded["v"].samples)
        assert serial["v"].failures == threaded["v"].failures

    def test_strict_mode_raises_on_parallel_backend(self):
        with pytest.raises(RuntimeError):
            run_monte_carlo(
                _flaky_trial,
                trials=40,
                seed=4,
                tolerate_failures=False,
                executor="thread",
                jobs=2,
            )


class TestBootstrapSeed:
    def test_explicit_seed_reproducible(self):
        first = run_monte_carlo(_mc_trial, trials=30, seed=1, bootstrap_seed=99)
        second = run_monte_carlo(_mc_trial, trials=30, seed=1, bootstrap_seed=99)
        assert first["v"].ci_low == second["v"].ci_low
        assert first["v"].ci_high == second["v"].ci_high

    def test_default_derived_from_seed(self):
        implicit = run_monte_carlo(_mc_trial, trials=30, seed=1)
        explicit = run_monte_carlo(
            _mc_trial, trials=30, seed=1, bootstrap_seed=1 ^ 0x5EED
        )
        assert implicit["v"].ci_low == explicit["v"].ci_low

    def test_seed_changes_ci_not_samples(self):
        base = run_monte_carlo(_mc_trial, trials=30, seed=1)
        other = run_monte_carlo(_mc_trial, trials=30, seed=1, bootstrap_seed=7)
        assert np.array_equal(base["v"].samples, other["v"].samples)
        assert base["v"].ci_low != other["v"].ci_low


def _random_systems(count, rows=40, dim=2, seed=0, noise=0.02):
    rng = np.random.default_rng(seed)
    systems = []
    for _ in range(count):
        matrix = rng.normal(size=(rows, dim + 1))
        truth = rng.normal(size=dim + 1)
        rhs = matrix @ truth + rng.normal(0.0, noise, size=rows)
        systems.append(LinearSystem(matrix=matrix, rhs=rhs, dim=dim))
    return systems


class TestBatchedWls:
    def test_matches_scalar_solver_on_50_systems(self):
        systems = _random_systems(50, seed=5)
        batch = solve_weighted_least_squares_batch(systems)
        for system, solution in zip(systems, batch):
            reference = solve_weighted_least_squares(system)
            assert solution.estimate == pytest.approx(reference.estimate, abs=1e-10)
            assert solution.residuals == pytest.approx(reference.residuals, abs=1e-10)
            assert solution.normalized_residuals == pytest.approx(
                reference.normalized_residuals, abs=1e-10
            )
            assert solution.weights == pytest.approx(reference.weights, abs=1e-10)
            assert solution.iterations == reference.iterations
            assert solution.converged == reference.converged

    def test_matches_scalar_solver_3d(self):
        systems = _random_systems(20, rows=60, dim=3, seed=6)
        batch = solve_weighted_least_squares_batch(systems)
        for system, solution in zip(systems, batch):
            reference = solve_weighted_least_squares(system)
            assert solution.estimate == pytest.approx(reference.estimate, abs=1e-10)

    def test_alternative_weight_function(self):
        systems = _random_systems(10, seed=7)
        batch = solve_weighted_least_squares_batch(systems, weight_function=huber_weights)
        for system, solution in zip(systems, batch):
            reference = solve_weighted_least_squares(
                system, weight_function=huber_weights
            )
            assert solution.estimate == pytest.approx(reference.estimate, abs=1e-10)

    def test_ragged_batch_falls_back(self):
        systems = _random_systems(3, rows=40, seed=8) + _random_systems(
            3, rows=25, seed=9
        )
        batch = solve_weighted_least_squares_batch(systems)
        assert len(batch) == 6
        for system, solution in zip(systems, batch):
            reference = solve_weighted_least_squares(system)
            assert solution.estimate == pytest.approx(reference.estimate, abs=1e-12)

    def test_underdetermined_falls_back_to_min_norm(self):
        rng = np.random.default_rng(10)
        matrix = rng.normal(size=(2, 3))
        rhs = rng.normal(size=2)
        system = LinearSystem(matrix=matrix, rhs=rhs, dim=2)
        (solution,) = solve_weighted_least_squares_batch([system])
        reference = solve_weighted_least_squares(system)
        assert solution.estimate == pytest.approx(reference.estimate, abs=1e-12)

    def test_rank_deficient_falls_back(self):
        # Second column is a copy of the first: the stacked QR path cannot
        # solve this; the result must still match lstsq's minimum norm.
        rng = np.random.default_rng(11)
        column = rng.normal(size=(20, 1))
        matrix = np.hstack([column, column, rng.normal(size=(20, 1))])
        rhs = rng.normal(size=20)
        system = LinearSystem(matrix=matrix, rhs=rhs, dim=2)
        (solution,) = solve_weighted_least_squares_batch([system])
        reference = solve_weighted_least_squares(system)
        assert solution.estimate == pytest.approx(reference.estimate, abs=1e-10)

    def test_empty_batch(self):
        assert solve_weighted_least_squares_batch([]) == []

    def test_empty_system_rejected(self):
        system = LinearSystem(matrix=np.zeros((0, 3)), rhs=np.zeros(0), dim=2)
        with pytest.raises(ValueError):
            solve_weighted_least_squares_batch([system])

    def test_parameter_validation(self):
        systems = _random_systems(1)
        with pytest.raises(ValueError):
            solve_weighted_least_squares_batch(systems, max_iterations=0)
        with pytest.raises(ValueError):
            solve_weighted_least_squares_batch(systems, tolerance_m=0.0)


def _noisy_scan(target, seed=0, n=400, half=1.0, noise_std=0.08):
    rng = np.random.default_rng(seed)
    x = np.linspace(-half, half, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.4
    phases = phases + rng.normal(0.0, noise_std, size=n)
    return positions, np.mod(phases, TWO_PI)


def _seed_reference_sweep(localizer, positions, phases, grid):
    """The pre-parallel adaptive sweep: one full locate() per grid cell."""
    points = np.asarray(positions, dtype=float)
    outcomes = []
    for range_m in grid.ranges_m:
        coordinate = points[:, grid.axis]
        exclude = np.abs(coordinate - grid.center) > range_m / 2.0
        for interval_m in grid.intervals_m:
            if interval_m >= range_m:
                continue
            try:
                result = localizer.locate(
                    points,
                    phases,
                    exclude_mask=exclude,
                    interval_m=interval_m,
                )
            except ValueError:
                continue
            outcomes.append((range_m, interval_m, result))
    return outcomes


class TestAdaptiveSweepBackends:
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_backends_match_serial(self, backend):
        target = np.array([0.05, 0.85])
        positions, phases = _noisy_scan(target, seed=3)
        localizer = LionLocalizer(dim=2)
        serial = adaptive_localize(localizer, positions, phases)
        parallel = adaptive_localize(
            localizer, positions, phases, executor=backend, jobs=2
        )
        assert np.array_equal(serial.position, parallel.position)
        assert serial.reference_distance_m == parallel.reference_distance_m
        assert serial.selected == parallel.selected
        assert len(serial.outcomes) == len(parallel.outcomes)
        for ours, theirs in zip(serial.outcomes, parallel.outcomes):
            assert ours.range_m == theirs.range_m
            assert ours.interval_m == theirs.interval_m
            assert np.array_equal(ours.result.position, theirs.result.position)

    def test_matches_seed_implementation(self):
        """The hoisted-preprocessing sweep reproduces the per-cell pipeline."""
        target = np.array([0.0, 0.9])
        positions, phases = _noisy_scan(target, seed=5)
        grid = ParameterGrid(ranges_m=(0.7, 0.9, 1.1), intervals_m=(0.15, 0.25))
        localizer = LionLocalizer(dim=2, preprocess=PreprocessConfig(smoothing_window=9))
        result = adaptive_localize(localizer, positions, phases, grid=grid)
        reference = _seed_reference_sweep(localizer, positions, phases, grid)
        assert len(result.outcomes) == len(reference)
        for outcome, (range_m, interval_m, ref) in zip(result.outcomes, reference):
            assert outcome.range_m == range_m
            assert outcome.interval_m == interval_m
            assert np.array_equal(outcome.result.position, ref.position)
            assert outcome.result.mean_residual == ref.mean_residual


class TestLocalizerPreprocessedPath:
    def test_assume_preprocessed_skips_preprocessing(self):
        target = np.array([0.1, 0.8])
        positions, phases = _noisy_scan(target, seed=7)
        localizer = LionLocalizer(dim=2)
        direct = localizer.locate(positions, phases)
        profile = localizer.preprocess_phase(phases)
        prepared = localizer.locate(positions, profile, assume_preprocessed=True)
        assert np.array_equal(direct.position, prepared.position)
        assert direct.reference_distance_m == prepared.reference_distance_m
