"""Tests for repro.core.calibration (Sec. IV-C, Eq. 17)."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import ParameterGrid
from repro.core.calibration import (
    AntennaCalibration,
    calibrate_antenna,
    estimate_phase_offset,
    relative_phase_offsets,
)
from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.rf.tag import Tag
from repro.trajectory.multiline import ThreeLineScan


class TestEstimatePhaseOffset:
    def test_recovers_known_offset(self, rng):
        center = np.array([0.0, 0.8, 0.0])
        true_offset = 2.3
        positions = rng.uniform(-0.5, 0.5, size=(200, 3))
        distances = np.linalg.norm(positions - center, axis=1)
        phases = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + true_offset, TWO_PI
        )
        estimate = estimate_phase_offset(positions, phases, center)
        assert estimate == pytest.approx(true_offset, abs=1e-9)

    def test_robust_to_noise(self, rng):
        center = np.array([0.1, 0.9, 0.0])
        true_offset = 5.9  # near the wrap boundary: circular mean required
        positions = rng.uniform(-0.5, 0.5, size=(500, 3))
        distances = np.linalg.norm(positions - center, axis=1)
        phases = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
            + true_offset
            + rng.normal(0, 0.1, 500),
            TWO_PI,
        )
        estimate = estimate_phase_offset(positions, phases, center)
        delta = np.mod(estimate - true_offset + np.pi, TWO_PI) - np.pi
        assert abs(delta) < 0.02

    def test_2d_positions_accepted(self):
        center = np.array([0.0, 1.0])
        positions = np.array([[0.0, 0.0], [0.3, 0.0]])
        distances = np.linalg.norm(positions - center, axis=1)
        phases = np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 1.0, TWO_PI)
        assert estimate_phase_offset(positions, phases, center) == pytest.approx(1.0)

    def test_3d_center_with_2d_positions(self):
        center = np.array([0.0, 1.0, 0.0])
        positions = np.array([[0.0, 0.0], [0.3, 0.0]])
        distances = np.linalg.norm(positions - center[:2], axis=1)
        phases = np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances, TWO_PI)
        assert estimate_phase_offset(positions, phases, center) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            estimate_phase_offset(np.zeros((3, 3)), np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            estimate_phase_offset(np.zeros((0, 3)), np.zeros(0), np.zeros(3))


class TestCalibrateAntenna:
    def test_full_calibration_pipeline(self, rng):
        antenna = Antenna(
            physical_center=(0.0, 0.8, 0.0),
            center_displacement=(0.02, -0.02, 0.015),
            phase_offset_rad=1.5,
            boresight=(0, -1, 0),
        )
        tag = Tag(phase_offset_rad=0.8)
        scan = simulate_scan(
            ThreeLineScan(-0.5, 0.5),
            antenna,
            tag=tag,
            rng=rng,
            noise=GaussianPhaseNoise(0.03),
            read_rate_hz=40.0,
        )
        calibration, adaptive = calibrate_antenna(
            scan.positions,
            scan.phases,
            antenna.physical_center_array,
            antenna_name="A1",
            segment_ids=scan.segment_ids,
            exclude_mask=scan.exclude_mask,
            grid=ParameterGrid(ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.3)),
        )
        # Phase center recovered to a few millimeters.
        assert np.linalg.norm(
            calibration.estimated_center - antenna.phase_center
        ) < 0.005
        # Displacement estimate close to the hidden truth.
        assert calibration.center_displacement == pytest.approx(
            np.asarray(antenna.center_displacement), abs=0.005
        )
        # Offset estimate = theta_T + theta_R (mod 2*pi).
        expected = np.mod(1.5 + 0.8, TWO_PI)
        delta = np.mod(calibration.phase_offset_rad - expected + np.pi, TWO_PI) - np.pi
        assert abs(delta) < 0.1
        assert len(adaptive.outcomes) > 0

    def test_rank_deficient_trajectory_fails_cleanly(self):
        # Every read from the same point: the linear model has no
        # geometric diversity, so no sweep cell can localize and the
        # whole calibration must fail loudly, not return garbage.
        positions = np.tile(np.array([[0.1, 0.0, 0.0]]), (30, 1))
        phases = np.linspace(0.0, 1.0, 30)
        with pytest.raises(ValueError, match="no grid configuration"):
            calibrate_antenna(positions, phases, np.array([0.0, 0.8, 0.0]))

    def test_single_line_scan_fails_cleanly(self):
        # One straight line is still rank-deficient for a 3-D phase
        # center (the paper needs multiple non-collinear lines).
        x = np.linspace(-0.5, 0.5, 60)
        positions = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        distances = np.abs(x - 0.1)
        phases = np.mod(2 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.3, TWO_PI)
        with pytest.raises(ValueError, match="no grid configuration"):
            calibrate_antenna(positions, phases, np.array([0.1, 0.8, 0.0]))

    def test_requires_3d_localizer(self):
        with pytest.raises(ValueError):
            calibrate_antenna(
                np.zeros((10, 3)),
                np.zeros(10),
                np.zeros(3),
                localizer=LionLocalizer(dim=2),
            )


class TestRelativePhaseOffsets:
    def _calibration(self, name, offset):
        return AntennaCalibration(
            antenna_name=name,
            physical_center=np.zeros(3),
            estimated_center=np.zeros(3),
            phase_offset_rad=offset,
        )

    def test_reference_is_zero(self):
        cals = [self._calibration("A1", 1.0), self._calibration("A2", 2.5)]
        offsets = relative_phase_offsets(cals)
        assert offsets["A1"] == pytest.approx(0.0)
        assert offsets["A2"] == pytest.approx(1.5)

    def test_wraps_shortest_way(self):
        cals = [self._calibration("A1", 0.2), self._calibration("A2", TWO_PI - 0.2)]
        offsets = relative_phase_offsets(cals)
        assert offsets["A2"] == pytest.approx(-0.4)

    def test_custom_reference(self):
        cals = [self._calibration("A1", 1.0), self._calibration("A2", 2.0)]
        offsets = relative_phase_offsets(cals, reference_index=1)
        assert offsets["A2"] == pytest.approx(0.0)
        assert offsets["A1"] == pytest.approx(-1.0)

    def test_tag_offset_cancels(self, rng):
        """Offsets estimated with the same tag yield tag-free differences."""
        tag_offset = 1.1
        estimates = []
        for antenna_offset in (0.5, 2.0):
            center = np.array([0.0, 0.8, 0.0])
            positions = rng.uniform(-0.4, 0.4, size=(100, 3))
            distances = np.linalg.norm(positions - center, axis=1)
            phases = np.mod(
                2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
                + antenna_offset
                + tag_offset,
                TWO_PI,
            )
            estimates.append(estimate_phase_offset(positions, phases, center))
        cals = [
            self._calibration("A1", estimates[0]),
            self._calibration("A2", estimates[1]),
        ]
        offsets = relative_phase_offsets(cals)
        assert offsets["A2"] == pytest.approx(1.5, abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_phase_offsets([])

    def test_bad_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_phase_offsets([self._calibration("A1", 1.0)], reference_index=3)


class TestAntennaCalibrationRecord:
    def test_displacement_magnitude(self):
        calibration = AntennaCalibration(
            antenna_name="A",
            physical_center=np.zeros(3),
            estimated_center=np.array([0.03, 0.04, 0.0]),
            phase_offset_rad=0.0,
        )
        assert calibration.displacement_magnitude_m == pytest.approx(0.05)
