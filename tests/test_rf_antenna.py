"""Tests for repro.rf.antenna."""

import numpy as np
import pytest

from repro.rf.antenna import Antenna


class TestPhaseCenter:
    def test_defaults_to_physical_center(self):
        antenna = Antenna(physical_center=(1.0, 2.0, 3.0))
        assert antenna.phase_center == pytest.approx([1.0, 2.0, 3.0])

    def test_displacement_applied(self):
        antenna = Antenna(
            physical_center=(0.0, 0.0, 0.0), center_displacement=(0.02, -0.01, 0.03)
        )
        assert antenna.phase_center == pytest.approx([0.02, -0.01, 0.03])

    def test_physical_center_array_is_copy(self):
        antenna = Antenna(physical_center=(1.0, 0.0, 0.0))
        array = antenna.physical_center_array
        array[0] = 99.0
        assert antenna.physical_center_array[0] == pytest.approx(1.0)


class TestDistances:
    def test_distance_from_phase_center(self):
        antenna = Antenna(
            physical_center=(0.0, 0.0, 0.0), center_displacement=(0.0, 0.1, 0.0)
        )
        assert antenna.distance_to((0.0, 1.1, 0.0)) == pytest.approx(1.0)

    def test_distance_from_physical_center(self):
        antenna = Antenna(
            physical_center=(0.0, 0.0, 0.0), center_displacement=(0.0, 0.1, 0.0)
        )
        assert antenna.distance_to((0.0, 1.1, 0.0), use_phase_center=False) == pytest.approx(1.1)


class TestBeamPattern:
    def test_boresight_peak_gain(self):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0), boresight=(0.0, 1.0, 0.0))
        assert antenna.relative_gain((0.0, 2.0, 0.0)) == pytest.approx(1.0)

    def test_half_power_at_half_beamwidth(self):
        antenna = Antenna(
            physical_center=(0.0, 0.0, 0.0),
            boresight=(0.0, 1.0, 0.0),
            beamwidth_deg=70.0,
        )
        angle = np.radians(35.0)
        point = (np.sin(angle), np.cos(angle), 0.0)
        assert antenna.relative_gain(point) == pytest.approx(0.5, rel=1e-6)

    def test_gain_monotone_within_front_hemisphere(self):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0), boresight=(0.0, 1.0, 0.0))
        gains = [
            antenna.relative_gain((np.sin(a), np.cos(a), 0.0))
            for a in np.radians([0, 15, 30, 45, 60, 75])
        ]
        assert all(g1 >= g2 for g1, g2 in zip(gains, gains[1:]))

    def test_back_hemisphere_at_floor(self):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0), boresight=(0.0, 1.0, 0.0))
        assert antenna.relative_gain((0.0, -1.0, 0.0)) == pytest.approx(0.01)

    def test_off_boresight_angle(self):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0), boresight=(0.0, 1.0, 0.0))
        assert antenna.off_boresight_angle((1.0, 0.0, 0.0)) == pytest.approx(np.pi / 2)

    def test_angle_at_phase_center_is_zero(self):
        antenna = Antenna(physical_center=(0.0, 0.0, 0.0))
        assert antenna.off_boresight_angle((0.0, 0.0, 0.0)) == 0.0


class TestValidation:
    def test_zero_boresight_rejected(self):
        with pytest.raises(ValueError):
            Antenna(physical_center=(0, 0, 0), boresight=(0.0, 0.0, 0.0))

    @pytest.mark.parametrize("beamwidth", [0.0, -10.0, 400.0])
    def test_bad_beamwidth_rejected(self, beamwidth):
        with pytest.raises(ValueError):
            Antenna(physical_center=(0, 0, 0), beamwidth_deg=beamwidth)
