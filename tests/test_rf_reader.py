"""Tests for repro.rf.reader."""

import numpy as np
import pytest

from repro.constants import DEFAULT_FREQUENCY_HZ
from repro.rf.channel import Channel, ChannelConfig
from repro.rf.noise import NoPhaseNoise
from repro.rf.reader import ReadRecord, Reader, ReaderConfig
from repro.rf.tag import Tag


@pytest.fixture
def channel(ideal_antenna, ideal_tag):
    return Channel(
        antenna=ideal_antenna,
        tag=ideal_tag,
        config=ChannelConfig(noise=NoPhaseNoise()),
    )


class TestInterrogate:
    def test_one_record_per_sample(self, channel, rng):
        reader = Reader()
        positions = np.array([[x, 0.0, 0.0] for x in np.linspace(-0.5, 0.5, 20)])
        timestamps = np.linspace(0.0, 1.0, 20)
        records = reader.interrogate(channel, positions, timestamps, rng)
        assert len(records) == 20

    def test_records_carry_positions_and_times(self, channel, rng):
        reader = Reader()
        positions = np.array([[0.1, 0.0, 0.0], [0.2, 0.0, 0.0]])
        records = reader.interrogate(channel, positions, [0.0, 0.5], rng)
        assert records[1].tag_position == pytest.approx((0.2, 0.0, 0.0))
        assert records[1].timestamp_s == pytest.approx(0.5)

    def test_records_carry_identifiers(self, channel, rng):
        reader = Reader()
        records = reader.interrogate(
            channel, np.array([[0.0, 0.0, 0.0]]), [0.0], rng
        )
        assert records[0].epc == channel.tag.epc
        assert records[0].antenna == channel.antenna.name

    def test_phase_matches_channel(self, channel, rng):
        reader = Reader()
        records = reader.interrogate(channel, np.array([[0.3, 0.0, 0.0]]), [0.0], rng)
        assert records[0].phase_rad == pytest.approx(
            channel.ideal_phase((0.3, 0.0, 0.0))
        )

    def test_pinned_frequency(self, channel, rng):
        reader = Reader()
        records = reader.interrogate(channel, np.array([[0.0, 0.0, 0.0]]), [0.0], rng)
        assert records[0].frequency_hz == pytest.approx(DEFAULT_FREQUENCY_HZ)
        assert records[0].channel_index == -1

    def test_dropouts_remove_reads(self, channel, rng):
        reader = Reader(config=ReaderConfig(dropout_probability=0.5))
        positions = np.zeros((400, 3))
        positions[:, 1] = 0.1
        records = reader.interrogate(channel, positions, np.arange(400.0), rng)
        assert 100 < len(records) < 300

    def test_frequency_hopping_changes_channels(self, channel, rng):
        reader = Reader(
            config=ReaderConfig(frequency_hopping=True, hop_interval_s=0.1)
        )
        positions = np.zeros((50, 3))
        positions[:, 1] = 0.1
        records = reader.interrogate(channel, positions, np.linspace(0, 5, 50), rng)
        channels = {r.channel_index for r in records}
        assert len(channels) > 3
        assert all(0 <= c < 50 for c in channels)

    def test_shape_mismatch_rejected(self, channel, rng):
        reader = Reader()
        with pytest.raises(ValueError):
            reader.interrogate(channel, np.zeros((3, 3)), [0.0], rng)

    def test_2d_positions_rejected(self, channel, rng):
        reader = Reader()
        with pytest.raises(ValueError):
            reader.interrogate(channel, np.zeros((3, 2)), [0.0, 1.0, 2.0], rng)


class TestCollectStatic:
    def test_count_and_position(self, channel, rng):
        reader = Reader()
        records = reader.collect_static(channel, (0.0, 0.0, 0.0), 50, rng)
        assert len(records) == 50
        assert all(r.tag_position == (0.0, 0.0, 0.0) for r in records)

    def test_timestamps_follow_read_rate(self, channel, rng):
        reader = Reader(config=ReaderConfig(read_rate_hz=100.0))
        records = reader.collect_static(channel, (0.0, 0.0, 0.0), 10, rng)
        assert records[1].timestamp_s - records[0].timestamp_s == pytest.approx(0.01)

    def test_zero_count_rejected(self, channel, rng):
        with pytest.raises(ValueError):
            Reader().collect_static(channel, (0.0, 0.0, 0.0), 0, rng)


class TestReadRecord:
    def test_wavelength_property(self):
        record = ReadRecord(
            epc="x", antenna="a", timestamp_s=0.0, channel_index=-1,
            frequency_hz=DEFAULT_FREQUENCY_HZ, phase_rad=1.0, rssi_dbm=-50.0,
            tag_position=(1.0, 2.0, 3.0),
        )
        assert record.wavelength_m == pytest.approx(0.3256, abs=1e-3)

    def test_position_array(self):
        record = ReadRecord(
            epc="x", antenna="a", timestamp_s=0.0, channel_index=-1,
            frequency_hz=DEFAULT_FREQUENCY_HZ, phase_rad=1.0, rssi_dbm=-50.0,
            tag_position=(1.0, 2.0, 3.0),
        )
        assert np.array_equal(record.position_array(), [1.0, 2.0, 3.0])


class TestReaderConfigValidation:
    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            ReaderConfig(frequency_hz=0.0)

    def test_bad_read_rate(self):
        with pytest.raises(ValueError):
            ReaderConfig(read_rate_hz=-1.0)

    def test_bad_dropout(self):
        with pytest.raises(ValueError):
            ReaderConfig(dropout_probability=1.0)

    def test_bad_hop_interval(self):
        with pytest.raises(ValueError):
            ReaderConfig(hop_interval_s=0.0)
