"""Tests for repro.geometry.transforms."""

import numpy as np
import pytest

from repro.geometry.transforms import (
    from_line_frame_2d,
    orthonormal_basis_for_plane,
    rotation_matrix_2d,
    rotation_matrix_3d,
    to_line_frame_2d,
)


class TestRotation2D:
    def test_quarter_turn(self):
        rotated = rotation_matrix_2d(np.pi / 2.0) @ np.array([1.0, 0.0])
        assert rotated == pytest.approx([0.0, 1.0], abs=1e-12)

    def test_orthogonal(self):
        matrix = rotation_matrix_2d(0.7)
        assert matrix @ matrix.T == pytest.approx(np.eye(2))

    def test_determinant_one(self):
        assert np.linalg.det(rotation_matrix_2d(-1.3)) == pytest.approx(1.0)


class TestRotation3D:
    def test_rotation_about_z(self):
        matrix = rotation_matrix_3d([0, 0, 1], np.pi / 2.0)
        assert matrix @ np.array([1.0, 0.0, 0.0]) == pytest.approx(
            [0.0, 1.0, 0.0], abs=1e-12
        )

    def test_axis_invariant(self):
        axis = np.array([1.0, 2.0, 3.0])
        matrix = rotation_matrix_3d(axis, 1.1)
        assert matrix @ axis == pytest.approx(axis)

    def test_preserves_norm(self):
        matrix = rotation_matrix_3d([1, 1, 0], 2.2)
        vector = np.array([0.3, -0.7, 0.2])
        assert np.linalg.norm(matrix @ vector) == pytest.approx(np.linalg.norm(vector))

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            rotation_matrix_3d([0, 0, 0], 1.0)


class TestLineFrame:
    def test_points_on_line_have_zero_second_coordinate(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        transformed, _ = to_line_frame_2d(points, [0.0, 0.0], [1.0, 1.0])
        assert transformed[:, 1] == pytest.approx([0.0, 0.0, 0.0], abs=1e-12)

    def test_roundtrip(self):
        points = np.array([[0.3, 1.2], [-0.5, 0.7], [2.0, -1.0]])
        origin = [0.1, 0.2]
        transformed, rotation = to_line_frame_2d(points, origin, [2.0, 1.0])
        restored = from_line_frame_2d(transformed, origin, rotation)
        assert restored == pytest.approx(points)

    def test_preserves_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        transformed, _ = to_line_frame_2d(points, [1.0, 1.0], [0.6, 0.8])
        original = np.linalg.norm(points[1] - points[0])
        mapped = np.linalg.norm(transformed[1] - transformed[0])
        assert mapped == pytest.approx(original)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            to_line_frame_2d(np.zeros((1, 2)), [0.0, 0.0], [0.0, 0.0])


class TestPlaneBasis:
    @pytest.mark.parametrize("normal", [[0, 0, 1], [1, 0, 0], [1, 1, 1], [0.2, -0.7, 0.4]])
    def test_basis_orthonormal_and_in_plane(self, normal):
        u, v = orthonormal_basis_for_plane(normal)
        n = np.asarray(normal, dtype=float)
        n /= np.linalg.norm(n)
        assert np.dot(u, v) == pytest.approx(0.0, abs=1e-12)
        assert np.linalg.norm(u) == pytest.approx(1.0)
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.dot(u, n) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(v, n) == pytest.approx(0.0, abs=1e-12)

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            orthonormal_basis_for_plane([0, 0, 0])
