"""Tests for repro.signalproc.smoothing."""

import numpy as np
import pytest

from repro.signalproc.smoothing import (
    hampel_filter,
    median_filter,
    moving_average,
    smooth_phase_profile,
)


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        values = np.full(20, 3.5)
        assert moving_average(values, 5) == pytest.approx(values)

    def test_linear_signal_unchanged(self):
        """Symmetric windows are exact for linear trends — including edges."""
        values = np.linspace(0.0, 10.0, 30)
        assert moving_average(values, 7) == pytest.approx(values)

    def test_reduces_noise_variance(self, rng):
        noisy = rng.normal(0.0, 1.0, size=2000)
        smoothed = moving_average(noisy, 9)
        assert np.var(smoothed) < np.var(noisy) / 3.0

    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        out = moving_average(values, 1)
        assert np.array_equal(out, values)
        assert out is not values  # must be a copy

    def test_same_length(self):
        assert moving_average(np.arange(10.0), 4).shape == (10,)

    def test_window_larger_than_input(self):
        values = np.array([1.0, 2.0, 3.0])
        out = moving_average(values, 99)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(2.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((3, 3)), 3)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros(5), 0)


class TestSmoothPhaseProfile:
    def test_alias_of_moving_average(self):
        values = np.sin(np.linspace(0, 6, 100))
        assert smooth_phase_profile(values, 9) == pytest.approx(
            moving_average(values, 9)
        )


class TestMedianFilter:
    def test_removes_single_spike(self):
        values = np.ones(11)
        values[5] = 100.0
        filtered = median_filter(values, 5)
        assert filtered[5] == pytest.approx(1.0)

    def test_linear_preserved(self):
        values = np.linspace(0.0, 5.0, 21)
        assert median_filter(values, 5) == pytest.approx(values)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            median_filter(np.zeros(5), -1)


class TestHampelFilter:
    def test_flags_and_replaces_outlier(self):
        values = np.sin(np.linspace(0, 3, 50)) * 0.1
        values[20] += 5.0
        cleaned, mask = hampel_filter(values, window=11, n_sigmas=3.0)
        assert mask[20]
        assert abs(cleaned[20]) < 1.0

    def test_clean_signal_untouched(self, rng):
        values = rng.normal(0.0, 0.1, size=200)
        cleaned, mask = hampel_filter(values, window=11, n_sigmas=6.0)
        assert not mask.any()
        assert cleaned == pytest.approx(values)

    def test_multiple_outliers(self, rng):
        values = rng.normal(0.0, 0.05, size=300)
        spikes = [30, 100, 250]
        for index in spikes:
            values[index] += 4.0
        _, mask = hampel_filter(values, window=15, n_sigmas=3.0)
        for index in spikes:
            assert mask[index]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            hampel_filter(np.zeros(5), window=0)
        with pytest.raises(ValueError):
            hampel_filter(np.zeros(5), window=3, n_sigmas=0.0)
