"""Tests for repro.experiments.montecarlo."""

import numpy as np
import pytest

from repro.experiments.montecarlo import compare_methods, run_monte_carlo


class TestRunMonteCarlo:
    def test_aggregates_gaussian_metric(self):
        def trial(rng):
            return {"error": float(rng.normal(5.0, 1.0))}

        result = run_monte_carlo(trial, trials=200, seed=1)
        summary = result["error"]
        assert summary.mean == pytest.approx(5.0, abs=0.3)
        assert summary.std == pytest.approx(1.0, abs=0.3)
        assert summary.ci_low < 5.0 < summary.ci_high
        assert summary.samples.size == 200

    def test_deterministic_given_seed(self):
        def trial(rng):
            return {"v": float(rng.random())}

        first = run_monte_carlo(trial, trials=20, seed=7)
        second = run_monte_carlo(trial, trials=20, seed=7)
        assert first["v"].samples == pytest.approx(second["v"].samples)

    def test_multiple_metrics(self):
        def trial(rng):
            x = float(rng.random())
            return {"a": x, "b": 2.0 * x}

        result = run_monte_carlo(trial, trials=50)
        assert result["b"].mean == pytest.approx(2.0 * result["a"].mean)

    def test_failures_tolerated(self):
        def trial(rng):
            if rng.random() < 0.3:
                raise RuntimeError("flaky")
            return {"v": 1.0}

        result = run_monte_carlo(trial, trials=100, seed=2)
        assert 0 < result["v"].samples.size < 100
        assert result["v"].failures > 0

    def test_failures_propagate_when_strict(self):
        def trial(rng):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_monte_carlo(trial, trials=5, tolerate_failures=False)

    def test_all_failed_rejected(self):
        def trial(rng):
            raise RuntimeError("boom")

        with pytest.raises(ValueError):
            run_monte_carlo(trial, trials=5)

    def test_nan_counts_as_metric_failure(self):
        def trial(rng):
            return {"v": float("nan") if rng.random() < 0.5 else 1.0}

        result = run_monte_carlo(trial, trials=60, seed=3)
        assert result["v"].failures > 0
        assert np.all(np.isfinite(result["v"].samples))

    def test_parameter_validation(self):
        def trial(rng):
            return {"v": 1.0}

        with pytest.raises(ValueError):
            run_monte_carlo(trial, trials=0)
        with pytest.raises(ValueError):
            run_monte_carlo(trial, trials=5, confidence=1.5)

    def test_format_table(self):
        def trial(rng):
            return {"err_cm": float(rng.normal(1.0, 0.1))}

        text = run_monte_carlo(trial, trials=30).format_table()
        assert "err_cm" in text
        assert "mean" in text


class TestCompareMethods:
    def test_paired_win_rate(self):
        def trial(rng):
            base = float(rng.random())
            return {"good": base, "bad": base + 0.5}

        result = run_monte_carlo(trial, trials=40)
        assert compare_methods(result, "good", "bad") == 1.0
        assert compare_methods(result, "bad", "good") == 0.0

    def test_unpaired_rejected(self):
        def trial(rng):
            out = {"a": float(rng.random())}
            if rng.random() < 0.5:
                out["b"] = 1.0
            else:
                out["b"] = float("nan")  # drops some b samples
            return out

        result = run_monte_carlo(trial, trials=50, seed=5)
        with pytest.raises(ValueError):
            compare_methods(result, "a", "b")

    def test_unknown_metric(self):
        def trial(rng):
            return {"a": 1.0}

        result = run_monte_carlo(trial, trials=5)
        with pytest.raises(KeyError):
            compare_methods(result, "a", "zzz")


class TestEndToEndWithLion:
    def test_lion_vs_ls_study(self):
        """The montecarlo harness reproduces a mini Fig. 15 in a few lines."""
        from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
        from repro.core.localizer import LionLocalizer, PreprocessConfig

        target = np.array([0.1, 0.9])
        angles = np.linspace(0, 2 * np.pi, 150, endpoint=False)
        positions = 0.35 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        distances = np.linalg.norm(positions - target, axis=1)

        def trial(rng):
            phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + rng.normal(
                0, 0.05, 150
            )
            corrupt = rng.choice(150, size=8, replace=False)
            phases[corrupt] += rng.uniform(-1.2, 1.2, 8)
            phases = np.mod(phases, TWO_PI)
            outcome = {}
            for method in ("wls", "ls"):
                localizer = LionLocalizer(
                    dim=2, method=method, interval_m=0.3,
                    preprocess=PreprocessConfig(smoothing_window=1),
                )
                estimate = localizer.locate(positions, phases)
                outcome[method] = float(np.linalg.norm(estimate.position - target))
            return outcome

        result = run_monte_carlo(trial, trials=15, seed=11)
        assert result["wls"].mean < result["ls"].mean
        assert compare_methods(result, "wls", "ls") > 0.6
