"""Tests for the versioned calibration store (repro.calib.store/records)."""

import json

import numpy as np
import pytest

from repro.calib import (
    CalibrationRecord,
    CalibrationStore,
    CorruptRecordError,
    UnknownAntennaError,
    VersionConflictError,
)
from repro.core.calibration import AntennaCalibration


def _calibration(name="ant-000", offset=1.25, center=(0.01, 0.81, 0.005)):
    return AntennaCalibration(
        antenna_name=name,
        physical_center=np.array([0.0, 0.8, 0.0]),
        estimated_center=np.array(center),
        phase_offset_rad=offset,
    )


class TestCalibrationRecord:
    def test_round_trip(self):
        record = CalibrationRecord.from_calibration(
            _calibration(),
            version=3,
            created_unix=1234.5,
            source="scan",
            reads=400,
            residual_rms_m=0.0012,
            manifest={"run": "abc"},
        )
        clone = CalibrationRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.manifest == {"run": "abc"}

    def test_to_calibration_inverts_from_calibration(self):
        calibration = _calibration(offset=5.9)
        record = CalibrationRecord.from_calibration(
            calibration, version=1, created_unix=0.0, source="scan"
        )
        back = record.to_calibration()
        assert back.antenna_name == calibration.antenna_name
        assert back.phase_offset_rad == calibration.phase_offset_rad
        assert np.array_equal(back.estimated_center, calibration.estimated_center)

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(CorruptRecordError):
            CalibrationRecord.from_dict({"antenna": "a"})

    def test_validation(self):
        with pytest.raises(CorruptRecordError):
            CalibrationRecord(
                antenna="a",
                version=0,
                physical_center=(0.0, 0.0, 0.0),
                estimated_center=(0.0, 0.0, 0.0),
                phase_offset_rad=0.0,
                created_unix=0.0,
            )
        with pytest.raises(CorruptRecordError):
            CalibrationRecord(
                antenna="a",
                version=1,
                physical_center=(0.0, 0.0),
                estimated_center=(0.0, 0.0, 0.0),
                phase_offset_rad=0.0,
                created_unix=0.0,
            )


class TestCalibrationStore:
    def test_commit_assigns_contiguous_versions(self, tmp_path):
        store = CalibrationStore(tmp_path)
        first = store.commit(_calibration(offset=1.0), source="scan")
        second = store.commit(_calibration(offset=2.0), source="scheduled")
        assert (first.version, second.version) == (1, 2)
        assert store.latest("ant-000").phase_offset_rad == 2.0
        assert store.get("ant-000", 1).phase_offset_rad == 1.0
        assert [r.version for r in store.history("ant-000")] == [1, 2]
        assert store.generation == 2

    def test_unknown_antenna_and_version(self, tmp_path):
        store = CalibrationStore(tmp_path)
        with pytest.raises(UnknownAntennaError):
            store.latest("ghost")
        store.commit(_calibration(), source="scan")
        with pytest.raises(KeyError):
            store.get("ant-000", 7)

    def test_cas_conflict(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.commit(_calibration(), source="scan", expected_version=0)
        with pytest.raises(VersionConflictError) as excinfo:
            store.commit(_calibration(), source="scan", expected_version=0)
        assert excinfo.value.antenna == "ant-000"
        assert excinfo.value.expected == 0
        assert excinfo.value.actual == 1
        # Matching token commits fine.
        record = store.commit(_calibration(), source="scan", expected_version=1)
        assert record.version == 2

    def test_persistence_across_reopen(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.commit(_calibration("rack/7#a", offset=0.5), source="manual")
        store.commit(_calibration("rack/7#a", offset=0.75), source="manual")
        store.meta_set("sim", {"seed": 9})
        reopened = CalibrationStore(tmp_path, create=False)
        assert reopened.antennas() == ("rack/7#a",)
        assert reopened.latest("rack/7#a").phase_offset_rad == 0.75
        assert reopened.generation == store.generation
        assert reopened.meta_get("sim") == {"seed": 9}

    def test_corrupt_line_fails_load(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.commit(_calibration(), source="scan")
        jsonl = next((tmp_path / "antennas").glob("*.jsonl"))
        jsonl.write_text(jsonl.read_text() + "not json\n")
        with pytest.raises(CorruptRecordError):
            CalibrationStore(tmp_path, create=False)

    def test_subscribers_fire_post_commit(self, tmp_path):
        store = CalibrationStore(tmp_path)
        seen = []
        token = store.subscribe(lambda record: seen.append(record.version))
        store.commit(_calibration(), source="scan")
        store.unsubscribe(token)
        store.commit(_calibration(), source="scan")
        assert seen == [1]

    def test_offsets_and_centers_with_version_pins(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.commit(_calibration("a", offset=1.0), source="scan")
        store.commit(_calibration("b", offset=2.0), source="scan")
        store.commit(_calibration("a", offset=1.5), source="scan")
        latest = store.offsets_for(("a", "b"))
        pinned = store.offsets_for(("a", "b"), versions={"a": 1})
        assert latest[1] - latest[0] == pytest.approx(0.5)
        assert pinned[1] - pinned[0] == pytest.approx(1.0)
        centers = store.centers_for(("a", "b"), dim=2)
        assert centers.shape == (2, 2)
        with pytest.raises(UnknownAntennaError):
            store.offsets_for(("a", "ghost"))

    def test_fleet_status_rollup(self, tmp_path):
        clock = [1000.0]
        store = CalibrationStore(tmp_path, clock=lambda: clock[0])
        store.commit(_calibration("a"), source="scan")
        clock[0] += 7200.0
        store.commit(_calibration("b"), source="scan")
        status = store.fleet_status(max_age_s=3600.0, now=clock[0])
        assert status["antennas"] == 2
        assert status["versions_total"] == 2
        assert status["stale_by_age"] == ["a"]
        assert status["latest"]["a"]["version"] == 1

    def test_meta_survives_atomic_write(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.meta_set("note", [1, 2, 3])
        meta = json.loads((tmp_path / "meta.json").read_text())
        assert meta["note"] == [1, 2, 3]
        assert meta["format"] == 1
