"""Tests for repro.datasets.workloads."""

import numpy as np
import pytest

from repro.core.localizer import LionLocalizer
from repro.datasets.workloads import (
    Workload,
    get_workload,
    list_workloads,
    register_workload,
)
from repro.rf.antenna import Antenna
from repro.rf.noise import NoPhaseNoise
from repro.trajectory.linear import LinearTrajectory


class TestRegistry:
    def test_canned_workloads_present(self):
        names = set(list_workloads())
        assert {
            "paper-2d-conveyor",
            "paper-3d-calibration",
            "paper-two-line-3d",
            "paper-turntable",
            "harsh-bursty",
            "clean-sim",
        } <= names

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="paper-2d-conveyor"):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        workload = get_workload("clean-sim")
        with pytest.raises(ValueError):
            register_workload(workload)

    def test_descriptions_nonempty(self):
        assert all(description for description in list_workloads().values())


class TestBuild:
    @pytest.mark.parametrize("name", sorted(list_workloads()))
    def test_every_workload_builds(self, name, rng):
        scan, antenna = get_workload(name).build(rng)
        assert len(scan) > 50
        assert np.all(np.isfinite(scan.phases))
        assert isinstance(antenna.phase_center, np.ndarray)

    def test_seed_stability(self):
        workload = get_workload("paper-2d-conveyor")
        first, antenna_a = workload.build(np.random.default_rng(3))
        second, antenna_b = workload.build(np.random.default_rng(3))
        assert first.phases == pytest.approx(second.phases)
        assert antenna_a.phase_center == pytest.approx(antenna_b.phase_center)

    def test_conveyor_workload_localizes(self, rng):
        scan, antenna = get_workload("paper-2d-conveyor").build(rng)
        result = LionLocalizer(dim=2, interval_m=0.25).locate(
            scan.positions, scan.phases
        )
        error = np.linalg.norm(result.position - antenna.phase_center[:2])
        assert error < 0.02

    def test_calibration_workload_localizes_3d(self, rng):
        scan, antenna = get_workload("paper-3d-calibration").build(rng)
        result = LionLocalizer(dim=3, interval_m=0.25).locate(
            scan.positions, scan.phases,
            segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
        )
        error = np.linalg.norm(result.position - antenna.phase_center)
        assert error < 0.01

    def test_custom_workload(self, rng):
        workload = Workload(
            name="custom-test",
            description="unit-test workload",
            trajectory_factory=lambda: LinearTrajectory((-0.2, 0, 0), (0.2, 0, 0)),
            antenna_factory=lambda r: Antenna(
                physical_center=(0.0, 0.5, 0.0), boresight=(0, -1, 0)
            ),
            noise_factory=NoPhaseNoise,
            read_rate_hz=30.0,
        )
        scan, antenna = workload.build(rng)
        assert len(scan) > 30
        assert antenna.phase_offset_rad == 0.0
