"""Property-based tests (hypothesis) for the trajectory substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan
from repro.trajectory.raster import RasterScan

coordinate = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestLinearProperties:
    @given(coordinate, coordinate, coordinate, coordinate,
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80)
    def test_position_interpolates(self, ax, ay, bx, by, fraction):
        start = np.array([ax, ay, 0.0])
        end = np.array([bx, by, 0.0])
        assume(np.linalg.norm(end - start) > 1e-6)
        line = LinearTrajectory(start, end)
        arc = fraction * line.total_length_m
        expected = start + fraction * (end - start)
        assert line.position_at(arc) == pytest.approx(expected, abs=1e-9)

    @given(coordinate, coordinate,
           st.floats(min_value=0.02, max_value=0.5),
           st.floats(min_value=20.0, max_value=200.0))
    @settings(max_examples=40)
    def test_sample_step_equals_speed_over_rate(self, ax, ay, speed, rate):
        line = LinearTrajectory((ax, ay, 0.0), (ax + 1.0, ay, 0.0))
        samples = line.sample(speed_mps=speed, read_rate_hz=rate)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        # Sampling spreads count = floor(duration*rate)+1 reads uniformly
        # over the path, so steps are constant and within one part in
        # count of the nominal speed/rate spacing.
        if steps.size > 1:
            assert np.ptp(steps) < 1e-9
            assert steps[0] == pytest.approx(speed / rate, rel=2.0 / steps.size + 0.02)

    @given(coordinate, coordinate, coordinate, coordinate)
    @settings(max_examples=60)
    def test_timestamps_consistent_with_arc(self, ax, ay, bx, by):
        start = np.array([ax, ay, 0.0])
        end = np.array([bx, by, 0.0])
        assume(np.linalg.norm(end - start) > 0.05)
        line = LinearTrajectory(start, end)
        samples = line.sample(speed_mps=0.1, read_rate_hz=50.0)
        traveled = np.linalg.norm(samples.positions - start, axis=1)
        assert traveled == pytest.approx(0.1 * samples.timestamps_s, abs=1e-9)


class TestCircularProperties:
    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.1, max_value=3.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_constant_radius_along_arc(self, radius, turns, fraction):
        circle = CircularTrajectory((0.5, -0.2, 0.1), radius=radius, turns=turns)
        point = circle.position_at(fraction * circle.total_length_m)
        distance = np.linalg.norm(point - circle.center)
        assert distance == pytest.approx(radius, abs=1e-9)

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=40)
    def test_arc_length_matches_swept_angle(self, radius, fraction):
        """The angle swept from the start point equals arc / radius
        (the in-plane basis orientation is an implementation detail)."""
        circle = CircularTrajectory((0, 0, 0), radius=radius)
        arc = fraction * circle.total_length_m
        start = circle.position_at(0.0)
        point = circle.position_at(arc)
        start_angle = np.arctan2(start[1], start[0])
        point_angle = np.arctan2(point[1], point[0])
        swept = (point_angle - start_angle) % (2 * np.pi)
        expected = (arc / radius) % (2 * np.pi)
        delta = (swept - expected + np.pi) % (2 * np.pi) - np.pi
        assert abs(delta) < 1e-6


class TestCompositeScanProperties:
    @given(st.floats(min_value=0.05, max_value=0.4),
           st.floats(min_value=0.05, max_value=0.4))
    @settings(max_examples=25, deadline=None)
    def test_three_line_scan_is_continuous(self, y_offset, z_offset):
        scan = ThreeLineScan(-0.3, 0.3, y_offset=y_offset, z_offset=z_offset)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=40.0)
        steps = np.linalg.norm(np.diff(samples.positions, axis=0), axis=1)
        assert np.max(steps) < 0.08  # below lambda/4: always unwrappable

    @given(st.integers(min_value=2, max_value=6),
           st.floats(min_value=0.05, max_value=0.2))
    @settings(max_examples=25, deadline=None)
    def test_raster_covers_expected_extent(self, rows, spacing):
        scan = RasterScan(-0.3, 0.3, row_count=rows, row_spacing=spacing)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=30.0)
        y_span = samples.positions[:, 1].max() - samples.positions[:, 1].min()
        assert y_span == pytest.approx((rows - 1) * spacing, abs=1e-6)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_raster_data_rows_on_grid(self, rows):
        scan = RasterScan(-0.3, 0.3, row_count=rows, row_spacing=0.1)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=30.0)
        data = samples.positions[~scan.transit_mask(samples)]
        residues = np.abs(data[:, 1] / 0.1 - np.round(data[:, 1] / 0.1))
        assert np.max(residues) < 1e-6
