"""Tests for repro.signalproc.wrapping."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.signalproc.wrapping import (
    distance_difference_from_phase,
    phase_difference,
    phase_from_distance,
    wrap_phase,
    wrap_to_pi,
)


class TestWrapPhase:
    def test_in_range_untouched(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wraps_above(self):
        assert wrap_phase(TWO_PI + 0.5) == pytest.approx(0.5)

    def test_wraps_negative(self):
        assert wrap_phase(-0.5) == pytest.approx(TWO_PI - 0.5)

    def test_array_input(self):
        values = np.array([0.0, TWO_PI, 3 * TWO_PI + 1.0])
        assert wrap_phase(values) == pytest.approx([0.0, 0.0, 1.0])


class TestWrapToPi:
    def test_small_value(self):
        assert wrap_to_pi(0.3) == pytest.approx(0.3)

    def test_wraps_large_positive(self):
        assert wrap_to_pi(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_boundary_maps_to_positive_pi(self):
        assert wrap_to_pi(np.pi) == pytest.approx(np.pi)
        assert wrap_to_pi(-np.pi) == pytest.approx(np.pi)

    def test_scalar_returns_float(self):
        assert isinstance(wrap_to_pi(1.0), float)


class TestPhaseDifference:
    def test_simple(self):
        assert phase_difference(1.0, 0.4) == pytest.approx(0.6)

    def test_wraps_shortest_way(self):
        assert phase_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    def test_antisymmetric(self):
        assert phase_difference(2.0, 0.5) == pytest.approx(-phase_difference(0.5, 2.0))


class TestPhaseFromDistance:
    def test_half_wavelength_is_full_wrap(self):
        """Backscatter doubles the path: lambda/2 displacement = 2*pi."""
        phase = phase_from_distance(DEFAULT_WAVELENGTH_M / 2.0, wrapped=False)
        assert phase == pytest.approx(TWO_PI)

    def test_wrapped_range(self):
        for d in (0.1, 0.5, 1.0, 2.0):
            assert 0.0 <= phase_from_distance(d) < TWO_PI

    def test_unwrapped_monotone(self):
        distances = np.linspace(0.5, 1.5, 10)
        phases = phase_from_distance(distances, wrapped=False)
        assert np.all(np.diff(phases) > 0)

    def test_bad_wavelength_rejected(self):
        with pytest.raises(ValueError):
            phase_from_distance(1.0, wavelength_m=0.0)


class TestDistanceDifferenceFromPhase:
    def test_roundtrip_with_phase_from_distance(self):
        """Eq. 6 inverts Eq. 1's distance term on unwrapped profiles."""
        d_ref, d_t = 1.0, 1.07
        theta_ref = phase_from_distance(d_ref, wrapped=False)
        theta_t = phase_from_distance(d_t, wrapped=False)
        delta = distance_difference_from_phase(theta_t, theta_ref)
        assert delta == pytest.approx(d_t - d_ref)

    def test_negative_difference(self):
        assert distance_difference_from_phase(0.0, 1.0) < 0.0

    def test_vectorised(self):
        thetas = np.array([0.0, TWO_PI, 2 * TWO_PI])
        deltas = distance_difference_from_phase(thetas, 0.0)
        assert deltas == pytest.approx(
            [0.0, DEFAULT_WAVELENGTH_M / 2.0, DEFAULT_WAVELENGTH_M]
        )

    def test_bad_wavelength_rejected(self):
        with pytest.raises(ValueError):
            distance_difference_from_phase(1.0, 0.0, wavelength_m=-1.0)
