"""Tests for repro.obs: tracing spans, metrics registry, manifests, logging.

The load-bearing guarantees: the disabled mode is a true no-op (nothing
recorded, the shared null span is handed out), recorded traces nest and
time monotonically, histogram buckets follow Prometheus ``le`` semantics
so process merge-back is exact, and the scalar and batched IRLS solvers
emit identical convergence metrics for the same systems.

Work functions used with the process backend live at module level so the
pool can pickle them.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.solvers import (
    solve_weighted_least_squares,
    solve_weighted_least_squares_batch,
)
from repro.core.system import LinearSystem
from repro.obs import (
    ITERATION_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    collect_manifest,
    config_fingerprint,
    configure_logging,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    get_logger,
    get_registry,
    get_trace,
    obs_enabled,
    render_trace,
    reset_tracing,
    span,
    trace_depth,
)
from repro.obs.metrics import scoped_registry
from repro.obs.trace import SpanNode, attach_spans, drain_spans
from repro.parallel import ProcessExecutor


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    disable_tracing()
    disable_metrics()
    reset_tracing()
    get_registry().reset()
    yield
    disable_tracing()
    disable_metrics()
    reset_tracing()
    get_registry().reset()


def _make_system(seed: int, rows: int = 40) -> LinearSystem:
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0, (rows, 3))
    rhs = matrix @ np.array([0.1, 0.8, 1.2]) + rng.normal(0.0, 0.02, rows)
    return LinearSystem(matrix=matrix, rhs=rhs, dim=2)


# -- worker functions for the process backend (module level, picklable) --


def _worker_records(item: int) -> int:
    get_registry().counter("test.worker_calls_total").inc()
    get_registry().histogram("test.worker_values", buckets=(1.0, 10.0)).observe(item)
    with span("worker_item", item=item):
        pass
    return item * 2


# -- tracing ---------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_null_singleton(self):
        assert span("anything") is NULL_SPAN
        assert span("other", key="value") is span("anything")
        with span("ignored") as sp:
            sp.add_event(iteration=1)
            sp.set_attribute("k", "v")
        assert get_trace() == []
        assert trace_depth() == 0

    def test_nesting_builds_a_tree(self):
        enable_tracing()
        with span("outer", level=0):
            with span("middle"):
                with span("inner") as sp:
                    sp.add_event(step=1)
            with span("sibling"):
                pass
        roots = get_trace()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]
        assert outer.children[0].children[0].events == [{"step": 1}]
        assert trace_depth() == 3
        assert outer.depth() == 3

    def test_timing_is_monotonic_and_nested(self):
        enable_tracing()
        with span("outer"):
            time.sleep(0.002)
            with span("inner"):
                time.sleep(0.002)
            time.sleep(0.002)
        outer = get_trace()[0]
        inner = outer.children[0]
        assert outer.end_s >= outer.start_s
        assert inner.end_s >= inner.start_s
        # The child's interval sits inside the parent's.
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.wall_s <= outer.wall_s
        assert outer.wall_s >= 0.006
        assert outer.cpu_s >= 0.0

    def test_exception_marks_span_and_still_records(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        root = get_trace()[0]
        assert root.attributes["error"] == "RuntimeError"

    def test_drain_and_attach_round_trip(self):
        enable_tracing()
        with span("child_work", item=3):
            pass
        payloads = drain_spans()
        assert get_trace() == []
        assert payloads[0]["name"] == "child_work"
        with span("parent"):
            attach_spans(payloads)
        parent = get_trace()[0]
        assert [c.name for c in parent.children] == ["child_work"]
        assert parent.children[0].attributes == {"item": 3}

    def test_span_node_dict_round_trip(self):
        node = SpanNode(name="n", attributes={"a": 1}, start_s=1.0, end_s=2.5)
        node.add_event(k=7)
        rebuilt = SpanNode.from_dict(node.to_dict())
        assert rebuilt.name == "n"
        assert rebuilt.wall_s == pytest.approx(1.5)
        assert rebuilt.events == [{"k": 7}]

    def test_render_trace_shows_tree(self):
        enable_tracing()
        with span("top", figure="fig13a"):
            with span("nested"):
                pass
        text = render_trace()
        assert "- top" in text
        assert "  - nested" in text
        assert "figure=fig13a" in text
        disable_tracing()
        reset_tracing()
        assert render_trace() == "(empty trace)"


# -- metrics ---------------------------------------------------------------


class TestHistogram:
    def test_bucket_edges_use_le_semantics(self):
        histogram = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 2.1, 5.0, 99.0):
            histogram.observe(value)
        # value <= edge goes into that bucket; the last slot is +Inf.
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7
        assert histogram.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 5.0 + 99.0)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_counter_and_gauge_basics(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc(2)
        registry.gauge("level").set(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"][0]["value"] == 3.0
        assert snapshot["gauges"][0]["value"] == 0.5
        with pytest.raises(ValueError):
            registry.counter("hits_total").inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", outcome="accepted").inc(4)
        registry.counter("cells_total", outcome="rejected").inc(1)
        assert len(registry) == 2
        values = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in registry.snapshot()["counters"]
        }
        assert values == {"accepted": 4.0, "rejected": 1.0}

    def test_kind_and_bucket_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_merge_adds_counters_and_histograms(self):
        child = MetricsRegistry()
        child.counter("calls_total", kind="x").inc(5)
        child.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        child.gauge("depth").set(7.0)
        parent = MetricsRegistry()
        parent.counter("calls_total", kind="x").inc(2)
        parent.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        parent.merge(child.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"][0]["value"] == 7.0
        histogram = snapshot["histograms"][0]
        assert histogram["counts"] == [1, 1, 0]
        assert histogram["sum"] == pytest.approx(2.0)
        assert snapshot["gauges"][0]["value"] == 7.0

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        payload = json.loads(registry.to_json())
        assert payload["counters"][0]["name"] == "a_total"


class TestPrometheusExport:
    def test_text_format(self):
        registry = MetricsRegistry()
        registry.counter("solver.solves_total", solver="scalar").inc(3)
        registry.gauge("parallel.workers_used").set(4)
        histogram = registry.histogram("solver.irls_iterations", buckets=(1.0, 5.0))
        histogram.observe(1)
        histogram.observe(3)
        histogram.observe(30)
        text = registry.to_prometheus_text()
        lines = text.splitlines()
        assert "# TYPE lion_solver_solves_total counter" in lines
        assert 'lion_solver_solves_total{solver="scalar"} 3' in lines
        assert "# TYPE lion_parallel_workers_used gauge" in lines
        assert "lion_parallel_workers_used 4" in lines
        assert "# TYPE lion_solver_irls_iterations histogram" in lines
        # Cumulative buckets: <=1 has 1 obs, <=5 has 2, +Inf has all 3.
        assert 'lion_solver_irls_iterations_bucket{le="1"} 1' in lines
        assert 'lion_solver_irls_iterations_bucket{le="5"} 2' in lines
        assert 'lion_solver_irls_iterations_bucket{le="+Inf"} 3' in lines
        assert "lion_solver_irls_iterations_sum 34" in lines
        assert "lion_solver_irls_iterations_count 3" in lines
        assert text.endswith("\n")

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("c_total", a="1").inc()
        registry.counter("c_total", a="2").inc()
        text = registry.to_prometheus_text()
        assert text.count("# TYPE lion_c_total counter") == 1

    def test_label_values_escaped(self):
        # Exposition format requires backslash, quote, and newline
        # escapes inside quoted label values — a raw estimator name like
        # C:\scan or an error string with a quote must not corrupt the
        # scrape.
        registry = MetricsRegistry()
        registry.counter("c_total", path="C:\\scan", note='say "hi"\nbye').inc()
        text = registry.to_prometheus_text()
        assert 'path="C:\\\\scan"' in text
        assert 'note="say \\"hi\\"\\nbye"' in text
        # A raw newline would split the series across two lines.
        series_lines = [ln for ln in text.splitlines() if ln.startswith("lion_c_total{")]
        assert len(series_lines) == 1


# -- disabled-mode no-op ---------------------------------------------------


class TestDisabledMode:
    def test_instrumented_solve_records_nothing_when_disabled(self):
        assert not obs_enabled()
        solve_weighted_least_squares(_make_system(0))
        solve_weighted_least_squares_batch([_make_system(1), _make_system(2)])
        assert len(get_registry()) == 0
        assert get_trace() == []

    def test_enabled_solve_records_spans_and_metrics(self):
        enable_tracing()
        enable_metrics()
        solve_weighted_least_squares(_make_system(0))
        roots = get_trace()
        assert [r.name for r in roots] == ["solve"]
        assert roots[0].attributes["solver"] == "scalar"
        assert roots[0].events, "per-iteration events should be recorded"
        names = {entry["name"] for entry in get_registry().snapshot()["counters"]}
        assert "solver.solves_total" in names


# -- scalar vs batch convergence metrics -----------------------------------


class TestSolverMetricsComparability:
    def test_scalar_and_batch_report_identical_iteration_counts(self):
        systems = [_make_system(seed) for seed in range(6)]
        enable_metrics()

        with scoped_registry() as scalar_registry:
            scalar_solutions = [solve_weighted_least_squares(s) for s in systems]
            scalar_snapshot = scalar_registry.snapshot()
        with scoped_registry() as batch_registry:
            batch_solutions = solve_weighted_least_squares_batch(systems)
            batch_snapshot = batch_registry.snapshot()

        def iteration_histogram(snapshot, solver):
            for entry in snapshot["histograms"]:
                if (
                    entry["name"] == "solver.irls_iterations"
                    and entry["labels"]["solver"] == solver
                ):
                    return entry
            raise AssertionError(f"no iteration histogram for {solver!r}")

        scalar_h = iteration_histogram(scalar_snapshot, "scalar")
        batch_h = iteration_histogram(batch_snapshot, "batch")
        assert scalar_h["buckets"] == list(float(b) for b in ITERATION_BUCKETS)
        assert scalar_h["counts"] == batch_h["counts"]
        assert scalar_h["count"] == batch_h["count"] == len(systems)
        # The underlying solutions agree too, so the histograms measure
        # the same convergence behaviour, not coincidentally-equal noise.
        for scalar_solution, batch_solution in zip(scalar_solutions, batch_solutions):
            assert scalar_solution.iterations == batch_solution.iterations
            assert scalar_solution.converged == batch_solution.converged

        def counter_value(snapshot, name, solver):
            for entry in snapshot["counters"]:
                if entry["name"] == name and entry["labels"]["solver"] == solver:
                    return entry["value"]
            return 0.0

        for name in ("solver.solves_total", "solver.converged_total",
                     "solver.convergence_freezes_total"):
            assert counter_value(scalar_snapshot, name, "scalar") == counter_value(
                batch_snapshot, name, "batch"
            )


# -- process merge-back ----------------------------------------------------


class TestProcessMergeBack:
    def test_worker_metrics_and_spans_return_to_parent(self):
        enable_metrics()
        enable_tracing()
        executor = ProcessExecutor(jobs=2)
        with span("parent_map"):
            results = executor.map(_worker_records, range(8))
        assert results == [item * 2 for item in range(8)]

        snapshot = get_registry().snapshot()
        counters = {
            entry["name"]: entry["value"] for entry in snapshot["counters"]
        }
        assert counters["test.worker_calls_total"] == 8.0
        histograms = {entry["name"]: entry for entry in snapshot["histograms"]}
        assert histograms["test.worker_values"]["count"] == 8
        assert counters["parallel.items_total"] == 8.0

        parent = get_trace()[0]
        assert parent.name == "parent_map"
        worker_spans = [c for c in parent.children if c.name == "worker_item"]
        assert len(worker_spans) == 8
        assert sorted(sp.attributes["item"] for sp in worker_spans) == list(range(8))


# -- manifest --------------------------------------------------------------


class TestManifest:
    def test_collect_manifest_fields(self):
        manifest = collect_manifest(
            seed=7, jobs=3, config={"trials": 10}, argv=["run", "fig13a"]
        )
        payload = manifest.to_dict()
        assert payload["seed"] == 7
        assert payload["jobs"] == 3
        assert payload["config"] == {"trials": 10}
        assert payload["config_hash"] == config_fingerprint({"trials": 10})
        assert payload["argv"] == ["run", "fig13a"]
        assert isinstance(payload["git_sha"], str) and len(payload["git_sha"]) == 40
        assert isinstance(payload["git_dirty"], bool)
        for package in ("python", "numpy", "repro"):
            assert package in payload["packages"]
        assert payload["created_unix"] > 0

    def test_config_fingerprint_is_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


# -- logging ---------------------------------------------------------------


class TestLogging:
    def test_logger_hierarchy_and_level(self, capsys):
        configure_logging("info")
        logger = get_logger("cli")
        assert logger.name == "repro.cli"
        logger.info("hello %s", "world")
        logger.debug("hidden")
        captured = capsys.readouterr().err
        assert "hello world" in captured
        assert "repro.cli" in captured
        assert "hidden" not in captured

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_bound_request_id_appended_to_log_lines(self, capsys):
        from repro.obs import bind_request_id

        configure_logging("info")
        logger = get_logger("serve.net")
        with bind_request_id("abc123"):
            logger.info("inside request")
        logger.info("outside request")
        logger.info("explicit", extra={"request_id": "xyz789"})
        captured = capsys.readouterr().err
        lines = captured.splitlines()
        assert any("inside request" in ln and "request_id=abc123" in ln for ln in lines)
        assert any("outside request" in ln and "request_id" not in ln for ln in lines)
        assert any("explicit" in ln and "request_id=xyz789" in ln for ln in lines)
