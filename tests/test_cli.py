"""Tests for the CLI (python -m repro / lion)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13a" in out
        assert "fig21" in out


class TestRun:
    def test_runs_single_figure(self, capsys):
        assert main(["run", "fig02", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "valley_offset_cm" in out

    def test_seed_flag(self, capsys):
        assert main(["run", "fig02", "--fast", "--seed", "3"]) == 0

    def test_unknown_figure_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDataTooling:
    def test_simulate_then_locate(self, tmp_path, capsys):
        csv_path = str(tmp_path / "scan.csv")
        assert main(["simulate", "--scenario", "conveyor", "--out", csv_path,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["locate", csv_path, "--dim", "2"]) == 0
        out = capsys.readouterr().out
        assert "estimated position" in out
        assert "lower-dimension" in out

    def test_locate_ls_method(self, tmp_path, capsys):
        csv_path = str(tmp_path / "scan.csv")
        main(["simulate", "--out", csv_path, "--seed", "1"])
        capsys.readouterr()
        assert main(["locate", csv_path, "--method", "ls"]) == 0

    def test_simulate_turntable(self, tmp_path, capsys):
        csv_path = str(tmp_path / "turn.csv")
        assert main(["simulate", "--scenario", "turntable", "--out", csv_path]) == 0

    def test_calibrate_three_line(self, tmp_path, capsys):
        csv_path = str(tmp_path / "cal.csv")
        main(["simulate", "--scenario", "three-line", "--out", csv_path,
              "--seed", "6", "--noise", "0.05"])
        capsys.readouterr()
        assert main(["calibrate", csv_path, "--physical-center", "0,0.8,0"]) == 0
        out = capsys.readouterr().out
        assert "estimated phase center" in out
        assert "phase offset" in out

    def test_calibrate_bad_center_format(self, tmp_path):
        csv_path = str(tmp_path / "cal.csv")
        main(["simulate", "--scenario", "three-line", "--out", csv_path])
        with pytest.raises(SystemExit):
            main(["calibrate", csv_path, "--physical-center", "nonsense"])
