"""Tests for the CLI (python -m repro / lion)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13a" in out
        assert "fig21" in out


class TestRun:
    def test_runs_single_figure(self, capsys):
        assert main(["run", "fig02", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "valley_offset_cm" in out

    def test_seed_flag(self, capsys):
        assert main(["run", "fig02", "--fast", "--seed", "3"]) == 0

    def test_unknown_figure_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDataTooling:
    def test_simulate_then_locate(self, tmp_path, capsys):
        csv_path = str(tmp_path / "scan.csv")
        assert main(["simulate", "--scenario", "conveyor", "--out", csv_path,
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["locate", csv_path, "--dim", "2"]) == 0
        out = capsys.readouterr().out
        assert "estimated position" in out
        assert "lower-dimension" in out

    def test_locate_ls_method(self, tmp_path, capsys):
        csv_path = str(tmp_path / "scan.csv")
        main(["simulate", "--out", csv_path, "--seed", "1"])
        capsys.readouterr()
        assert main(["locate", csv_path, "--method", "ls"]) == 0

    def test_simulate_turntable(self, tmp_path, capsys):
        csv_path = str(tmp_path / "turn.csv")
        assert main(["simulate", "--scenario", "turntable", "--out", csv_path]) == 0

    def test_calibrate_three_line(self, tmp_path, capsys):
        csv_path = str(tmp_path / "cal.csv")
        main(["simulate", "--scenario", "three-line", "--out", csv_path,
              "--seed", "6", "--noise", "0.05"])
        capsys.readouterr()
        assert main(["calibrate", csv_path, "--physical-center", "0,0.8,0"]) == 0
        out = capsys.readouterr().out
        assert "estimated phase center" in out
        assert "phase offset" in out

    def test_calibrate_bad_center_format(self, tmp_path):
        csv_path = str(tmp_path / "cal.csv")
        main(["simulate", "--scenario", "three-line", "--out", csv_path])
        with pytest.raises(SystemExit):
            main(["calibrate", csv_path, "--physical-center", "nonsense"])


class TestTopCommand:
    def _timeseries(self, rows=3):
        return {
            "cadence_s": 1.0,
            "window_s": 60.0,
            "samples": [
                {
                    "t": float(i), "dt": 1.0, "req_s": 10.0 + i, "err_s": 0.0,
                    "shed_s": 0.0, "p50_ms": 4.0, "p99_ms": 9.0 if i else None,
                    "inflight": 1.0, "queue_depth": 0.0,
                }
                for i in range(rows)
            ],
        }

    def _slo(self, state="ok"):
        return {
            "route": "/v1/locate",
            "state": state,
            "objectives": [
                {
                    "name": "latency_p99_le_250ms", "kind": "latency",
                    "state": state, "budget_remaining": 1.0,
                    "windows": [
                        {"window_s": 30.0, "burn_rate": 0.0, "burning": False},
                    ],
                }
            ],
        }

    def test_render_top_frame(self):
        from repro.cli import _render_top

        frame = _render_top("http://x", self._timeseries(), self._slo(), 60.0)
        assert "lion top — http://x" in frame
        assert "samples=3" in frame and "slo=ok" in frame
        assert "req/s" in frame and "queue" in frame
        assert "slo latency_p99_le_250ms: ok" in frame
        assert "budget_remaining=1.0" in frame

    def test_render_top_burning_and_empty(self):
        from repro.cli import _render_top

        slo = self._slo("burning")
        slo["objectives"][0]["windows"][0].update(burn_rate=50.0, burning=True)
        frame = _render_top("http://x", {"samples": []}, slo, 60.0)
        assert "no samples yet" in frame
        assert "burning_windows=[30.0]" in frame and "max_burn=50" in frame

    def test_top_once_against_live_server(self, capsys):
        from repro.serve import ServeConfig
        from repro.serve.net import NetServeConfig, ServerHandle

        config = NetServeConfig(
            port=0, shards=1, worker_mode="thread",
            engine=ServeConfig(max_wait_s=0.001), history_cadence_s=0.05,
        )
        with ServerHandle(config) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            assert main(["top", url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "lion top —" in out and "slo=" in out

    def test_top_rejects_bad_interval_and_window(self):
        assert main(["top", "http://127.0.0.1:1", "--interval", "0", "--once"]) == 2
        assert main(["top", "http://127.0.0.1:1", "--window", "-5", "--once"]) == 2

    def test_top_unreachable_server_exits_1(self):
        import socket

        # Grab a port that is definitely closed.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["top", f"http://127.0.0.1:{port}", "--once"]) == 1
