"""Tests for the hyperbola, parabola and rotating-tag baselines."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.baselines.angle import locate_rotating_tag
from repro.baselines.hyperbola import locate_hyperbola
from repro.baselines.parabola import locate_parabola_2d


def _phases(positions, target, offset=0.4, noise=None, rng=None):
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + offset
    if noise:
        phases = phases + rng.normal(0.0, noise, size=len(distances))
    return np.mod(phases, TWO_PI)


class TestHyperbola:
    def test_noiseless_2d(self):
        angles = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        target = np.array([0.9, 0.3])
        result = locate_hyperbola(positions, _phases(positions, target))
        assert result.converged
        assert result.position == pytest.approx(target, abs=1e-4)

    def test_noisy_2d(self, rng):
        angles = np.linspace(0, 2 * np.pi, 200, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        target = np.array([0.0, 1.0])
        phases = _phases(positions, target, noise=0.1, rng=rng)
        result = locate_hyperbola(positions, phases)
        assert np.linalg.norm(result.position - target) < 0.03

    def test_noiseless_3d(self):
        # A continuous helix: unwrapping (which both LION and this baseline
        # rely on) requires small displacement between consecutive reads.
        t = np.linspace(0, 4 * np.pi, 400)
        positions = np.stack(
            [0.3 * np.cos(t), 0.3 * np.sin(t), 0.05 * t / np.pi], axis=1
        )
        target = np.array([0.1, 0.9, 0.2])
        result = locate_hyperbola(
            positions, _phases(positions, target), initial_guess=np.array([0.0, 0.5, 0.0])
        )
        assert result.position == pytest.approx(target, abs=1e-3)

    def test_explicit_initial_guess_shape_checked(self, rng):
        positions = rng.uniform(-0.5, 0.5, size=(20, 2))
        with pytest.raises(ValueError):
            locate_hyperbola(
                positions, np.zeros(20), initial_guess=np.zeros(3), dim=2
            )

    def test_too_few_reads_rejected(self):
        with pytest.raises(ValueError):
            locate_hyperbola(np.zeros((2, 2)), np.zeros(2))

    def test_iterations_reported(self):
        angles = np.linspace(0, 2 * np.pi, 60, endpoint=False)
        positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        result = locate_hyperbola(positions, _phases(positions, np.array([0.8, 0.2])))
        assert result.iterations > 0


class TestParabola:
    def test_noiseless_recovery(self):
        x = np.linspace(-0.4, 0.4, 200)
        target = np.array([0.1, 0.9])
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        result = locate_parabola_2d(x, _phases(positions, target))
        # The parabola is a second-order approximation of the true distance
        # profile, so a systematic depth bias of a few centimeters remains
        # even on clean data — one of the limitations the paper cites [8].
        assert result.position[0] == pytest.approx(0.1, abs=0.01)
        assert result.position[1] == pytest.approx(0.9, abs=0.08)

    def test_negative_side(self):
        x = np.linspace(-0.4, 0.4, 200)
        target = np.array([0.0, 0.8])
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        result = locate_parabola_2d(x, _phases(positions, target), positive_side=False)
        assert result.position[1] < 0.0

    def test_rms_residual_small_for_clean_data(self):
        x = np.linspace(-0.3, 0.3, 150)
        target = np.array([0.0, 1.0])
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        result = locate_parabola_2d(x, _phases(positions, target))
        assert result.rms_residual_rad < 0.2

    def test_non_convex_profile_rejected(self):
        x = np.linspace(0.0, 0.3, 50)
        phases = np.linspace(0.0, -3.0, 50)  # concave/linear, no valley
        with pytest.raises(ValueError):
            locate_parabola_2d(x, np.mod(phases, TWO_PI))

    def test_too_few_reads_rejected(self):
        with pytest.raises(ValueError):
            locate_parabola_2d(np.array([0.0, 1.0]), np.array([0.0, 1.0]))


class TestRotatingTag:
    def _scan(self, target, radius, noise=None, rng=None, n=300):
        angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
        positions = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        phases = _phases(positions, target, noise=noise, rng=rng)
        return angles, phases

    def test_recovers_azimuth_and_distance(self):
        target = np.array([0.5, 0.5])
        angles, phases = self._scan(target, 0.2)
        result = locate_rotating_tag(angles, phases, radius_m=0.2)
        assert result.azimuth_rad == pytest.approx(np.pi / 4, abs=0.01)
        assert result.center_distance_m == pytest.approx(np.hypot(0.5, 0.5), abs=0.01)

    def test_position_estimate(self, rng):
        target = np.array([0.0, 0.7])
        angles, phases = self._scan(target, 0.15, noise=0.05, rng=rng)
        result = locate_rotating_tag(angles, phases, radius_m=0.15)
        assert np.linalg.norm(result.position - target) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            locate_rotating_tag(np.zeros(4), np.zeros(4), radius_m=0.2)
        with pytest.raises(ValueError):
            locate_rotating_tag(np.zeros(20), np.zeros(20), radius_m=0.0)
        with pytest.raises(ValueError):
            locate_rotating_tag(np.zeros(20), np.zeros(19), radius_m=0.2)
