"""Tests for repro.experiments.crlb."""

import numpy as np
import pytest

from repro.experiments.crlb import efficiency, phase_localization_crlb


def _line_scan(n=200, half=0.4):
    x = np.linspace(-half, half, n)
    return np.stack([x, np.zeros_like(x)], axis=1)


def _circle_scan(radius, n=200):
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)


class TestCrlbGeometryEffects:
    def test_linear_scan_depth_worse_than_along_track(self):
        """The Fig. 14 pattern: y (depth) is harder than x for a line scan."""
        bound = phase_localization_crlb(
            _line_scan(), np.array([0.0, 0.8]), phase_noise_std_rad=0.1
        )
        assert bound.axis_std_m[1] > bound.axis_std_m[0]

    def test_bound_grows_with_depth(self):
        near = phase_localization_crlb(
            _line_scan(), np.array([0.0, 0.6]), 0.1
        ).position_std_m
        far = phase_localization_crlb(
            _line_scan(), np.array([0.0, 1.6]), 0.1
        ).position_std_m
        assert far > near

    def test_bound_shrinks_with_radius(self):
        """The Fig. 21 pattern: larger turntable radius helps."""
        target = np.array([0.0, 0.7])
        small = phase_localization_crlb(_circle_scan(0.10), target, 0.1).position_std_m
        large = phase_localization_crlb(_circle_scan(0.25), target, 0.1).position_std_m
        assert large < small

    def test_bound_scales_linearly_with_noise(self):
        target = np.array([0.2, 0.9])
        low = phase_localization_crlb(_circle_scan(0.3), target, 0.05).position_std_m
        high = phase_localization_crlb(_circle_scan(0.3), target, 0.10).position_std_m
        assert high == pytest.approx(2.0 * low, rel=1e-6)

    def test_more_reads_tighten_the_bound(self):
        target = np.array([0.1, 0.8])
        few = phase_localization_crlb(_circle_scan(0.3, 50), target, 0.1).position_std_m
        many = phase_localization_crlb(_circle_scan(0.3, 500), target, 0.1).position_std_m
        assert many == pytest.approx(few / np.sqrt(10.0), rel=0.05)

    def test_offset_nuisance_loosens_bound(self):
        target = np.array([0.0, 0.8])
        with_offset = phase_localization_crlb(
            _line_scan(), target, 0.1, estimate_offset=True
        ).position_std_m
        without = phase_localization_crlb(
            _line_scan(), target, 0.1, estimate_offset=False
        ).position_std_m
        assert with_offset > without


class TestCrlbSanity:
    def test_lion_respects_the_bound(self, rng):
        """Monte-Carlo LION errors sit above (but near) the CRLB."""
        from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
        from repro.core.localizer import LionLocalizer, PreprocessConfig

        target = np.array([0.2, 0.9])
        positions = _circle_scan(0.3, 300)
        sigma = 0.1
        bound = phase_localization_crlb(positions, target, sigma)
        localizer = LionLocalizer(
            dim=2, preprocess=PreprocessConfig(smoothing_window=1), interval_m=0.3
        )
        errors = []
        for _ in range(30):
            distances = np.linalg.norm(positions - target, axis=1)
            phases = np.mod(
                2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
                + rng.normal(0, sigma, len(distances)),
                TWO_PI,
            )
            result = localizer.locate(positions, phases)
            errors.append(np.linalg.norm(result.position - target))
        rmse = float(np.sqrt(np.mean(np.square(errors))))
        # Above the bound (estimator cannot beat it)...
        assert rmse > bound.position_std_m * 0.8  # 0.8: finite-sample slack
        # ...but within a small factor (LION is near-efficient here).
        assert efficiency(rmse, bound) > 0.3

    def test_3d_line_scan_is_singular(self):
        x = np.linspace(-0.5, 0.5, 100)
        positions = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        with pytest.raises(ValueError):
            phase_localization_crlb(positions, np.array([0.0, 0.8, 0.0]), 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            phase_localization_crlb(_line_scan(), np.array([0.0, 0.8]), 0.0)
        with pytest.raises(ValueError):
            phase_localization_crlb(_line_scan(), np.zeros(3), 0.1)
        with pytest.raises(ValueError):
            phase_localization_crlb(
                np.array([[0.0, 0.0]]), np.array([0.0, 0.0]), 0.1
            )
        with pytest.raises(ValueError):
            efficiency(0.0, phase_localization_crlb(_line_scan(), np.array([0.0, 0.8]), 0.1))
