"""Tests for the request-scoped observability layer.

Covers the three modules behind the serving stack's request tracing:
``repro.obs.request`` (id minting/parsing, context binding, the
span store's claim semantics, the flight recorder),
``repro.obs.history`` (delta ring buffer, reset semantics, derived
quantiles, the sampler's synchronous baseline), and ``repro.obs.slo``
(burn-rate evaluation and budget-burn transition logging).

Histories are fed synthetic registry snapshots with explicit ``now``
timestamps, so every windowed assertion is deterministic.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    configure_logging,
    disable_tracing,
    enable_tracing,
    get_registry,
    reset_tracing,
    span,
)
from repro.obs.history import (
    HistDelta,
    HistorySampler,
    MetricsHistory,
    count_le,
    counter_delta,
    gauge_values,
    histogram_delta,
    quantile,
)
from repro.obs.request import (
    FlightRecorder,
    RequestSpanStore,
    bind_request_id,
    current_request_id,
    parse_traceparent,
    request_id_from_headers,
    reset_request_spans,
    take_request_spans,
)
from repro.obs.slo import (
    SloObjective,
    SloTracker,
    error_rate_slo,
    latency_slo,
)
from repro.obs.trace import SpanNode


@pytest.fixture(autouse=True)
def _clean_obs_state():
    disable_tracing()
    reset_tracing()
    reset_request_spans()
    get_registry().reset()
    yield
    disable_tracing()
    reset_tracing()
    reset_request_spans()
    get_registry().reset()


# -- request ids -----------------------------------------------------------


class TestRequestId:
    def test_x_request_id_wins(self):
        rid, source = request_id_from_headers(
            {
                "x-request-id": "abc-123",
                "traceparent": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            }
        )
        assert (rid, source) == ("abc-123", "x-request-id")

    def test_traceparent_fallback(self):
        rid, source = request_id_from_headers(
            {"traceparent": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"}
        )
        assert (rid, source) == ("0af7651916cd43dd8448eb211c80319c", "traceparent")

    def test_generated_when_absent_or_malformed(self):
        for headers in (
            {},
            {"x-request-id": "bad id with spaces", "traceparent": "nonsense"},
            {"x-request-id": "x" * 200},  # over the length bound
        ):
            rid, source = request_id_from_headers(headers)
            assert source == "generated"
            assert len(rid) == 32 and int(rid, 16) >= 0

    def test_traceparent_rejects_zero_trace_id(self):
        assert parse_traceparent("00-" + "0" * 32 + "-b7ad6b7169203331-01") is None
        assert parse_traceparent("garbage") is None

    def test_bind_request_id_scopes_and_nests(self):
        assert current_request_id() is None
        with bind_request_id("outer"):
            assert current_request_id() == "outer"
            with bind_request_id("inner"):
                assert current_request_id() == "inner"
            with bind_request_id(None):  # no-op binding
                assert current_request_id() == "outer"
        assert current_request_id() is None


# -- span store ------------------------------------------------------------


def _root(name: str, **attributes) -> dict:
    return SpanNode(name=name, attributes=attributes).to_dict()


class TestRequestSpanStore:
    def test_scalar_claim_drops_entry(self):
        store = RequestSpanStore()
        store.ingest([_root("serve.scalar", request_id="r1")])
        assert len(store) == 1
        claimed = store.take("r1")
        assert [c["name"] for c in claimed] == ["serve.scalar"]
        assert len(store) == 0
        assert store.take("r1") == []

    def test_batch_span_claimed_once_per_member(self):
        store = RequestSpanStore()
        store.ingest([_root("serve.batch", request_ids=("r1", "r2"))])
        assert [c["name"] for c in store.take("r1")] == ["serve.batch"]
        assert len(store) == 1  # r2 has not claimed yet
        assert [c["name"] for c in store.take("r2")] == ["serve.batch"]
        assert len(store) == 0

    def test_unlinked_roots_discarded_and_capacity_bounded(self):
        store = RequestSpanStore(capacity=3)
        store.ingest([_root("orphan")])
        assert len(store) == 0
        store.ingest([_root("s", request_id=f"r{i}") for i in range(5)])
        assert len(store) == 3
        assert store.take("r0") == []  # evicted oldest
        assert len(store.take("r4")) == 1

    def test_take_drains_live_trace_roots(self):
        enable_tracing()
        with span("serve.scalar", request_id="live-1"):
            pass
        claimed = take_request_spans("live-1")
        assert [c["name"] for c in claimed] == ["serve.scalar"]
        assert claimed[0]["attributes"]["request_id"] == "live-1"


# -- flight recorder -------------------------------------------------------


def _trace(wall_s: float) -> SpanNode:
    return SpanNode(name="serve.net.ingress", start_s=100.0, end_s=100.0 + wall_s)


class TestFlightRecorder:
    def test_records_errors_and_slow_skips_fast_ok(self):
        recorder = FlightRecorder(capacity=8, slow_threshold_s=0.5)
        assert not recorder.consider(
            _trace(0.01), status=200, request_id="fast", route="/v1/locate"
        )
        assert recorder.consider(
            _trace(0.01), status=500, request_id="err", route="/v1/locate"
        )
        assert recorder.consider(
            _trace(0.9), status=200, request_id="slow", route="/v1/locate"
        )
        stats = recorder.stats()
        assert stats == {"considered": 3, "recorded": 2, "retained": 2, "capacity": 8}

    def test_snapshot_newest_first_with_limit_and_eviction(self):
        recorder = FlightRecorder(capacity=2, slow_threshold_s=0.0)
        for index in range(4):
            recorder.consider(
                _trace(0.01), status=200, request_id=f"r{index}", route="/v1/locate"
            )
        snapshot = recorder.snapshot()
        assert [entry["request_id"] for entry in snapshot] == ["r3", "r2"]
        assert [e["request_id"] for e in recorder.snapshot(limit=1)] == ["r3"]

    def test_dump_writes_json(self, tmp_path):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=0.0)
        recorder.consider(_trace(0.02), status=200, request_id="d1", route="/v1/locate")
        path = tmp_path / "flight.json"
        assert recorder.dump(str(path)) == 1
        import json

        payload = json.loads(path.read_text())
        assert payload["traces"][0]["request_id"] == "d1"
        assert payload["traces"][0]["duration_ms"] == pytest.approx(20.0)


# -- telemetry history -----------------------------------------------------


def _snapshot(requests: float, errors: float = 0.0, hist_counts=(0, 0, 0), depth=0.0):
    route = {"route": "/v1/locate"}
    return {
        "counters": [
            {"name": "serve.net.requests_total", "labels": {**route, "status": "200"},
             "value": requests},
            {"name": "serve.net.requests_total", "labels": {**route, "status": "500"},
             "value": errors},
        ],
        "gauges": [
            {"name": "serve.queue_depth", "labels": {}, "value": depth},
        ],
        "histograms": [
            {
                "name": "serve.net.request_seconds",
                "labels": route,
                "buckets": [0.1, 0.25],
                "counts": list(hist_counts),
                "sum": 0.0,
            }
        ],
    }


class TestMetricsHistory:
    def test_first_observation_is_baseline(self):
        history = MetricsHistory()
        assert history.observe(_snapshot(10), now=0.0) is None
        assert len(history) == 0

    def test_counter_deltas_and_reset_semantics(self):
        history = MetricsHistory()
        history.observe(_snapshot(10), now=0.0)
        sample = history.observe(_snapshot(17), now=1.0)
        assert counter_delta(sample, "serve.net.requests_total") == 7.0
        # A counter that went down means the source restarted: the
        # current value is the whole delta, never a negative rate.
        sample = history.observe(_snapshot(3), now=2.0)
        assert counter_delta(sample, "serve.net.requests_total") == 3.0

    def test_label_filtered_delta_and_gauges(self):
        history = MetricsHistory()
        history.observe(_snapshot(0, errors=0), now=0.0)
        sample = history.observe(_snapshot(8, errors=2, depth=5.0), now=1.0)
        errors = counter_delta(
            sample,
            "serve.net.requests_total",
            lambda labels: labels.get("status") == "500",
        )
        assert errors == 2.0
        assert gauge_values(sample, "serve.queue_depth") == [({}, 5.0)]

    def test_histogram_delta_quantile_and_count_le(self):
        history = MetricsHistory()
        history.observe(_snapshot(0), now=0.0)
        history.observe(_snapshot(0, hist_counts=(8, 1, 1)), now=1.0)
        history.observe(_snapshot(0, hist_counts=(16, 2, 2)), now=2.0)
        merged = histogram_delta(history.window(10.0, now=2.0), "serve.net.request_seconds")
        assert merged == HistDelta(buckets=(0.1, 0.25), counts=(16, 2, 2), sum=0.0)
        assert quantile(merged, 0.5) == pytest.approx(0.0625)
        assert count_le(merged, 0.2) == (18, 0.25)  # snapped up to the 0.25 edge
        assert count_le(merged, 99.0) == (20, float("inf"))
        assert quantile(None, 0.5) is None

    def test_window_trims_by_timestamp_and_capacity(self):
        history = MetricsHistory(capacity=2)
        for tick in range(4):
            history.observe(_snapshot(float(tick)), now=float(tick))
        assert len(history) == 2  # ring capacity
        assert [s.t for s in history.window(1.5, now=3.0)] == [2.0, 3.0]


class TestHistorySampler:
    def test_start_takes_synchronous_baseline(self):
        # Traffic landing between start() and the first tick must show
        # up as a delta, not fold silently into the baseline.
        value = {"n": 100.0}
        history = MetricsHistory()
        sampler = HistorySampler(
            source=lambda: _snapshot(value["n"]), history=history, cadence_s=3600.0
        )
        sampler.start()
        try:
            assert len(history) == 0  # baseline only, no interval yet
            value["n"] = 140.0
            sample = sampler.sample_once()
            assert counter_delta(sample, "serve.net.requests_total") == 40.0
        finally:
            sampler.stop()

    def test_source_failure_does_not_raise(self):
        def broken():
            raise RuntimeError("scrape failed")

        sampler = HistorySampler(source=broken, history=MetricsHistory(), cadence_s=1.0)
        assert sampler.sample_once() is None
        assert sampler.sample_once() is None  # second failure stays silent


# -- SLOs ------------------------------------------------------------------


class TestSloObjectives:
    def test_factories_and_validation(self):
        latency = latency_slo(250.0)
        assert latency.name == "latency_p99_le_250ms"
        assert latency.threshold_s == pytest.approx(0.25)
        errors = error_rate_slo(0.01)
        assert errors.name == "error_rate_le_1pct"
        assert errors.target == pytest.approx(0.99)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", target=0.99)  # no threshold
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="weird", target=0.99)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="error_rate", target=1.5)


class TestSloTracker:
    def _tracker(self, history):
        return SloTracker(history, [latency_slo(250.0), error_rate_slo(0.01)])

    def test_idle_then_ok(self):
        history = MetricsHistory()
        tracker = self._tracker(history)
        assert tracker.evaluate(now=0.0)["state"] == "idle"
        history.observe(_snapshot(0), now=0.0)
        history.observe(_snapshot(100, hist_counts=(100, 0, 0)), now=1.0)
        payload = tracker.evaluate(now=1.0)
        assert payload["state"] == "ok"
        by_name = {entry["name"]: entry for entry in payload["objectives"]}
        assert by_name["latency_p99_le_250ms"]["state"] == "ok"
        assert by_name["latency_p99_le_250ms"]["threshold_ms"] == pytest.approx(250.0)
        assert by_name["error_rate_le_1pct"]["budget_remaining"] == 1.0

    def test_burning_and_recovery_logged(self, capsys):
        # The repro hierarchy does not propagate to the root logger, so
        # assert on the structured stderr stream configure_logging owns.
        configure_logging("info")
        history = MetricsHistory()
        tracker = self._tracker(history)
        history.observe(_snapshot(0, errors=0), now=0.0)
        # 50% errors: bad_fraction 0.5 / budget 0.01 = burn 50 >= 14.4.
        history.observe(_snapshot(10, errors=10, hist_counts=(20, 0, 0)), now=1.0)
        payload = tracker.evaluate(now=1.0)
        assert payload["state"] == "burning"
        errors = [e for e in payload["objectives"] if e["kind"] == "error_rate"][0]
        assert errors["state"] == "burning"
        assert any(w["burning"] for w in errors["windows"])
        # Recovery: the error burst ages out of every window.
        payload = tracker.evaluate(now=1000.0)
        assert payload["state"] == "idle"
        captured = capsys.readouterr().err
        assert "SLO budget burning: objective=error_rate_le_1pct" in captured
        assert "SLO budget recovered: objective=error_rate_le_1pct" in captured

    def test_latency_objective_burns_on_slow_tail(self):
        history = MetricsHistory()
        tracker = SloTracker(history, [latency_slo(250.0)])
        history.observe(_snapshot(0), now=0.0)
        # 4 of 20 requests over the 0.25 s edge: bad fraction 0.2 ->
        # burn 20 against the 1% budget.
        history.observe(_snapshot(20, hist_counts=(10, 6, 4)), now=1.0)
        payload = tracker.evaluate(now=1.0)
        assert payload["objectives"][0]["state"] == "burning"
