"""Tests for drift monitoring + the recalibration scheduler (repro.calib)."""

import numpy as np
import pytest

from repro.calib import (
    CalibrationStore,
    CalibrationTask,
    DriftMonitor,
    RecalibrationScheduler,
    StalenessPolicy,
    fleet_scan_source,
    solve_calibration_task,
)
from repro.datasets.fleet import AntennaFleet, FleetDriftConfig


@pytest.fixture()
def fleet():
    return AntennaFleet(FleetDriftConfig(size=3, seed=5))


@pytest.fixture()
def store(tmp_path):
    return CalibrationStore(tmp_path / "store")


def _seed(store, fleet, **kwargs):
    scheduler = RecalibrationScheduler(
        store, fleet_scan_source(fleet), executor="serial", source="seed", **kwargs
    )
    report = scheduler.recalibrate(fleet.names)
    assert not report.failures and not report.conflicts
    return scheduler


class TestScheduler:
    def test_build_tasks_stamps_cas_tokens(self, store, fleet):
        scheduler = RecalibrationScheduler(
            store, fleet_scan_source(fleet), executor="serial"
        )
        fresh = scheduler.build_tasks(fleet.names)
        assert [task.expected_version for task in fresh] == [0, 0, 0]
        scheduler.recalibrate(fleet.names)
        again = scheduler.build_tasks(fleet.names)
        assert [task.expected_version for task in again] == [1, 1, 1]

    def test_serial_cycle_commits_all_bit_identical(self, store, fleet):
        _seed(store, fleet, manifest={"cycle": 0})
        for name in fleet.names:
            record = store.latest(name)
            assert record.version == 1
            assert record.source == "seed"
            assert record.manifest == {"cycle": 0}
            direct = solve_calibration_task(fleet_scan_source(fleet)(name))
            assert (
                record.phase_offset_rad
                == direct.calibration.phase_offset_rad
            )
            assert np.array_equal(
                np.asarray(record.estimated_center),
                direct.calibration.estimated_center,
            )
            assert record.residual_rms_m == direct.residual_rms_m
            assert record.reads == direct.reads

    def test_thread_executor_matches_serial(self, store, fleet, tmp_path):
        _seed(store, fleet)
        other = CalibrationStore(tmp_path / "threaded")
        RecalibrationScheduler(
            other, fleet_scan_source(fleet), executor="thread", jobs=2, source="seed"
        ).recalibrate(fleet.names)
        for name in fleet.names:
            assert (
                other.latest(name).phase_offset_rad
                == store.latest(name).phase_offset_rad
            )

    def test_conflict_loses_cleanly(self, store, fleet, monkeypatch):
        scheduler = _seed(store, fleet)
        real_build = RecalibrationScheduler.build_tasks

        def stale_build(self, antennas):
            tasks = real_build(self, antennas)
            # Simulate a concurrent commit landing mid-flight on one antenna.
            loser = tasks[0]
            store.commit(
                solve_calibration_task(loser).calibration,
                source="manual",
                expected_version=loser.expected_version,
            )
            return tasks

        monkeypatch.setattr(RecalibrationScheduler, "build_tasks", stale_build)
        report = scheduler.recalibrate(fleet.names)
        assert report.conflicts == (fleet.names[0],)
        assert set(report.committed) == set(fleet.names[1:])
        # The concurrent commit survived; nothing overwrote it.
        assert store.latest(fleet.names[0]).source == "manual"

    def test_failures_reported_not_raised(self, store, fleet):
        def flaky_source(name):
            task = fleet_scan_source(fleet)(name)
            if name == fleet.names[1]:
                # Rank-deficient: every read from the same point.
                return CalibrationTask(
                    antenna=task.antenna,
                    positions=np.tile(task.positions[:1], (task.positions.shape[0], 1)),
                    phases_rad=task.phases_rad,
                    physical_center=task.physical_center,
                    grid=task.grid,
                )
            return task

        report = RecalibrationScheduler(
            store, flaky_source, executor="serial"
        ).recalibrate(fleet.names)
        assert set(report.failures) == {fleet.names[1]}
        assert set(report.committed) == {fleet.names[0], fleet.names[2]}
        assert report.antennas_per_sec > 0.0

    def test_report_to_dict_round_trips(self, store, fleet):
        report = _seed(store, fleet).recalibrate(fleet.names)
        payload = report.to_dict()
        assert payload["committed"] == {name: 2 for name in fleet.names}
        assert payload["conflicts"] == [] and payload["failures"] == {}
        assert payload["duration_s"] > 0.0


class TestDriftMonitor:
    def test_fresh_fleet_no_work(self, store, fleet):
        scheduler = _seed(store, fleet)
        monitor = DriftMonitor(store)
        report, stale = scheduler.run_cycle(monitor)
        assert stale == []
        assert report.committed == {} and report.duration_s == 0.0

    def test_age_budget_marks_stale(self, fleet, tmp_path):
        clock = [0.0]
        store = CalibrationStore(tmp_path / "aging", clock=lambda: clock[0])
        scheduler = _seed(store, fleet)
        policy = StalenessPolicy(max_age_s=3600.0, aging_fraction=0.5)
        monitor = DriftMonitor(store, policy, clock=lambda: clock[0])
        clock[0] = 2000.0
        health = monitor.evaluate()
        assert all(h.status == "aging" for h in health.antennas)
        clock[0] = 4000.0
        report, stale = scheduler.run_cycle(monitor)
        assert sorted(stale) == sorted(fleet.names)
        assert all(version == 2 for version in report.committed.values())
        assert monitor.evaluate().counts == {"fresh": 3}

    def test_alarm_budget_with_sliding_window(self, store, fleet):
        _seed(store, fleet)
        clock = [100.0]
        policy = StalenessPolicy(max_drift_alarms=3, alarm_window_s=60.0)
        monitor = DriftMonitor(store, policy, clock=lambda: clock[0])
        target = fleet.names[2]
        for _ in range(3):
            monitor.observe_alarm(target, drift_m=0.2)
            clock[0] += 10.0
        health = monitor.evaluate()
        assert health.stale() == (target,)
        flagged = next(h for h in health.antennas if h.antenna == target)
        assert flagged.alarms == 3
        assert any("drift alarms" in reason for reason in flagged.reasons)
        # Alarms age out of the window; the verdict clears on its own.
        clock[0] += 120.0
        assert monitor.evaluate().stale() == ()

    def test_structural_event_sink(self, store, fleet):
        _seed(store, fleet)
        monitor = DriftMonitor(store, StalenessPolicy(max_drift_alarms=1))

        class FakeAlarm:
            kind = "calibration_drift_alarm"
            antenna = fleet.names[0]
            drift_m = 0.5

        class OtherEvent:
            kind = "session_started"
            antenna = fleet.names[1]

        monitor.on_event(FakeAlarm())
        monitor.on_event(OtherEvent())
        assert monitor.alarm_count(fleet.names[0]) == 1
        assert monitor.alarm_count(fleet.names[1]) == 0
        assert monitor.evaluate().stale() == (fleet.names[0],)

    def test_residual_budget(self, store, fleet):
        _seed(store, fleet)
        tight = DriftMonitor(store, StalenessPolicy(max_residual_rms_m=1e-9))
        assert sorted(tight.evaluate().stale()) == sorted(fleet.names)
        loose = DriftMonitor(store, StalenessPolicy(max_residual_rms_m=1.0))
        assert loose.evaluate().stale() == ()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            StalenessPolicy(max_age_s=0.0)
        with pytest.raises(ValueError):
            StalenessPolicy(max_drift_alarms=0)
        with pytest.raises(ValueError):
            StalenessPolicy(aging_fraction=1.5)
