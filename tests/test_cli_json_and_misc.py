"""Tests for CLI JSON export, extension runners and result serialization."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.figures import run_figure
from repro.experiments.metrics import ExperimentResult


class TestJsonExport:
    def test_single_figure_json(self, tmp_path, capsys):
        out = tmp_path / "fig02.json"
        assert main(["run", "fig02", "--fast", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["figure_id"] == "fig02"
        assert payload["columns"] == [
            "scan_axis", "valley_offset_cm", "true_displacement_cm"
        ]
        assert len(payload["rows"]) == 2

    def test_json_roundtrip_through_from_dict(self, tmp_path):
        out = tmp_path / "fig.json"
        main(["run", "fig02", "--fast", "--json", str(out)])
        payload = json.loads(out.read_text())
        rebuilt = ExperimentResult.from_dict(payload)
        assert rebuilt.figure_id == "fig02"
        assert len(rebuilt.rows) == 2

    def test_to_json_matches_to_dict(self):
        result = ExperimentResult("x", "t", columns=["a"])
        result.add_row(a=1.5)
        assert json.loads(result.to_json()) == result.to_dict()


class TestExtensionRunnersViaCli:
    def test_ext_wander_runs(self, capsys):
        assert main(["run", "ext_wander", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "wander_mm" in out

    def test_list_includes_extensions(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "ext_online" in out
        assert "fig21" in out


class TestExtensionResults:
    def test_ext_online_converges(self):
        result = run_figure("ext_online", seed=1, fast=True)
        errors = [float(v) for v in result.column("mean_error_cm")]
        assert errors[-1] < errors[0]
        assert errors[-1] < 1.0

    def test_ext_wander_monotone(self):
        result = run_figure("ext_wander", seed=0, fast=True)
        floors = [float(v) for v in result.column("floor_error_cm")]
        assert floors == sorted(floors)
        assert floors[0] < 0.1

    def test_ext_multiref_ordering(self):
        result = run_figure("ext_multiref", seed=0, fast=True)
        by_variant = {row["variant"]: row["mean_error_cm"] for row in result.rows}
        assert by_variant["stitched three-line (paper)"] < 1.0
        # Multiref variants work (bounded error) without any stitching.
        assert by_variant["separate sweeps (multiref)"] < 8.0
        assert by_variant["frequency-hopped 2D (multiref)"] < 5.0
