"""Tests for repro.datasets (synthetic scans + CSV round-trip)."""

import numpy as np
import pytest

from repro.datasets.io import read_records_csv, write_records_csv
from repro.datasets.synthetic import (
    default_antenna,
    simulate_scan,
    simulate_static_reads,
)
from repro.rf.noise import NoPhaseNoise
from repro.rf.reader import ReaderConfig
from repro.rf.tag import Tag
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan


class TestDefaultAntenna:
    def test_ideal_without_rng(self):
        antenna = default_antenna((0.0, 1.0, 0.0))
        assert antenna.phase_center == pytest.approx([0.0, 1.0, 0.0])
        assert antenna.phase_offset_rad == 0.0

    def test_random_has_realistic_displacement(self, rng):
        antenna = default_antenna((0.0, 1.0, 0.0), rng)
        magnitude = np.linalg.norm(antenna.center_displacement)
        assert 0.015 < magnitude < 0.035

    def test_boresight_faces_track(self, rng):
        behind = default_antenna((0.0, 1.0, 0.0), rng)
        assert behind.off_boresight_angle((0.0, 0.0, 0.0)) < 0.2


class TestSimulateScan:
    def test_bundle_shapes_consistent(self, ideal_antenna, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)), ideal_antenna, rng=rng
        )
        n = len(scan)
        assert scan.positions.shape == (n, 3)
        assert scan.phases.shape == (n,)
        assert scan.timestamps_s.shape == (n,)
        assert scan.segment_ids.shape == (n,)
        assert scan.exclude_mask.shape == (n,)
        assert len(scan.records) == n

    def test_single_line_has_no_transits(self, ideal_antenna, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)), ideal_antenna, rng=rng
        )
        assert not scan.exclude_mask.any()

    def test_three_line_marks_transits(self, ideal_antenna, rng):
        scan = simulate_scan(ThreeLineScan(-0.3, 0.3), ideal_antenna, rng=rng,
                             read_rate_hz=40.0)
        assert scan.exclude_mask.any()
        assert scan.data_positions.shape[0] == int(np.sum(~scan.exclude_mask))

    def test_dropouts_shrink_scan(self, ideal_antenna, rng):
        full = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)), ideal_antenna,
            rng=np.random.default_rng(0),
        )
        lossy = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)), ideal_antenna,
            rng=np.random.default_rng(0),
            reader_config=ReaderConfig(dropout_probability=0.3),
        )
        assert len(lossy) < len(full)
        assert lossy.segment_ids.shape == (len(lossy),)

    def test_deterministic_given_seed(self, ideal_antenna):
        scans = [
            simulate_scan(
                LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)),
                ideal_antenna,
                rng=np.random.default_rng(7),
            )
            for _ in range(2)
        ]
        assert scans[0].phases == pytest.approx(scans[1].phases)

    def test_noiseless_matches_geometry(self, ideal_antenna, ideal_tag, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.3, 0, 0), (0.3, 0, 0)),
            ideal_antenna,
            tag=ideal_tag,
            rng=rng,
            noise=NoPhaseNoise(),
        )
        from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI

        d = np.linalg.norm(
            scan.positions - ideal_antenna.phase_center[np.newaxis, :], axis=1
        )
        expected = np.mod(2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * d, TWO_PI)
        assert scan.phases == pytest.approx(expected)


class TestSimulateStaticReads:
    def test_count(self, ideal_antenna, ideal_tag, rng):
        records = simulate_static_reads(
            ideal_antenna, ideal_tag, (0.0, 0.0, 0.0), 25, rng
        )
        assert len(records) == 25
        assert all(r.tag_position == (0.0, 0.0, 0.0) for r in records)


class TestCsvRoundTrip:
    def test_roundtrip_exact(self, ideal_antenna, rng, tmp_path):
        scan = simulate_scan(
            LinearTrajectory((-0.2, 0, 0), (0.2, 0, 0)), ideal_antenna, rng=rng,
            read_rate_hz=40.0,
        )
        path = tmp_path / "scan.csv"
        write_records_csv(scan.records, path)
        restored = read_records_csv(path)
        assert restored == scan.records

    def test_empty_write_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_records_csv([], tmp_path / "empty.csv")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_records_csv(tmp_path / "nope.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_records_csv(path)

    def test_malformed_row_rejected(self, tmp_path, ideal_antenna, rng):
        scan = simulate_scan(
            LinearTrajectory((-0.2, 0, 0), (0.2, 0, 0)), ideal_antenna, rng=rng,
            read_rate_hz=40.0,
        )
        path = tmp_path / "scan.csv"
        write_records_csv(scan.records[:3], path)
        with path.open("a") as handle:
            handle.write("short,row\n")
        with pytest.raises(ValueError):
            read_records_csv(path)
