"""Tests for repro.signalproc.alignment — clock-offset estimation."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.signalproc.alignment import (
    apply_clock_offset,
    estimate_clock_offset,
)


def _boustrophedon_x(times, speed=0.1, start=-0.4, half_duration=8.0):
    """Out-and-back sweep: forward for half the scan, then reversed.

    A direction reversal is what makes the clock offset observable — on a
    constant-velocity line the offset is absorbed as a spatial shift (see
    the alignment module docstring).
    """
    forward = start + speed * np.minimum(times, half_duration)
    backward = speed * np.maximum(times - half_duration, 0.0)
    return forward - backward


def _misaligned_streams(true_offset_s, noise=0.02, rng=None, n=800):
    """A back-and-forth scan whose phase clock lags the encoder clock."""
    rng = rng or np.random.default_rng(0)
    target = np.array([0.1, 0.9])
    duration = 16.0
    encoder_times = np.linspace(0.0, duration, n)
    x = _boustrophedon_x(encoder_times)
    encoder_positions = np.stack([x, np.zeros_like(x)], axis=1)
    # Phases are *observed* at reader-clock times; the tag's true position
    # at reader time t is the encoder position at t + true_offset.
    reader_times = np.linspace(0.5, duration - 0.5, n)
    true_x = _boustrophedon_x(reader_times + true_offset_s)
    true_positions = np.stack([true_x, np.zeros_like(true_x)], axis=1)
    distances = np.linalg.norm(true_positions - target, axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + 0.4
        + rng.normal(0.0, noise, n),
        TWO_PI,
    )
    return encoder_times, encoder_positions, reader_times, phases, target


@pytest.fixture
def localizer():
    return LionLocalizer(
        dim=2, preprocess=PreprocessConfig(smoothing_window=1), interval_m=0.2
    )


class TestEstimateClockOffset:
    @pytest.mark.parametrize("true_offset", [-0.12, 0.0, 0.15])
    def test_recovers_known_offset(self, localizer, true_offset):
        et, ep, rt, phases, _ = _misaligned_streams(true_offset)
        result = estimate_clock_offset(
            localizer, et, ep, rt, phases,
            candidate_offsets_s=np.linspace(-0.25, 0.25, 26),
        )
        assert result.offset_s == pytest.approx(true_offset, abs=0.02)

    def test_alignment_improves_localization(self, localizer, rng):
        true_offset = 0.1
        et, ep, rt, phases, target = _misaligned_streams(true_offset, rng=rng)
        aligned = apply_clock_offset(et, ep, rt, true_offset)
        misaligned = apply_clock_offset(et, ep, rt, 0.0)
        error_aligned = np.linalg.norm(
            localizer.locate(aligned, phases).position - target
        )
        error_misaligned = np.linalg.norm(
            localizer.locate(misaligned, phases).position - target
        )
        assert error_aligned < error_misaligned

    def test_score_curve_shape(self, localizer):
        et, ep, rt, phases, _ = _misaligned_streams(0.0)
        result = estimate_clock_offset(localizer, et, ep, rt, phases)
        assert result.offsets_s.shape == result.scores.shape
        best = int(np.argmin(result.scores))
        # Scores grow away from the optimum on both sides.
        assert result.scores[0] > result.scores[best]
        assert result.scores[-1] > result.scores[best]

    def test_refinement_beats_grid_resolution(self, localizer):
        true_offset = 0.037  # deliberately off the grid
        et, ep, rt, phases, _ = _misaligned_streams(true_offset, noise=0.01)
        coarse_grid = np.linspace(-0.2, 0.2, 9)  # 50 ms steps
        result = estimate_clock_offset(
            localizer, et, ep, rt, phases, candidate_offsets_s=coarse_grid
        )
        assert abs(result.offset_s - true_offset) < 0.025

    def test_validation(self, localizer):
        et, ep, rt, phases, _ = _misaligned_streams(0.0)
        with pytest.raises(ValueError):
            estimate_clock_offset(localizer, et, ep, rt, phases[:10])
        with pytest.raises(ValueError):
            estimate_clock_offset(localizer, et[:5], ep, rt, phases)
        with pytest.raises(ValueError):
            estimate_clock_offset(
                localizer, et, ep, rt, phases, candidate_offsets_s=[]
            )


class TestApplyClockOffset:
    def test_interpolates_linearly(self):
        times = np.array([0.0, 1.0, 2.0])
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        out = apply_clock_offset(times, positions, np.array([0.25]), 0.25)
        assert out[0] == pytest.approx([0.5, 0.0])

    def test_clamps_at_edges(self):
        times = np.array([0.0, 1.0])
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        out = apply_clock_offset(times, positions, np.array([5.0]), 10.0)
        assert out[0] == pytest.approx([1.0, 0.0])
