"""Tests for the import-hygiene gate (tools/check_import_hygiene.py).

The tool also runs standalone in CI's lint job; these tests keep its
verdict correct in both directions — the tree is currently clean, and a
sneaky solver import (even a lazy one inside a function) is caught.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_import_hygiene.py"

spec = importlib.util.spec_from_file_location("check_import_hygiene", TOOL)
hygiene = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_import_hygiene", hygiene)
spec.loader.exec_module(hygiene)


class TestGateOnTree:
    def test_tree_is_clean(self):
        assert hygiene.main() == 0

    def test_gate_covers_experiments_and_cli(self):
        names = {path.name for path in hygiene.gated_files()}
        assert "cli.py" in names
        assert "montecarlo.py" in names
        assert "figures_eval.py" in names


class TestGateVerdicts:
    def test_flags_solver_module_import(self):
        assert hygiene._is_forbidden("repro.core.localizer")
        assert hygiene._is_forbidden("repro.core.adaptive")
        assert hygiene._is_forbidden("repro.core.online")
        assert hygiene._is_forbidden("repro.core.multiref")
        assert hygiene._is_forbidden("repro.core.multiantenna")
        assert hygiene._is_forbidden("repro.core")

    def test_flags_baselines(self):
        assert hygiene._is_forbidden("repro.baselines")
        assert hygiene._is_forbidden("repro.baselines.hologram")

    def test_allows_calibration_and_pipeline(self):
        assert not hygiene._is_forbidden("repro.core.calibration")
        assert not hygiene._is_forbidden("repro.pipeline")
        assert not hygiene._is_forbidden("repro.datasets.io")
        assert not hygiene._is_forbidden("repro.corelike")

    def test_catches_lazy_function_level_import(self):
        import ast

        tree = ast.parse(
            "def sneaky():\n"
            "    from repro.core.localizer import LionLocalizer\n"
            "    return LionLocalizer\n"
        )
        modules = [module for _, module in hygiene._imported_modules(tree)]
        assert "repro.core.localizer" in modules


class TestStreamLayering:
    """The second rule: nothing below repro.stream may import it back."""

    def test_flags_stream_imports(self):
        assert hygiene._is_stream("repro.stream")
        assert hygiene._is_stream("repro.stream.manager")
        assert hygiene._is_stream("repro.stream.session")

    def test_does_not_flag_lookalikes_or_lower_layers(self):
        assert not hygiene._is_stream("repro.streaming")
        assert not hygiene._is_stream("repro.serve")
        assert not hygiene._is_stream("repro.core")

    def test_gate_exempts_only_the_session_surface(self):
        relative = {
            path.relative_to(hygiene.SRC).as_posix()
            for path in hygiene.stream_gated_files()
        }
        # the allowed importers are NOT gated...
        assert "repro/cli.py" not in relative
        assert not any(name.startswith("repro/stream/") for name in relative)
        assert not any(name.startswith("repro/serve/net/") for name in relative)
        # ...but everything else below the session layer is.
        assert "repro/__init__.py" in relative
        assert "repro/serve/engine.py" in relative
        assert "repro/core/localizer.py" in relative
        assert "repro/pipeline/registry.py" in relative

    def test_flags_violation_even_when_lazy(self, tmp_path):
        offender = hygiene.SRC / "repro" / "_hygiene_probe.py"
        offender.write_text(
            "def sneaky():\n"
            "    from repro.stream import SessionManager\n"
            "    return SessionManager\n"
        )
        try:
            messages = hygiene.check_stream_file(offender)
        finally:
            offender.unlink()
        assert len(messages) == 1
        assert "repro.stream" in messages[0]
        assert "session layer" in messages[0]
