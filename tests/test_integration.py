"""Integration tests: the full calibrate-then-localize story of the paper."""

import numpy as np
import pytest

from repro.baselines.hologram import DifferentialHologram
from repro.baselines.hyperbola import locate_hyperbola
from repro.core.adaptive import ParameterGrid
from repro.core.calibration import calibrate_antenna, relative_phase_offsets
from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.rf.tag import Tag
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan

FAST_GRID = ParameterGrid(ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.3))


class TestCalibrationImprovesLocalization:
    """The paper's core claim, end to end."""

    def test_2d_error_with_vs_without_calibration(self, rng):
        antenna = Antenna(
            physical_center=(0.0, 0.8, 0.0),
            center_displacement=(0.022, -0.018, 0.01),
            phase_offset_rad=2.2,
            boresight=(0, -1, 0),
        )
        # Calibrate with a three-line scan.
        cal_scan = simulate_scan(
            ThreeLineScan(-0.5, 0.5), antenna, rng=rng,
            noise=GaussianPhaseNoise(0.05), read_rate_hz=40.0,
        )
        calibration, _ = calibrate_antenna(
            cal_scan.positions, cal_scan.phases, antenna.physical_center_array,
            segment_ids=cal_scan.segment_ids, exclude_mask=cal_scan.exclude_mask,
            grid=FAST_GRID,
        )
        # Localize from a fresh conveyor scan.
        scan = simulate_scan(
            LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)), antenna, rng=rng,
            noise=GaussianPhaseNoise(0.05), read_rate_hz=40.0,
        )
        result = LionLocalizer(dim=2).locate(scan.positions, scan.phases)
        error_uncalibrated = np.linalg.norm(
            result.position - antenna.physical_center_array[:2]
        )
        error_calibrated = np.linalg.norm(
            result.position - calibration.estimated_center[:2]
        )
        assert error_calibrated < error_uncalibrated / 2.0
        assert error_calibrated < 0.01

    def test_multi_antenna_relative_offsets(self, rng):
        """Two antennas sharing one tag: relative offset is tag-free."""
        tag = Tag(phase_offset_rad=1.7)
        offsets_true = (0.5, 2.1)
        calibrations = []
        for index, offset in enumerate(offsets_true):
            antenna = Antenna(
                physical_center=(0.3 * index, 0.8, 0.0),
                center_displacement=(0.01, 0.02, -0.01),
                phase_offset_rad=offset,
                boresight=(0, -1, 0),
            )
            scan = simulate_scan(
                ThreeLineScan(-0.5, 0.5, origin=(0.3 * index, 0.0, 0.0)),
                antenna, tag=tag, rng=rng,
                noise=GaussianPhaseNoise(0.03), read_rate_hz=40.0,
            )
            calibration, _ = calibrate_antenna(
                scan.positions, scan.phases, antenna.physical_center_array,
                antenna_name=f"A{index}", segment_ids=scan.segment_ids,
                exclude_mask=scan.exclude_mask, grid=FAST_GRID,
            )
            calibrations.append(calibration)
        relative = relative_phase_offsets(calibrations)
        assert relative["A1"] == pytest.approx(
            offsets_true[1] - offsets_true[0], abs=0.1
        )


class TestMethodsAgree:
    """LION, DAH and the hyperbola solver should agree on clean data."""

    def test_three_methods_same_answer(self, rng):
        antenna = Antenna(physical_center=(0.15, 0.9, 0.0), boresight=(0, -1, 0))
        scan = simulate_scan(
            CircularTrajectory((0, 0, 0), radius=0.3), antenna, rng=rng,
            noise=GaussianPhaseNoise(0.05), read_rate_hz=60.0,
        )
        truth = antenna.phase_center[:2]

        lion = LionLocalizer(dim=2, interval_m=0.3).locate(scan.positions, scan.phases)
        assert np.linalg.norm(lion.position - truth) < 0.01

        hyperbola = locate_hyperbola(
            scan.positions[:, :2], scan.phases, initial_guess=np.array([0.0, 0.5])
        )
        assert np.linalg.norm(hyperbola.position - truth) < 0.01

        stride = max(len(scan) // 30, 1)
        dah = DifferentialHologram(grid_size_m=0.004).locate(
            scan.positions[::stride, :2],
            scan.phases[::stride],
            [(truth[0] - 0.1, truth[0] + 0.1), (truth[1] - 0.1, truth[1] + 0.1)],
        )
        assert np.linalg.norm(dah.position - truth) < 0.01

        assert np.linalg.norm(lion.position - hyperbola.position) < 0.01
        assert np.linalg.norm(lion.position - dah.position) < 0.015


class TestSymmetry:
    """Locating the antenna from tag motion == locating a tag from antenna
    knowledge: the model only sees relative geometry."""

    def test_translation_invariance(self, rng):
        offsets = [np.zeros(3), np.array([5.0, -3.0, 0.0])]
        results = []
        for offset in offsets:
            antenna = Antenna(
                physical_center=tuple(np.array([0.1, 0.9, 0.0]) + offset),
                boresight=(0, -1, 0),
            )
            scan = simulate_scan(
                LinearTrajectory(offset + [-0.4, 0, 0], offset + [0.4, 0, 0]),
                antenna, rng=np.random.default_rng(11),
                noise=GaussianPhaseNoise(0.05), read_rate_hz=40.0,
            )
            result = LionLocalizer(dim=2).locate(scan.positions, scan.phases)
            results.append(result.position - offset[:2])
        assert results[0] == pytest.approx(results[1], abs=1e-4)
