"""Tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import (
    Point2D,
    Point3D,
    as_point_array,
    as_point_matrix,
    distance,
    midpoint,
    pairwise_distances,
)


class TestPointTypes:
    def test_point2d_as_array(self):
        assert np.array_equal(Point2D(1.0, 2.0).as_array(), [1.0, 2.0])

    def test_point3d_as_array(self):
        assert np.array_equal(Point3D(1.0, 2.0, 3.0).as_array(), [1.0, 2.0, 3.0])

    def test_point2d_distance_to(self):
        assert Point2D(0.0, 0.0).distance_to(Point2D(3.0, 4.0)) == pytest.approx(5.0)

    def test_point3d_distance_to(self):
        assert Point3D(0.0, 0.0, 0.0).distance_to((1.0, 2.0, 2.0)) == pytest.approx(3.0)


class TestAsPointArray:
    def test_accepts_list(self):
        assert np.array_equal(as_point_array([1, 2]), [1.0, 2.0])

    def test_accepts_tuple_3d(self):
        assert np.array_equal(as_point_array((1, 2, 3)), [1.0, 2.0, 3.0])

    def test_promotes_2d_to_3d(self):
        assert np.array_equal(as_point_array([1, 2], dim=3), [1.0, 2.0, 0.0])

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            as_point_array([1, 2, 3], dim=2)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_point_array(np.zeros((2, 2)))

    def test_rejects_scalar_like(self):
        with pytest.raises(ValueError):
            as_point_array([1.0])

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            as_point_array([1, 2, 3, 4])


class TestAsPointMatrix:
    def test_stacks_mixed_inputs(self):
        matrix = as_point_matrix([Point2D(0, 1), [2, 3]], dim=2)
        assert matrix.shape == (2, 2)
        assert np.array_equal(matrix, [[0, 1], [2, 3]])

    def test_empty_input(self):
        assert as_point_matrix([], dim=3).shape == (0, 3)


class TestDistance:
    def test_zero_distance(self):
        assert distance([1, 1], [1, 1]) == 0.0

    def test_known_distance(self):
        assert distance([0, 0, 0], [2, 3, 6]) == pytest.approx(7.0)

    def test_symmetric(self):
        assert distance([1, 5], [4, 1]) == distance([4, 1], [1, 5])


class TestPairwiseDistances:
    def test_matches_individual_distances(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        result = pairwise_distances(points, [0.0, 0.0])
        assert result == pytest.approx([0.0, 1.0, 2.0])

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.array([1.0, 2.0]), [0.0, 0.0])


def test_midpoint():
    assert np.array_equal(midpoint([0, 0], [2, 4]), [1.0, 2.0])
