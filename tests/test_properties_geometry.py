"""Property-based tests (hypothesis) for the geometry substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.circles import Circle, circle_circle_intersection
from repro.geometry.lines import radical_line
from repro.geometry.transforms import (
    from_line_frame_2d,
    rotation_matrix_2d,
    rotation_matrix_3d,
    to_line_frame_2d,
)

coordinate = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)
angle = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestRadicalLineProperties:
    @given(
        coordinate, coordinate, coordinate, coordinate, coordinate, coordinate
    )
    @settings(max_examples=100)
    def test_radical_line_contains_common_point(self, tx, ty, c1x, c1y, c2x, c2y):
        """For any target and two distinct centers, the radical line built
        from exact distances passes through the target."""
        target = np.array([tx, ty])
        c1 = np.array([c1x, c1y])
        c2 = np.array([c2x, c2y])
        assume(np.linalg.norm(c1 - c2) > 1e-3)
        line = radical_line(
            c1, float(np.linalg.norm(target - c1)),
            c2, float(np.linalg.norm(target - c2)),
        )
        assert line.distance_to(target) < 1e-6

    @given(coordinate, coordinate, coordinate, coordinate,
           st.floats(min_value=0.1, max_value=3.0),
           st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=100)
    def test_intersections_lie_on_radical_line(self, c1x, c1y, c2x, c2y, r1, r2):
        c1, c2 = np.array([c1x, c1y]), np.array([c2x, c2y])
        assume(np.linalg.norm(c1 - c2) > 1e-3)
        line = radical_line(c1, r1, c2, r2)
        points = circle_circle_intersection(
            Circle((c1x, c1y), r1), Circle((c2x, c2y), r2)
        )
        for point in points:
            assert line.distance_to(point) < 1e-6


class TestCircleIntersectionProperties:
    @given(coordinate, coordinate, coordinate, coordinate,
           st.floats(min_value=0.05, max_value=3.0),
           st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=100)
    def test_intersections_on_both_circles(self, c1x, c1y, c2x, c2y, r1, r2):
        c1, c2 = Circle((c1x, c1y), r1), Circle((c2x, c2y), r2)
        assume(np.linalg.norm(np.array([c1x, c1y]) - [c2x, c2y]) > 1e-3)
        for point in circle_circle_intersection(c1, c2):
            assert c1.contains(point, tol=1e-6)
            assert c2.contains(point, tol=1e-6)


class TestRotationProperties:
    @given(angle)
    def test_2d_rotation_orthogonal(self, theta):
        matrix = rotation_matrix_2d(theta)
        assert np.allclose(matrix @ matrix.T, np.eye(2), atol=1e-12)

    @given(angle, angle)
    def test_2d_rotations_compose(self, a, b):
        composed = rotation_matrix_2d(a) @ rotation_matrix_2d(b)
        assert np.allclose(composed, rotation_matrix_2d(a + b), atol=1e-9)

    @given(coordinate, coordinate, coordinate, angle)
    def test_3d_rotation_preserves_norm(self, x, y, z, theta):
        axis = np.array([x, y, z])
        assume(np.linalg.norm(axis) > 1e-3)
        matrix = rotation_matrix_3d(axis, theta)
        vector = np.array([1.0, -2.0, 0.5])
        assert abs(
            np.linalg.norm(matrix @ vector) - np.linalg.norm(vector)
        ) < 1e-9


class TestLineFrameProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        coordinate, coordinate, coordinate, coordinate,
    )
    @settings(max_examples=60)
    def test_roundtrip_identity(self, seed, ox, oy, dx, dy):
        direction = np.array([dx, dy])
        assume(np.linalg.norm(direction) > 1e-3)
        rng = np.random.default_rng(seed)
        points = rng.uniform(-3, 3, size=(7, 2))
        transformed, rotation = to_line_frame_2d(points, [ox, oy], direction)
        restored = from_line_frame_2d(transformed, [ox, oy], rotation)
        assert np.allclose(restored, points, atol=1e-9)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        coordinate, coordinate, coordinate, coordinate,
    )
    @settings(max_examples=60)
    def test_isometry(self, seed, ox, oy, dx, dy):
        direction = np.array([dx, dy])
        assume(np.linalg.norm(direction) > 1e-3)
        rng = np.random.default_rng(seed)
        points = rng.uniform(-3, 3, size=(5, 2))
        transformed, _ = to_line_frame_2d(points, [ox, oy], direction)
        original = np.linalg.norm(points[0] - points[1:], axis=1)
        mapped = np.linalg.norm(transformed[0] - transformed[1:], axis=1)
        assert np.allclose(original, mapped, atol=1e-9)
