"""Tests for the :mod:`repro.pipeline` serving layer.

Covers the registry (name -> typed config -> estimator), the
request/report contract, dict round-trips of every config class, the
adapters' accuracy on synthetic scenes, the deprecation shims (warning
fires, results stay identical), and the batch fan-out helper.
"""

import dataclasses

import numpy as np
import pytest

from repro import pipeline
from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.obs.manifest import config_fingerprint

K = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M
TRUTH_2D = np.array([0.15, 0.9])


def _linear_scene(seed=7, noise=0.03, count=200, offset=0.7):
    """An x-sweep past the 2D truth with Eq. (1) phases."""
    rng = np.random.default_rng(seed)
    x = np.linspace(-0.5, 0.5, count)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - TRUTH_2D, axis=1)
    phases = np.mod(
        K * distances + offset + rng.normal(0.0, noise, count), TWO_PI
    )
    return positions, phases


def _multiantenna_scene():
    """Three antennas read one static tag; offsets known exactly."""
    centers = np.array([[-0.3, 0.0], [0.0, 0.0], [0.3, 0.0]])
    truth = np.array([-0.1, 0.8])
    offsets = np.array([0.5, 1.3, 2.1])
    distances = np.linalg.norm(centers - truth, axis=1)
    phases = np.mod(K * distances + offsets, TWO_PI)
    bounds = ((truth[0] - 0.15, truth[0] + 0.15), (truth[1] - 0.15, truth[1] + 0.15))
    return centers, phases, offsets, bounds, truth


def _turntable_scene():
    """A tag on a turntable read by an antenna 0.8 m out at 0.4 rad."""
    radius = 0.15
    antenna = 0.8 * np.array([np.cos(0.4), np.sin(0.4)])
    angles = np.linspace(0.0, TWO_PI, 240, endpoint=False)
    tags = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    distances = np.linalg.norm(tags - antenna, axis=1)
    phases = np.mod(K * distances + 0.3, TWO_PI)
    return angles, phases, radius, antenna


class TestRegistry:
    def test_names_sorted_and_unique(self):
        names = pipeline.estimator_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_duplicate_registration_rejected(self):
        spec = pipeline.get_spec("lion")
        with pytest.raises(ValueError, match="already registered"):
            pipeline.register_estimator(
                "lion", spec.config_cls, spec.factory, summary="dupe"
            )

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="lion-online"):
            pipeline.get_spec("no-such-method")

    def test_resolve_config_defaults(self):
        config = pipeline.resolve_config("lion")
        assert isinstance(config, pipeline.LionConfig)
        assert config == pipeline.LionConfig()

    def test_resolve_config_from_dict(self):
        config = pipeline.resolve_config("lion", {"dim": 3, "interval_m": 0.2})
        assert config.dim == 3
        assert config.interval_m == 0.2

    def test_resolve_config_unknown_key(self):
        with pytest.raises(ValueError, match="unknown"):
            pipeline.resolve_config("lion", {"no_such_knob": 1})

    def test_resolve_config_wrong_typed_class(self):
        with pytest.raises(TypeError, match="LionConfig"):
            pipeline.resolve_config("lion", pipeline.HologramConfig())


class TestConfigRoundTrip:
    @pytest.mark.parametrize(
        "name", ["lion", "lion-online", "lion-multiref", "lion-multiantenna",
                 "lion-adaptive", "hyperbola", "parabola", "angle", "hologram"]
    )
    def test_defaults_round_trip(self, name):
        config = pipeline.resolve_config(name)
        payload = config.to_dict()
        assert config.__class__.from_dict(payload) == config

    def test_tuple_fields_round_trip(self):
        config = pipeline.AdaptiveLionConfig(
            ranges_m=(0.5, 0.9), intervals_m=(0.1, 0.2, 0.3)
        )
        rebuilt = pipeline.AdaptiveLionConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.ranges_m == (0.5, 0.9)

    def test_wavelength_dict_survives_json_string_keys(self):
        config = pipeline.MultiRefLionConfig(
            wavelengths_by_run={0: 0.33, 1: 0.324}
        )
        payload = config.to_dict()
        stringified = dict(payload, wavelengths_by_run={"0": 0.33, "1": 0.324})
        rebuilt = pipeline.MultiRefLionConfig.from_dict(stringified)
        assert rebuilt == config
        assert set(rebuilt.wavelengths_by_run) == {0, 1}

    @pytest.mark.parametrize(
        "name", ["lion", "lion-online", "lion-multiref", "lion-multiantenna",
                 "lion-adaptive", "hyperbola", "parabola", "angle", "hologram"]
    )
    def test_to_dict_is_json_safe(self, name):
        import json

        payload = pipeline.resolve_config(name).to_dict()
        assert json.loads(json.dumps(payload)) is not None


class TestContract:
    def test_from_scan_duck_typing(self):
        class FakeScan:
            positions = np.zeros((4, 2))
            phases = np.zeros(4)
            segment_ids = np.array([0, 0, 1, 1])
            exclude_mask = np.array([False, True, False, False])

        request = pipeline.EstimationRequest.from_scan(FakeScan())
        assert request.positions.shape == (4, 2)
        assert request.exclude_mask.sum() == 1

    def test_require_names_missing_fields(self):
        request = pipeline.EstimationRequest(positions=np.zeros((3, 2)))
        with pytest.raises(ValueError, match="phases_rad"):
            request.require("positions", "phases_rad")

    def test_report_hash_matches_manifest_config(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            {"dim": 2},
        )
        assert report.config_hash == config_fingerprint(report.manifest_config())
        assert report.manifest_config()["estimator"] == "lion"
        assert report.config["dim"] == 2

    def test_config_hash_depends_on_config(self):
        positions, phases = _linear_scene()
        request = pipeline.EstimationRequest(positions=positions, phases_rad=phases)
        a = pipeline.estimate("lion", request, {"dim": 2, "interval_m": 0.25})
        b = pipeline.estimate("lion", request, {"dim": 2, "interval_m": 0.2})
        assert a.config_hash != b.config_hash


class TestAdapters:
    def test_lion_locates_truth(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            {"dim": 2, "interval_m": 0.25},
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.005
        assert report.reference_distance_m is not None
        assert "mean_abs_residual" in report.diagnostics
        assert report.residuals is not None

    def test_lion_honours_exclude_mask(self):
        positions, phases = _linear_scene()
        corrupted = phases.copy()
        corrupted[:20] = 0.0
        mask = np.zeros(len(phases), dtype=bool)
        mask[:20] = True
        report = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest(
                positions=positions, phases_rad=corrupted, exclude_mask=mask
            ),
            {"dim": 2, "interval_m": 0.25},
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.005

    def test_online_streaming_and_batch_agree(self):
        positions, phases = _linear_scene()
        online = pipeline.create_estimator("lion-online", {"dim": 2, "pair_lag": 40})
        for position, phase in zip(positions, phases):
            online.ingest(position, phase)
        assert online.ready()
        snapshot = online.snapshot()
        replay = online.estimate(
            pipeline.EstimationRequest(positions=positions, phases_rad=phases)
        )
        assert np.linalg.norm(snapshot.position - TRUTH_2D) < 0.01
        np.testing.assert_allclose(replay.position, snapshot.position, atol=1e-9)

    def test_adaptive_reports_selection(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "lion-adaptive",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            {"dim": 2, "ranges_m": (0.8, 1.0), "intervals_m": (0.2, 0.25)},
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.01
        assert report.diagnostics["best_range_m"] in (0.8, 1.0)
        assert report.diagnostics["best_interval_m"] in (0.2, 0.25)

    def test_multiref_separate_runs(self):
        positions, phases = _linear_scene(noise=0.0)
        runs = np.repeat([0, 1], len(positions) // 2)
        # Give the second run its own phase datum.
        shifted = phases.copy()
        shifted[runs == 1] = np.mod(shifted[runs == 1] + 1.9, TWO_PI)
        report = pipeline.estimate(
            "lion-multiref",
            pipeline.EstimationRequest(
                positions=positions, phases_rad=shifted, run_ids=runs
            ),
            {"dim": 2, "interval_m": 0.25},
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.01
        assert report.diagnostics["run_count"] == 2

    def test_multiref_requires_run_labels(self):
        positions, phases = _linear_scene()
        with pytest.raises(ValueError, match="run_ids"):
            pipeline.estimate(
                "lion-multiref",
                pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            )

    def test_multiantenna_with_offset_corrections(self):
        centers, phases, offsets, bounds, truth = _multiantenna_scene()
        report = pipeline.estimate(
            "lion-multiantenna",
            pipeline.EstimationRequest(
                positions=centers,
                phases_rad=phases,
                bounds=bounds,
                offset_corrections_rad=offsets - offsets[0],
            ),
            {"grid_size_m": 0.005},
        )
        assert np.linalg.norm(report.position - truth) < 0.01

    def test_hyperbola_baseline(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "hyperbola",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.01

    def test_parabola_baseline(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "parabola",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
        )
        # The parabola fit estimates the closest-approach x and the depth.
        assert abs(report.position[0] - TRUTH_2D[0]) < 0.02

    def test_angle_baseline(self):
        angles, phases, radius, antenna = _turntable_scene()
        report = pipeline.estimate(
            "angle",
            pipeline.EstimationRequest(
                angles_rad=angles, phases_rad=phases, radius_m=radius
            ),
        )
        assert np.linalg.norm(report.position - antenna) < 0.01

    def test_hologram_baseline(self):
        positions, phases = _linear_scene()
        report = pipeline.estimate(
            "hologram",
            pipeline.EstimationRequest(
                positions=positions[::8],
                phases_rad=phases[::8],
                bounds=(
                    (TRUTH_2D[0] - 0.1, TRUTH_2D[0] + 0.1),
                    (TRUTH_2D[1] - 0.1, TRUTH_2D[1] + 0.1),
                ),
            ),
            {"grid_size_m": 0.005},
        )
        assert np.linalg.norm(report.position - TRUTH_2D) < 0.01

    def test_missing_fields_are_uniform_errors(self):
        empty = pipeline.EstimationRequest()
        for name in pipeline.estimator_names():
            with pytest.raises(ValueError, match="missing required fields"):
                pipeline.estimate(name, empty)


class TestDeprecationShims:
    """Every legacy entry point warns and matches the registry's answer."""

    def test_adaptive_localize(self):
        from repro.core.adaptive import ParameterGrid, adaptive_localize
        from repro.core.localizer import LionLocalizer

        positions, phases = _linear_scene()
        grid = ParameterGrid(ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.25))
        with pytest.warns(DeprecationWarning, match="lion-adaptive"):
            legacy = adaptive_localize(
                LionLocalizer(dim=2), positions, phases, grid=grid
            )
        report = pipeline.estimate(
            "lion-adaptive",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            {"dim": 2, "ranges_m": (0.8, 1.0), "intervals_m": (0.2, 0.25)},
        )
        np.testing.assert_allclose(
            legacy.best_outcome.result.position, report.position, atol=1e-12
        )

    def test_locate_multireference(self):
        from repro.core.multiref import locate_multireference

        positions, phases = _linear_scene(noise=0.0)
        runs = np.repeat([0, 1], len(positions) // 2)
        with pytest.warns(DeprecationWarning, match="lion-multiref"):
            legacy = locate_multireference(positions, phases, runs, dim=2)
        report = pipeline.estimate(
            "lion-multiref",
            pipeline.EstimationRequest(
                positions=positions, phases_rad=phases, run_ids=runs
            ),
            {"dim": 2},
        )
        np.testing.assert_allclose(legacy.position, report.position, atol=1e-12)

    def test_differential_hologram(self):
        from repro.core.multiantenna import differential_hologram

        centers, phases, offsets, bounds, _ = _multiantenna_scene()
        with pytest.warns(DeprecationWarning, match="lion-multiantenna"):
            legacy = differential_hologram(
                centers, phases, bounds, grid_size_m=0.01,
                offset_corrections_rad=offsets - offsets[0],
            )
        report = pipeline.estimate(
            "lion-multiantenna",
            pipeline.EstimationRequest(
                positions=centers, phases_rad=phases, bounds=bounds,
                offset_corrections_rad=offsets - offsets[0],
            ),
            {"grid_size_m": 0.01},
        )
        np.testing.assert_allclose(legacy.position, report.position, atol=1e-12)

    def test_locate_hyperbola(self):
        from repro.baselines.hyperbola import locate_hyperbola

        positions, phases = _linear_scene()
        with pytest.warns(DeprecationWarning, match="hyperbola"):
            legacy = locate_hyperbola(positions, phases)
        report = pipeline.estimate(
            "hyperbola",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
        )
        np.testing.assert_allclose(legacy.position, report.position, atol=1e-12)

    def test_locate_hyperbola_pairs_override_still_works(self):
        from repro.baselines.hyperbola import locate_hyperbola

        positions, phases = _linear_scene()
        pairs = [(0, 60), (60, 120), (120, 199)]
        with pytest.warns(DeprecationWarning):
            result = locate_hyperbola(positions, phases, pairs=pairs)
        assert np.all(np.isfinite(result.position))

    def test_locate_parabola_2d(self):
        from repro.baselines.parabola import locate_parabola_2d

        positions, phases = _linear_scene()
        with pytest.warns(DeprecationWarning, match="parabola"):
            legacy = locate_parabola_2d(positions[:, 0], phases)
        report = pipeline.estimate(
            "parabola",
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
        )
        np.testing.assert_allclose(legacy.position, report.position, atol=1e-12)

    def test_locate_rotating_tag(self):
        from repro.baselines.angle import locate_rotating_tag

        angles, phases, radius, _ = _turntable_scene()
        with pytest.warns(DeprecationWarning, match="angle"):
            legacy = locate_rotating_tag(angles, phases, radius)
        report = pipeline.estimate(
            "angle",
            pipeline.EstimationRequest(
                angles_rad=angles, phases_rad=phases, radius_m=radius
            ),
        )
        np.testing.assert_allclose(legacy.position, report.position, atol=1e-12)


class TestEstimateMany:
    def test_serial_and_thread_agree(self):
        requests = []
        for seed in (1, 2, 3, 4):
            positions, phases = _linear_scene(seed=seed)
            requests.append(
                pipeline.EstimationRequest(positions=positions, phases_rad=phases)
            )
        serial = pipeline.estimate_many("lion", requests, {"dim": 2})
        threaded = pipeline.estimate_many(
            "lion", requests, {"dim": 2}, executor="thread", jobs=2
        )
        for a, b in zip(serial, threaded):
            np.testing.assert_allclose(a.position, b.position, atol=0.0)
            assert a.config_hash == b.config_hash


class TestConfigIntrospection:
    def test_every_config_is_frozen_dataclass(self):
        for name in pipeline.estimator_names():
            cls = pipeline.get_spec(name).config_cls
            assert dataclasses.is_dataclass(cls)
            params = getattr(cls, "__dataclass_params__")
            assert params.frozen, f"{cls.__name__} must be frozen"

    def test_every_config_has_wavelength(self):
        for name in pipeline.estimator_names():
            config = pipeline.resolve_config(name)
            assert config.wavelength_m == pytest.approx(DEFAULT_WAVELENGTH_M)
