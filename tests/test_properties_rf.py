"""Property-based tests (hypothesis) for the RF substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.rf.antenna import Antenna
from repro.rf.channel import Channel, ChannelConfig
from repro.rf.noise import NoPhaseNoise
from repro.rf.tag import Tag

coordinate = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
offset = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9)


def _clean_channel(antenna_offset=0.0, tag_offset=0.0, displacement=(0, 0, 0)):
    antenna = Antenna(
        physical_center=(0.0, 0.0, 0.0),
        center_displacement=tuple(displacement),
        phase_offset_rad=antenna_offset,
        boresight=(0.0, 1.0, 0.0),
    )
    return Channel(
        antenna=antenna,
        tag=Tag(phase_offset_rad=tag_offset),
        config=ChannelConfig(noise=NoPhaseNoise()),
    )


class TestChannelProperties:
    @given(coordinate, coordinate, coordinate, offset, offset)
    @settings(max_examples=80)
    def test_ideal_phase_matches_eq1_everywhere(self, x, y, z, a_off, t_off):
        point = np.array([x, y, z])
        assume(np.linalg.norm(point) > 0.05)
        channel = _clean_channel(a_off, t_off)
        expected = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * np.linalg.norm(point)
            + a_off
            + t_off,
            TWO_PI,
        )
        got = channel.ideal_phase(tuple(point))
        delta = np.mod(got - expected + np.pi, TWO_PI) - np.pi
        assert abs(delta) < 1e-9

    @given(coordinate, coordinate, offset)
    @settings(max_examples=50)
    def test_observed_equals_ideal_without_noise(self, x, y, a_off):
        point = np.array([x, y, 0.3])
        assume(np.linalg.norm(point) > 0.05)
        channel = _clean_channel(a_off)
        rng = np.random.default_rng(0)
        assert channel.observe_phase(tuple(point), rng) == pytest.approx(
            channel.ideal_phase(tuple(point))
        )

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=-0.04, max_value=0.04),
        st.floats(min_value=-0.04, max_value=0.04),
    )
    @settings(max_examples=50)
    def test_phase_anchored_to_displaced_center(self, distance, dx, dy):
        """The reported phase always reflects the *displaced* center."""
        channel = _clean_channel(displacement=(dx, dy, 0.0))
        point = np.array([0.0, distance, 0.0])
        true_distance = np.linalg.norm(point - np.array([dx, dy, 0.0]))
        expected = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * true_distance, TWO_PI
        )
        assert channel.ideal_phase(tuple(point)) == pytest.approx(expected, abs=1e-9)

    @given(st.floats(min_value=0.2, max_value=2.0), st.floats(min_value=1.05, max_value=3.0))
    @settings(max_examples=50)
    def test_rssi_monotone_in_distance_on_boresight(self, d, factor):
        channel = _clean_channel()
        near = channel.observe_rssi((0.0, d, 0.0))
        far = channel.observe_rssi((0.0, d * factor, 0.0))
        assert near > far


class TestAntennaGainProperties:
    @given(coordinate, coordinate, coordinate)
    @settings(max_examples=80)
    def test_gain_in_unit_range(self, x, y, z):
        antenna = Antenna(physical_center=(0, 0, 0), boresight=(0, 1, 0))
        point = np.array([x, y, z])
        assume(np.linalg.norm(point) > 1e-3)
        gain = antenna.relative_gain(tuple(point))
        assert 0.0 < gain <= 1.0

    @given(st.floats(min_value=0.0, max_value=np.pi / 2 - 0.01))
    @settings(max_examples=50)
    def test_gain_depends_only_on_angle(self, angle):
        antenna = Antenna(physical_center=(0, 0, 0), boresight=(0, 1, 0))
        near = (np.sin(angle) * 0.5, np.cos(angle) * 0.5, 0.0)
        far = (np.sin(angle) * 4.0, np.cos(angle) * 4.0, 0.0)
        assert antenna.relative_gain(near) == pytest.approx(
            antenna.relative_gain(far)
        )

    @given(st.floats(min_value=0.001, max_value=0.03))
    @settings(max_examples=30)
    def test_wander_never_moves_center_forward(self, wander):
        antenna = Antenna(
            physical_center=(0, 0, 0), boresight=(0, 1, 0), center_wander_m=wander
        )
        for angle in np.linspace(0.0, np.pi / 2, 7):
            point = (np.sin(angle) * 2.0, np.cos(angle) * 2.0, 0.0)
            center = antenna.effective_phase_center(point)
            # Shift strictly backward along the boresight (y <= 0).
            assert center[1] <= 1e-12


class TestTagProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    def test_offset_always_normalised(self, raw):
        tag = Tag(phase_offset_rad=raw)
        assert 0.0 <= tag.phase_offset_rad < TWO_PI
