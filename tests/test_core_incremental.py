"""Tests for repro.core.incremental — append-aware scan assembly.

The whole streaming subsystem rests on one identity: a window re-solve
through :class:`IncrementalScanAssembler` is bit-identical to a one-shot
:meth:`LionLocalizer.locate` over the same window's raw reads. These
tests pin that identity at every stage (unwrap correction, preprocessed
profile, full solve), across window eviction, and through reset.
"""

import numpy as np
import pytest

from repro import LinearTrajectory, default_antenna, simulate_scan
from repro.core.incremental import IncrementalScanAssembler, unwrap_correction
from repro.core.localizer import LionLocalizer, PreprocessConfig, TooFewReadsError


def _scan(seed=3, reads=None):
    rng = np.random.default_rng(seed)
    antenna = default_antenna((0.15, 0.95, 0.0), rng)
    return simulate_scan(
        LinearTrajectory((-0.5, 0.0, 0.0), (0.5, 0.0, 0.0)), antenna, rng=rng
    )


def _filled(localizer, scan, max_reads=4096):
    assembler = IncrementalScanAssembler(localizer, max_reads=max_reads)
    for k in range(len(scan)):
        assembler.append(scan.positions[k], scan.phases[k], timestamp_s=k / 120.0)
    return assembler


class TestUnwrapCorrection:
    def test_cumulative_corrections_reproduce_np_unwrap(self):
        rng = np.random.default_rng(11)
        wrapped = rng.uniform(0.0, 2.0 * np.pi, size=500)
        corrections = np.zeros_like(wrapped)
        for i in range(1, wrapped.size):
            corrections[i] = unwrap_correction(wrapped[i - 1], wrapped[i], np.pi)
        rebuilt = wrapped.copy()
        rebuilt[1:] = wrapped[1:] + np.cumsum(corrections[1:])
        assert np.array_equal(rebuilt, np.unwrap(wrapped))

    def test_small_step_has_zero_correction(self):
        assert unwrap_correction(1.0, 1.2, np.pi) == 0.0

    def test_wrap_jump_corrected(self):
        # 6.2 -> 0.1 is a forward wrap: np.unwrap adds 2*pi.
        correction = unwrap_correction(6.2, 0.1, np.pi)
        assert correction == pytest.approx(2.0 * np.pi)

    def test_matches_np_unwrap_at_exact_pi_jump(self):
        for previous, phase in [(0.0, np.pi), (np.pi, 0.0), (0.0, -np.pi)]:
            expected = np.unwrap(np.array([previous, phase]))[1] - phase
            assert unwrap_correction(previous, phase, np.pi) == expected


class TestWindowProfile:
    def test_profile_bit_identical_to_batch_preprocess(self):
        scan = _scan()
        localizer = LionLocalizer(dim=2)
        assembler = _filled(localizer, scan)
        batch = localizer.preprocess_phase(scan.phases)
        assert np.array_equal(assembler.window_profile(), batch)

    def test_profile_identity_survives_eviction(self):
        scan = _scan()
        localizer = LionLocalizer(dim=2)
        max_reads = 200
        assembler = _filled(localizer, scan, max_reads=max_reads)
        assert len(assembler) == max_reads
        window_phases = scan.phases[-max_reads:]
        batch = localizer.preprocess_phase(window_phases)
        assert np.array_equal(assembler.window_profile(), batch)

    def test_window_arrays_are_the_raw_reads(self):
        scan = _scan()
        assembler = _filled(LionLocalizer(dim=2), scan)
        timestamps, positions, phases = assembler.window_arrays()
        assert np.array_equal(positions, np.asarray(scan.positions, dtype=float))
        assert np.array_equal(phases, np.asarray(scan.phases, dtype=float))
        assert timestamps[-1] == pytest.approx((len(scan) - 1) / 120.0)


class TestResolveIdentity:
    @pytest.mark.parametrize("method", ["wls", "ls"])
    def test_resolve_bit_identical_to_locate(self, method):
        scan = _scan()
        localizer = LionLocalizer(dim=2, method=method)
        assembler = _filled(localizer, scan)
        incremental = assembler.resolve()
        batch = localizer.locate(scan.positions, scan.phases)
        assert np.array_equal(incremental.position, batch.position)
        assert incremental.reference_distance_m == batch.reference_distance_m

    def test_resolve_bit_identical_after_eviction(self):
        scan = _scan()
        localizer = LionLocalizer(dim=2)
        max_reads = 300
        assembler = _filled(localizer, scan, max_reads=max_reads)
        incremental = assembler.resolve()
        batch = localizer.locate(
            np.asarray(scan.positions)[-max_reads:], scan.phases[-max_reads:]
        )
        assert np.array_equal(incremental.position, batch.position)

    def test_repeated_resolves_are_stable(self):
        scan = _scan()
        assembler = _filled(LionLocalizer(dim=2), scan)
        first = assembler.resolve()
        second = assembler.resolve()
        assert np.array_equal(first.position, second.position)

    def test_resolve_after_reset_and_refill(self):
        scan = _scan()
        localizer = LionLocalizer(dim=2)
        assembler = _filled(localizer, scan)
        assembler.reset()
        assert len(assembler) == 0
        assert assembler.appended == 0
        for k in range(len(scan)):
            assembler.append(scan.positions[k], scan.phases[k])
        batch = localizer.locate(scan.positions, scan.phases)
        assert np.array_equal(assembler.resolve().position, batch.position)


class TestValidation:
    def test_window_bound_must_hold_three_reads(self):
        with pytest.raises(ValueError):
            IncrementalScanAssembler(LionLocalizer(dim=2), max_reads=2)

    def test_too_few_reads_to_resolve(self):
        assembler = IncrementalScanAssembler(LionLocalizer(dim=2), max_reads=16)
        assembler.append((0.0, 0.0), 0.1)
        assembler.append((0.01, 0.0), 0.2)
        with pytest.raises(TooFewReadsError):
            assembler.resolve()

    def test_non_finite_phase_rejected(self):
        assembler = IncrementalScanAssembler(LionLocalizer(dim=2), max_reads=16)
        with pytest.raises(ValueError):
            assembler.append((0.0, 0.0), float("nan"))

    def test_bad_position_shape_rejected(self):
        assembler = IncrementalScanAssembler(LionLocalizer(dim=2), max_reads=16)
        with pytest.raises(ValueError):
            assembler.append((0.0, 0.0, 0.0, 0.0), 0.1)
        with pytest.raises(ValueError):
            assembler.append((float("inf"), 0.0), 0.1)

    def test_appended_counts_evicted_reads(self):
        scan = _scan()
        assembler = _filled(LionLocalizer(dim=2), scan, max_reads=100)
        assert assembler.appended == len(scan)
        assert len(assembler) == 100


class TestSmoothingVariants:
    def test_identity_with_smoothing_disabled(self):
        scan = _scan()
        localizer = LionLocalizer(
            dim=2, preprocess=PreprocessConfig(smoothing_window=1)
        )
        assembler = _filled(localizer, scan)
        batch = localizer.locate(scan.positions, scan.phases)
        assert np.array_equal(assembler.resolve().position, batch.position)

    def test_identity_with_hampel_filter(self):
        scan = _scan()
        localizer = LionLocalizer(
            dim=2, preprocess=PreprocessConfig(hampel_window=7)
        )
        assembler = _filled(localizer, scan)
        batch = localizer.locate(scan.positions, scan.phases)
        assert np.array_equal(assembler.resolve().position, batch.position)
