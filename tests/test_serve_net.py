"""Networked sharded serving: wire contract, routing, lifecycle, drain.

The front end's contract mirrors the engine's: putting HTTP and a shard
supervisor in front of ``estimate()`` changes nothing observable except
wall-clock. Positions round-trip float64 exactly (bit-identical to the
in-process answer), failures map to a fixed ``(status, kind)`` taxonomy,
shard routing is a stable digest (pinned here against accidental
re-keying), and a graceful drain answers every accepted request before
the process exits. Thread-mode workers keep most tests in-process and
fast; one process-mode test covers the spawn + shared-memory + metrics
merge path end-to-end.
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.pipeline import estimate
from repro.serve import ServeConfig
from repro.serve.bench import build_requests
from repro.serve.net import (
    BadRequestError,
    NetServeConfig,
    ServerHandle,
    WireRequest,
    WireResponse,
    WorkerConfig,
    parse_locate_body,
    shard_for,
    worker_main,
)


def _scan(seed=0, reads=64):
    return build_requests(1, reads, seed=seed)[0]


def _lion_body(seed=0, reads=64, **extra):
    scan = _scan(seed, reads)
    body = {
        "estimator": "lion",
        "request": {
            "positions": scan.positions.tolist(),
            "phases_rad": scan.phases_rad.tolist(),
        },
    }
    body.update(extra)
    return json.dumps(body).encode()


def _hologram_body(seed=0, reads=200, grid=0.01, **extra):
    scan = _scan(seed, reads)
    body = {
        "estimator": "hologram",
        "config": {"grid_size_m": grid},
        "request": {
            "positions": scan.positions.tolist(),
            "phases_rad": scan.phases_rad.tolist(),
            "bounds": [[-0.4, 0.4], [0.5, 1.3]],
        },
    }
    body.update(extra)
    return json.dumps(body).encode()


def _post(port, body, method="POST", path="/v1/locate", headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


def _get(port, path):
    status, _, raw = _post(port, None, method="GET", path=path)
    return status, json.loads(raw) if raw.startswith(b"{") else raw


def _thread_config(**overrides):
    defaults = dict(
        port=0,
        shards=2,
        worker_mode="thread",
        engine=ServeConfig(max_wait_s=0.001),
    )
    defaults.update(overrides)
    return NetServeConfig(**defaults)


class TestParseLocateBody:
    def test_full_body_parses(self):
        call = parse_locate_body(_lion_body(deadline_ms=250, include_residuals=True))
        assert call.estimator == "lion"
        assert call.config is None
        assert call.arrays["positions"].shape[1] == 2
        assert call.arrays["phases_rad"].dtype == np.float64
        assert call.deadline_s == pytest.approx(0.25)
        assert call.include_residuals is True

    def test_bounds_become_float_tuples(self):
        call = parse_locate_body(_hologram_body())
        assert call.scalars["bounds"] == ((-0.4, 0.4), (0.5, 1.3))

    def test_max_deadline_clamps(self):
        call = parse_locate_body(_lion_body(deadline_ms=60_000), max_deadline_s=2.0)
        assert call.deadline_s == 2.0
        call = parse_locate_body(_lion_body(), max_deadline_s=2.0)
        assert call.deadline_s == 2.0

    @pytest.mark.parametrize(
        "raw",
        [
            b"not json",
            b"[1, 2]",
            b'{"request": {"positions": []}}',
            b'{"estimator": "", "request": {}}',
            b'{"estimator": "lion", "config": 7, "request": {}}',
            b'{"estimator": "lion", "request": []}',
            b'{"estimator": "lion", "request": {"positions": [], "beams": 3}}',
            b'{"estimator": "lion", "request": {"positions": [["x", 1]]}}',
            b'{"estimator": "lion", "request": {"bounds": 4}}',
        ],
    )
    def test_malformed_bodies_rejected(self, raw):
        with pytest.raises(BadRequestError):
            parse_locate_body(raw)

    @pytest.mark.parametrize("deadline", ["soon", True, 0, -5])
    def test_bad_deadline_rejected(self, deadline):
        body = json.loads(_lion_body())
        body["deadline_ms"] = deadline
        with pytest.raises(BadRequestError):
            parse_locate_body(json.dumps(body).encode())

    def test_bad_include_residuals_rejected(self):
        with pytest.raises(BadRequestError):
            parse_locate_body(_lion_body(include_residuals="yes"))


class TestShardRouting:
    def test_pinned_digest_values(self):
        # Routing is part of the operational contract (which worker owns
        # which traffic); these literals fail if the digest is re-keyed.
        assert [shard_for("lion", "aaaa", s) for s in (1, 2, 4, 8, 16)] == [0, 1, 3, 3, 11]
        assert [shard_for("hologram", "aaaa", s) for s in (2, 4, 8)] == [0, 2, 2]
        assert [shard_for("lion", "bbbb", s) for s in (2, 4, 8)] == [0, 0, 0]

    def test_deterministic_and_in_range(self):
        for shards in (1, 3, 7):
            for salt in range(32):
                shard = shard_for("lion", f"cfg{salt}", shards)
                assert 0 <= shard < shards
                assert shard == shard_for("lion", f"cfg{salt}", shards)

    def test_estimator_is_part_of_the_key(self):
        spread = {shard_for(name, "samehash", 8) for name in ("lion", "hologram", "angle")}
        assert len(spread) > 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for("lion", "aaaa", 0)


class TestWorkerRoundtrip:
    def test_worker_main_in_thread_serves_and_drains(self):
        import multiprocessing

        parent, child = multiprocessing.Pipe()
        config = WorkerConfig(shard_index=3, engine=ServeConfig(max_wait_s=0.001))
        thread = threading.Thread(target=worker_main, args=(child, config), daemon=True)
        thread.start()
        assert parent.recv() == ("ready", 3)

        scan = _scan(seed=5)
        parent.send(
            WireRequest(
                req_id=42,
                name="lion",
                config=None,
                specs={},
                inline={"positions": scan.positions, "phases_rad": scan.phases_rad},
                scalars={},
                deadline_epoch=None,
                include_residuals=True,
            )
        )
        response = parent.recv()
        assert isinstance(response, WireResponse)
        assert response.req_id == 42 and response.ok
        expected = estimate("lion", scan)
        assert np.array_equal(response.payload["position"], expected.position)
        assert response.payload["config_hash"] == expected.config_hash
        assert np.array_equal(response.payload["residuals"], expected.residuals)
        assert "raw" not in response.payload

        parent.send(("stats", 7))
        kind, mid, stats = parent.recv()
        assert (kind, mid) == ("stats_res", 7) and stats["completed"] == 1

        parent.send(("drain",))
        kind, stats = parent.recv()
        assert kind == "drained"
        assert stats["shard"] == 3 and stats["drained_clean"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_worker_reports_failure_payloads(self):
        import multiprocessing

        parent, child = multiprocessing.Pipe()
        config = WorkerConfig(shard_index=0, engine=ServeConfig(max_wait_s=0.001))
        thread = threading.Thread(target=worker_main, args=(child, config), daemon=True)
        thread.start()
        assert parent.recv() == ("ready", 0)
        # Hologram without bounds fails inside the estimator: the worker
        # must answer with a structured error, never go silent.
        scan = _scan(seed=6)
        parent.send(
            WireRequest(
                req_id=1,
                name="hologram",
                config=None,
                specs={},
                inline={"positions": scan.positions, "phases_rad": scan.phases_rad},
                scalars={},
                deadline_epoch=None,
                include_residuals=False,
            )
        )
        response = parent.recv()
        assert not response.ok
        assert response.payload["kind"] == "estimation"
        assert response.payload["exc_type"]
        parent.send(("drain",))
        assert parent.recv()[0] == "drained"
        thread.join(timeout=10)


class TestHttpThreadMode:
    @pytest.fixture(scope="class")
    def server(self):
        with ServerHandle(_thread_config()) as handle:
            yield handle

    def test_health_and_ready(self, server):
        assert _get(server.port, "/healthz") == (200, {"status": "ok"})
        status, payload = _get(server.port, "/readyz")
        assert status == 200 and payload["shards"] == 2

    def test_locate_bit_identical_to_in_process(self, server):
        scan = _scan(seed=11)
        status, _, raw = _post(server.port, _lion_body(seed=11, include_residuals=True))
        assert status == 200
        payload = json.loads(raw)
        expected = estimate("lion", scan)
        assert payload["position"] == expected.position.tolist()
        assert payload["config_hash"] == expected.config_hash
        assert payload["residuals"] == np.asarray(expected.residuals).tolist()
        assert payload["reference_distance_m"] == expected.reference_distance_m
        assert payload["shard"] == shard_for("lion", expected.config_hash, 2)
        assert payload["server_ms"] >= 0

    def test_unknown_estimator_is_400(self, server):
        body = json.loads(_lion_body())
        body["estimator"] = "nope"
        status, _, raw = _post(server.port, json.dumps(body).encode())
        assert status == 400
        assert json.loads(raw)["error"]["kind"] == "bad_request"

    def test_estimation_failure_is_422(self, server):
        body = json.loads(_hologram_body())
        del body["request"]["bounds"]
        status, _, raw = _post(server.port, json.dumps(body).encode())
        assert status == 422
        error = json.loads(raw)["error"]
        assert error["kind"] == "estimation_failed" and error["exc_type"]

    def test_unknown_route_and_method(self, server):
        assert _post(server.port, None, method="GET", path="/nope")[0] == 404
        assert _post(server.port, None, method="DELETE", path="/healthz")[0] == 405

    def test_oversized_body_is_413(self, server):
        # The server rejects from the Content-Length header alone, before
        # (and without) reading the oversized body, so a plain client
        # mid-upload sees a reset; a raw socket reads the 413 directly.
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/locate HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 16777216\r\n\r\n"
            )
            assert sock.recv(65536).split(b"\r\n")[0] == b"HTTP/1.1 413 Payload Too Large"

    def test_statz_exposes_per_shard_stats(self, server):
        _post(server.port, _lion_body(seed=12))
        status, payload = _get(server.port, "/statz")
        assert status == 200
        assert payload["worker_mode"] == "thread" and payload["draining"] is False
        assert [entry["shard"] for entry in payload["per_shard"]] == [0, 1]
        assert sum(entry["submitted"] for entry in payload["per_shard"]) >= 1

    def test_deadline_already_expired_is_504(self, server):
        status, _, raw = _post(server.port, _lion_body(seed=13, deadline_ms=0.01))
        assert status == 504
        assert json.loads(raw)["error"]["kind"] == "deadline_exceeded"


class TestBackpressure:
    def test_inflight_cap_returns_429_with_retry_after(self):
        config = _thread_config(
            shards=1, max_inflight_per_shard=1, retry_after_s=0.25
        )
        with ServerHandle(config) as handle:
            # Fire 6 expensive solves at once against a cap of 1: the
            # first occupies the shard for ~300 ms while the rest arrive
            # within milliseconds, so overlap — and shedding — is
            # guaranteed without racing sequential clients.
            results = []
            lock = threading.Lock()

            def fire(seed):
                outcome = _post(handle.port, _hologram_body(seed=seed, reads=300))
                with lock:
                    results.append(outcome)

            threads = [
                threading.Thread(target=fire, args=(seed,), daemon=True)
                for seed in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            statuses = sorted(status for status, _, _ in results)
            assert statuses.count(200) >= 1
            assert statuses.count(429) >= 1
            _, headers, raw = next(entry for entry in results if entry[0] == 429)
            # Retry-After is integer seconds by spec, and never 0 (which
            # clients read as "immediately").
            assert headers["Retry-After"] == "1"
            body = json.loads(raw)
            assert body["error"]["kind"] == "queue_full"
            assert body["retry_after_s"] == 0.25


class TestGracefulDrain:
    def test_readyz_flips_before_listener_closes(self):
        with ServerHandle(_thread_config(shards=1, drain_grace_s=1.0)) as handle:
            assert _get(handle.port, "/readyz")[0] == 200
            handle.request_shutdown()
            # During the grace window the listener still accepts
            # connections (load balancers need the 503 answer to stop
            # routing here) but readiness is already withdrawn.
            deadline = time.monotonic() + 0.9
            saw_draining = False
            while time.monotonic() < deadline:
                status, payload = _get(handle.port, "/readyz")
                if status == 503:
                    assert payload["status"] == "draining"
                    saw_draining = True
                    break
            assert saw_draining
            stats = handle.stop()
            assert all(entry["drained_clean"] for entry in stats)

    def test_drain_mid_burst_loses_no_accepted_request(self):
        config = _thread_config(shards=2, engine=ServeConfig(max_wait_s=0.001, cache_entries=0))
        with ServerHandle(config) as handle:
            port = handle.port
            statuses = []
            lock = threading.Lock()

            def client(worker):
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
                for index in range(50):
                    try:
                        conn.request(
                            "POST", "/v1/locate", body=_lion_body(seed=100 * worker + index)
                        )
                        response = conn.getresponse()
                        raw = response.read()
                    except OSError:
                        return  # connection refused/closed after drain: fine
                    with lock:
                        statuses.append(response.status)
                    if response.status == 200:
                        # Accepted answers must be complete, valid reports.
                        assert len(json.loads(raw)["position"]) == 2
                    else:
                        # The only legal rejection mid-drain is a clean 503.
                        assert response.status == 503
                        return
                    if response.getheader("Connection") == "close":
                        conn.close()
                        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

            workers = [
                threading.Thread(target=client, args=(i,), daemon=True) for i in range(4)
            ]
            for worker in workers:
                worker.start()
            time.sleep(0.3)  # let the burst get going before pulling the plug
            stats = handle.stop()
            for worker in workers:
                worker.join(timeout=60)
            completed = sum(entry["completed"] for entry in stats)
            ok = sum(1 for status in statuses if status == 200)
            assert ok > 0
            # Every accepted request got its answer: the engines completed
            # exactly the requests whose 200 reached a client, and every
            # shard drained clean (no batcher thread abandoned mid-batch).
            assert completed == ok
            assert all(entry["drained_clean"] for entry in stats)

    def test_stop_is_idempotent(self):
        handle = ServerHandle(_thread_config(shards=1))
        handle.start()
        first = handle.stop()
        assert first is not None
        assert handle.stop() == first


class TestProcessMode:
    def test_process_workers_e2e_with_per_shard_metrics(self):
        config = NetServeConfig(
            port=0,
            shards=2,
            worker_mode="process",
            engine=ServeConfig(max_wait_s=0.001),
            # Force the shared-memory request path for one of the posts.
            shm_threshold_bytes=1024,
        )
        with ServerHandle(config) as handle:
            scan = _scan(seed=21, reads=400)
            status, _, raw = _post(handle.port, _lion_body(seed=21, reads=400))
            assert status == 200
            payload = json.loads(raw)
            expected = estimate("lion", scan)
            assert payload["position"] == expected.position.tolist()
            assert payload["config_hash"] == expected.config_hash

            status, _, raw = _post(handle.port, None, method="GET", path="/metrics")
            assert status == 200
            text = raw.decode()
            # Worker metrics merge into one exporter, stamped per shard.
            assert 'shard="0"' in text or 'shard="1"' in text
            assert "lion_serve_net_requests_total" in text
            assert "lion_serve_net_shard_requests_total" in text
            stats = handle.stop()
            assert [entry["shard"] for entry in stats] == [0, 1]
            assert all(entry["drained_clean"] for entry in stats)


def _span_names_and_pids(trace_dict):
    names, pids = set(), set()

    def walk(node):
        names.add(node["name"])
        if node.get("pid"):
            pids.add(node["pid"])
        for child in node.get("children", []):
            walk(child)

    walk(trace_dict)
    return names, pids


class TestRequestTracing:
    def test_stitched_trace_timeseries_and_slo_process_mode(self):
        config = NetServeConfig(
            port=0,
            shards=2,
            worker_mode="process",
            # Fused singletons so even one request takes the batch path.
            engine=ServeConfig(max_wait_s=0.001, fuse_singletons=True),
            recorder_slow_ms=0.0,  # record every request
            history_cadence_s=0.05,
        )
        with ServerHandle(config) as handle:
            status, headers, raw = _post(
                handle.port,
                _lion_body(seed=3),
                headers={"X-Request-Id": "itest-trace-1"},
            )
            assert status == 200
            payload = json.loads(raw)
            # The caller-supplied id is echoed in header and body.
            assert headers["X-Request-Id"] == "itest-trace-1"
            assert payload["request_id"] == "itest-trace-1"
            for seed in range(4, 10):  # burst for the timeseries
                status, _, _ = _post(handle.port, _lion_body(seed=seed))
                assert status == 200

            # One stitched trace: ingress and shard-route spans from the
            # server process, batch and solve spans from the worker.
            status, recorder = _get(handle.port, "/debug/traces")
            assert status == 200
            ours = [
                entry
                for entry in recorder["traces"]
                if entry["request_id"] == "itest-trace-1"
            ]
            assert len(ours) == 1
            assert ours[0]["status"] == 200 and ours[0]["route"] == "/v1/locate"
            names, pids = _span_names_and_pids(ours[0]["trace"])
            assert {"serve.net.ingress", "serve.net.route", "serve.batch", "solve"} <= names
            assert len(pids) >= 2  # spans crossed the process boundary
            assert recorder["stats"]["recorded"] >= 7

            time.sleep(0.25)  # let the sampler tick past the burst
            status, series = _get(handle.port, "/debug/timeseries?window=60")
            assert status == 200
            assert series["samples"]
            assert sum(row["req_s"] for row in series["samples"]) > 0

            status, slo = _get(handle.port, "/slo")
            assert status == 200
            assert slo["route"] == "/v1/locate"
            assert slo["state"] in ("ok", "burning")
            by_kind = {entry["kind"]: entry for entry in slo["objectives"]}
            # No request errored, so the error budget is intact.
            assert by_kind["error_rate"]["state"] == "ok"
            assert by_kind["error_rate"]["budget_remaining"] == 1.0
            assert 0.0 <= by_kind["latency"]["budget_remaining"] <= 1.0

    def test_tracing_disabled_records_nothing(self):
        # Thread-mode servers share this process's tracing flag; a
        # previous tracing-enabled server leaves it on, so clear it.
        from repro.obs import disable_tracing, reset_request_spans, reset_tracing

        disable_tracing()
        reset_tracing()
        reset_request_spans()
        config = _thread_config(shards=1, tracing=False, recorder_slow_ms=0.0)
        with ServerHandle(config) as handle:
            status, headers, raw = _post(
                handle.port, _lion_body(seed=5), headers={"X-Request-Id": "no-trace"}
            )
            assert status == 200
            # Ids still flow with tracing off...
            assert headers["X-Request-Id"] == "no-trace"
            assert json.loads(raw)["request_id"] == "no-trace"
            # ...but the flight recorder stays empty.
            status, recorder = _get(handle.port, "/debug/traces")
            assert status == 200
            assert recorder["traces"] == []
            assert recorder["stats"]["considered"] == 0


class TestShardRestart:
    def test_metrics_merge_survives_worker_restart(self):
        config = NetServeConfig(
            port=0,
            shards=2,
            worker_mode="process",
            engine=ServeConfig(max_wait_s=0.001),
        )
        with ServerHandle(config) as handle:
            status, _, raw = _post(handle.port, _lion_body(seed=11))
            assert status == 200
            shard = int(json.loads(raw)["shard"])

            handle.server.supervisor.restart_shard(shard)

            # The replacement worker serves the same traffic...
            status, _, raw = _post(handle.port, _lion_body(seed=12))
            assert status == 200
            assert int(json.loads(raw)["shard"]) == shard

            # ...and the merged exporter still carries its shard label.
            status, _, raw = _post(handle.port, None, method="GET", path="/metrics")
            assert status == 200
            text = raw.decode()
            assert f'shard="{shard}"' in text
            assert "lion_serve_net_shard_requests_total" in text

            status, statz = _get(handle.port, "/statz")
            assert status == 200
            assert statz["shards"] == 2
            assert sorted(s["shard"] for s in statz["per_shard"]) == [0, 1]
            assert statz["draining"] is False

            stats = handle.stop()
            assert [entry["shard"] for entry in stats] == [0, 1]
            assert all(entry["drained_clean"] for entry in stats)

    def test_restart_shard_rejects_bad_index(self):
        config = _thread_config(shards=1)
        with ServerHandle(config) as handle:
            with pytest.raises(RuntimeError):
                handle.server.supervisor.restart_shard(5)
