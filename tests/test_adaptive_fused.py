"""Fused adaptive sweep: bitwise equivalence, pairing cache, masked kernel.

The fused engine (:mod:`repro.core.sweep`) must be indistinguishable from
the legacy per-cell dispatch down to the last bit — same positions, same
solver trajectories, same rejection reasons in the same order — on every
executor backend and in both 2-D and 3-D. These tests pin that contract.
"""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import (
    ParameterGrid,
    _adaptive_localize_impl,
    _fused_cells,
    _solve_cell,
    CellRejection,
    ConfigOutcome,
)
from repro.core.localizer import (
    DegenerateGeometryError,
    LionLocalizer,
    PreprocessConfig,
    TooFewReadsError,
)
from repro.core.solvers import (
    solve_weighted_least_squares,
    solve_weighted_least_squares_masked_batch,
)
from repro.core.sweep import clear_pair_cache, pair_cache_info
from repro.core.system import LinearSystem
from repro.parallel import SharedArrayBundle, attach_shared_arrays
from repro.trajectory.raster import RasterScan


def _line_scan(target, seed=0, n=400, half=1.0, noise_std=0.08):
    rng = np.random.default_rng(seed)
    x = np.linspace(-half, half, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.4
    phases = phases + rng.normal(0.0, noise_std, size=n)
    return positions, np.mod(phases, TWO_PI), None, None


def _raster_scan(target, seed=0, noise_std=0.05):
    scan_path = RasterScan(-0.5, 0.5, row_start=-0.4, row_count=5, row_spacing=0.1)
    samples = scan_path.sample(speed_mps=0.1, read_rate_hz=30.0)
    rng = np.random.default_rng(seed)
    distances = np.linalg.norm(samples.positions - target[np.newaxis, :], axis=1)
    phases = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances + 0.5
    phases = phases + rng.normal(0.0, noise_std, size=distances.size)
    return (
        samples.positions,
        np.mod(phases, TWO_PI),
        samples.segment_ids,
        scan_path.transit_mask(samples),
    )


def _scenario(name):
    if name == "line2d":
        positions, phases, segments, mask = _line_scan(np.array([0.05, 0.85]), seed=3)
        localizer = LionLocalizer(dim=2)
    else:
        positions, phases, segments, mask = _raster_scan(np.array([0.1, 0.8, 0.15]))
        localizer = LionLocalizer(dim=3, preprocess=PreprocessConfig(smoothing_window=5))
    return localizer, positions, phases, segments, mask


def _assert_results_identical(fused, legacy):
    assert np.array_equal(fused.position, legacy.position)
    assert fused.reference_distance_m == legacy.reference_distance_m
    assert fused.selected == legacy.selected
    assert len(fused.outcomes) == len(legacy.outcomes)
    for ours, theirs in zip(fused.outcomes, legacy.outcomes):
        assert ours.range_m == theirs.range_m
        assert ours.interval_m == theirs.interval_m
        assert np.array_equal(ours.result.position, theirs.result.position)
        mine, ref = ours.result.solution, theirs.result.solution
        assert np.array_equal(mine.estimate, ref.estimate)
        assert np.array_equal(mine.residuals, ref.residuals)
        assert np.array_equal(mine.normalized_residuals, ref.normalized_residuals)
        assert np.array_equal(mine.weights, ref.weights)
        assert mine.iterations == ref.iterations
        assert mine.converged == ref.converged


class TestFusedEquivalence:
    @pytest.mark.parametrize("scenario", ("line2d", "raster3d"))
    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    def test_bitwise_identical_to_per_cell(self, scenario, backend):
        localizer, positions, phases, segments, mask = _scenario(scenario)
        fused = _adaptive_localize_impl(
            localizer,
            positions,
            phases,
            segment_ids=segments,
            exclude_mask=mask,
            fused=True,
        )
        legacy = _adaptive_localize_impl(
            localizer,
            positions,
            phases,
            segment_ids=segments,
            exclude_mask=mask,
            executor=backend,
            jobs=2,
            fused=False,
        )
        _assert_results_identical(fused, legacy)

    def test_rejection_reasons_and_order_match(self):
        # The 5 mm window keeps < 3 reads (samples sit ~5 mm apart) -> a
        # too_few_reads rejection for that row, interleaved with good cells.
        localizer, positions, phases, _, _ = _scenario("line2d")
        grid = ParameterGrid(ranges_m=(0.005, 0.8), intervals_m=(0.004, 0.15))
        profile = localizer.preprocess_phase(phases)
        offsets = np.abs(positions[:, grid.axis] - grid.center)
        ranges = np.asarray(grid.ranges_m)
        excludes = offsets[np.newaxis, :] > ranges[:, np.newaxis] / 2.0
        cells = [
            (float(range_m), float(interval_m), row)
            for row, range_m in enumerate(grid.ranges_m)
            for interval_m in grid.intervals_m
            if interval_m < range_m
        ]
        fused = _fused_cells(localizer, positions, profile, None, excludes, cells)
        legacy = [
            _solve_cell(localizer, positions, profile, None, excludes, cell)
            for cell in cells
        ]
        assert len(fused) == len(legacy)
        rejected = 0
        for ours, theirs in zip(fused, legacy):
            assert type(ours) is type(theirs)
            if isinstance(ours, CellRejection):
                assert ours.reason == theirs.reason
                rejected += 1
            else:
                assert np.array_equal(ours.result.position, theirs.result.position)
        assert rejected > 0


class TestPairCache:
    def test_cache_hits_across_trials_on_one_trajectory(self):
        clear_pair_cache()
        localizer, positions, _, segments, mask = _scenario("line2d")
        for seed in (11, 12):
            _, phases, _, _ = _line_scan(np.array([0.05, 0.85]), seed=seed)
            _adaptive_localize_impl(
                localizer, positions, phases, segment_ids=segments, exclude_mask=mask
            )
        info = pair_cache_info()
        # Second trial re-noises the same trajectory: every cell hits.
        assert info["misses"] > 0
        assert info["hits"] >= info["misses"]
        clear_pair_cache()
        info = pair_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0, "max_size": info["max_size"]}


def _masked_stack(shapes, dim=2, seed=0, noise=0.02):
    rng = np.random.default_rng(seed)
    systems = []
    for rows in shapes:
        matrix = rng.normal(size=(rows, dim + 1))
        truth = rng.normal(size=dim + 1)
        rhs = matrix @ truth + rng.normal(0.0, noise, size=rows)
        systems.append(LinearSystem(matrix=matrix, rhs=rhs, dim=dim))
    max_rows = max(shapes)
    matrices = np.zeros((len(shapes), max_rows, dim + 1))
    stacked_rhs = np.zeros((len(shapes), max_rows))
    mask = np.zeros((len(shapes), max_rows), dtype=bool)
    for index, system in enumerate(systems):
        rows = system.equation_count
        matrices[index, :rows] = system.matrix
        stacked_rhs[index, :rows] = system.rhs
        mask[index, :rows] = True
    return systems, matrices, stacked_rhs, mask


class TestMaskedBatchKernel:
    def test_ragged_members_match_scalar_bitwise(self):
        systems, matrices, rhs, mask = _masked_stack((40, 17, 33, 5, 40), seed=4)
        solutions = solve_weighted_least_squares_masked_batch(matrices, rhs, mask)
        for system, solution in zip(systems, solutions):
            reference = solve_weighted_least_squares(system)
            assert np.array_equal(solution.estimate, reference.estimate)
            assert np.array_equal(solution.residuals, reference.residuals)
            assert np.array_equal(solution.weights, reference.weights)
            assert solution.iterations == reference.iterations
            assert solution.converged == reference.converged

    def test_non_prefix_mask_compacted(self):
        systems, matrices, rhs, mask = _masked_stack((30, 30), seed=5)
        # Scatter member 0's rows: drop rows 3 and 17 from the middle.
        scattered = mask.copy()
        scattered[0, [3, 17]] = False
        solutions = solve_weighted_least_squares_masked_batch(matrices, rhs, scattered)
        keep = np.flatnonzero(scattered[0])
        compact = LinearSystem(
            matrix=systems[0].matrix[keep], rhs=systems[0].rhs[keep], dim=2
        )
        reference = solve_weighted_least_squares(compact)
        assert np.array_equal(solutions[0].estimate, reference.estimate)

    def test_rank_deficient_member_ejected_to_scalar(self):
        systems, matrices, rhs, mask = _masked_stack((25, 25, 25), seed=6)
        # Make member 1 rank deficient: second column copies the first.
        matrices[1, :, 1] = matrices[1, :, 0]
        solutions = solve_weighted_least_squares_masked_batch(matrices, rhs, mask)
        degenerate = LinearSystem(matrix=matrices[1, :25], rhs=rhs[1, :25], dim=2)
        reference = solve_weighted_least_squares(degenerate)
        assert np.array_equal(solutions[1].estimate, reference.estimate)
        for index in (0, 2):
            healthy = solve_weighted_least_squares(systems[index])
            assert np.array_equal(solutions[index].estimate, healthy.estimate)

    def test_empty_member_rejected(self):
        _, matrices, rhs, mask = _masked_stack((10, 10), seed=7)
        mask[1, :] = False
        with pytest.raises(ValueError, match="empty"):
            solve_weighted_least_squares_masked_batch(matrices, rhs, mask)

    def test_shape_validation(self):
        _, matrices, rhs, mask = _masked_stack((10,), seed=8)
        with pytest.raises(ValueError):
            solve_weighted_least_squares_masked_batch(matrices, rhs, mask[:, :-1])
        with pytest.raises(ValueError):
            solve_weighted_least_squares_masked_batch(matrices, rhs[:, :-1], mask)


class TestSharedArrays:
    def test_roundtrip_and_none_passthrough(self):
        rng = np.random.default_rng(9)
        points = rng.normal(size=(50, 2))
        excludes = rng.random(size=(3, 50)) > 0.5
        with SharedArrayBundle(points=points, segments=None, excludes=excludes) as bundle:
            assert bundle.specs["segments"] is None
            attached = attach_shared_arrays(bundle.specs)
            assert attached["segments"] is None
            assert np.array_equal(attached["points"], points)
            assert np.array_equal(attached["excludes"], excludes)
            with pytest.raises(ValueError):
                attached["points"][0, 0] = 1.0  # read-only view


class TestTypedExceptions:
    def test_too_few_reads(self):
        localizer = LionLocalizer(dim=2)
        with pytest.raises(TooFewReadsError):
            localizer.locate(np.zeros((2, 2)), np.zeros(2))

    def test_too_few_included_reads(self):
        localizer = LionLocalizer(dim=2)
        positions = np.stack([np.linspace(-0.5, 0.5, 10), np.zeros(10)], axis=1)
        mask = np.ones(10, dtype=bool)
        mask[:2] = False
        with pytest.raises(TooFewReadsError):
            localizer.locate(positions, np.zeros(10), exclude_mask=mask)

    def test_degenerate_geometry(self):
        localizer = LionLocalizer(dim=3, preprocess=PreprocessConfig(smoothing_window=1))
        positions = np.zeros((20, 3))  # zero spatial extent: unobservable
        with pytest.raises(DegenerateGeometryError):
            localizer.locate(positions, np.zeros(20))

    def test_both_are_value_errors(self):
        assert issubclass(TooFewReadsError, ValueError)
        assert issubclass(DegenerateGeometryError, ValueError)
