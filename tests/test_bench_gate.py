"""Tests for the benchmark gate (tools/check_bench_regression.py).

The gate guards every committed performance floor in CI, so its own
semantics are pinned here: metric-spec parsing (``path[:down][:min=V]
[:max=V]``), baseline drift in both directions (higher-is-better floors
vs lower-is-better ceilings), absolute bounds without a baseline, and
the original single-metric invocations CI already uses staying valid.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_bench_regression.py"

spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL)
gate = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_bench_regression", gate)
spec.loader.exec_module(gate)


class TestParseMetricSpec:
    def test_bare_path(self):
        parsed = gate.parse_metric_spec("cells_per_sec.fused")
        assert parsed == gate.MetricSpec(path="cells_per_sec.fused")

    def test_all_qualifiers(self):
        parsed = gate.parse_metric_spec("open_loop.4.p99_ms:down:min=1:max=900")
        assert parsed.path == "open_loop.4.p99_ms"
        assert parsed.down is True
        assert parsed.minimum == 1.0
        assert parsed.maximum == 900.0

    @pytest.mark.parametrize("text", ["", ":down", "a.b:up", "a.b:min", "a.b:min=x"])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            gate.parse_metric_spec(text)


class TestResolveMetric:
    def test_walks_nested_dicts(self):
        payload = {"closed_loop": {"4": {"requests_per_sec": 150}}}
        assert gate.resolve_metric(payload, "closed_loop.4.requests_per_sec") == 150.0

    def test_missing_path_raises(self):
        with pytest.raises(KeyError):
            gate.resolve_metric({"a": {}}, "a.b")

    def test_non_numeric_raises(self):
        with pytest.raises(TypeError):
            gate.resolve_metric({"a": True}, "a")
        with pytest.raises(TypeError):
            gate.resolve_metric({"a": "fast"}, "a")


class TestChecks:
    def test_up_direction_floor(self):
        ok, _ = gate.check({"m": 85.0}, {"m": 100.0}, "m", tolerance=0.20)
        assert ok
        ok, _ = gate.check({"m": 79.0}, {"m": 100.0}, "m", tolerance=0.20)
        assert not ok

    def test_down_direction_ceiling(self):
        # Lower-is-better: shrinking is never a regression, growth
        # beyond tolerance is.
        ok, _ = gate.check({"m": 10.0}, {"m": 100.0}, "m", tolerance=0.20, down=True)
        assert ok
        ok, _ = gate.check({"m": 119.0}, {"m": 100.0}, "m", tolerance=0.20, down=True)
        assert ok
        ok, line = gate.check({"m": 121.0}, {"m": 100.0}, "m", tolerance=0.20, down=True)
        assert not ok
        assert "lower-is-better" in line

    def test_absolute_bounds(self):
        assert gate.check_min({"m": 2.51}, "m", 2.5)[0]
        assert not gate.check_min({"m": 2.49}, "m", 2.5)[0]
        assert gate.check_max({"m": 0.9}, "m", 0.98)[0]
        assert not gate.check_max({"m": 0.99}, "m", 0.98)[0]


class TestMain:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(
            json.dumps(
                {
                    "cells_per_sec": {"fused": 90.0},
                    "speedup_4_vs_1": 3.4,
                    "p99_ms": 140.0,
                }
            )
        )
        baseline.write_text(
            json.dumps(
                {
                    "cells_per_sec": {"fused": 100.0},
                    "speedup_4_vs_1": 4.0,
                    "p99_ms": 100.0,
                }
            )
        )
        return str(current), str(baseline)

    def test_legacy_single_metric_invocation(self, artifacts):
        current, baseline = artifacts
        argv = ["--current", current, "--baseline", baseline, "--tolerance", "0.20"]
        assert gate.main(argv) == 0
        assert gate.main(argv[:-1] + ["0.05"]) == 1

    def test_legacy_min_only_invocation(self, artifacts):
        current, _ = artifacts
        base = ["--current", current, "--metric", "speedup_4_vs_1"]
        assert gate.main(base + ["--min", "3.0"]) == 0
        assert gate.main(base + ["--min", "3.5"]) == 1

    def test_multi_metric_mixed_directions(self, artifacts):
        current, baseline = artifacts
        argv = [
            "--current", current, "--baseline", baseline, "--tolerance", "0.20",
            "--metric", "speedup_4_vs_1:min=2.5",
            "--metric", "cells_per_sec.fused",
            "--metric", "p99_ms:down:max=150",
        ]
        assert gate.main(argv) == 1  # p99 grew 40% past the +20% ceiling
        argv[5] = "0.50"
        assert gate.main(argv) == 0

    def test_down_metric_skips_bare_min(self, artifacts):
        # A bare --min is an up-direction floor; applying it to a
        # lower-is-better metric would be nonsense, so it is skipped.
        current, _ = artifacts
        argv = [
            "--current", current, "--min", "2.5",
            "--metric", "speedup_4_vs_1",
            "--metric", "p99_ms:down:max=150",
        ]
        assert gate.main(argv) == 0

    def test_requires_some_gate(self, artifacts, capsys):
        current, _ = artifacts
        with pytest.raises(SystemExit):
            gate.main(["--current", current, "--metric", "speedup_4_vs_1"])
        capsys.readouterr()

    def test_rejects_bad_tolerance(self, artifacts, capsys):
        current, baseline = artifacts
        with pytest.raises(SystemExit):
            gate.main(["--current", current, "--baseline", baseline, "--tolerance", "1.5"])
        capsys.readouterr()
