"""Cross-estimator golden regression test.

One fixed-seed scene per request shape is replayed through *every*
registered estimator, and each estimate is compared against a stored
reference position. The point is drift detection: a refactor of a solver,
adapter, or preprocessing step that changes any method's numbers — even
slightly — fails here, pointing at the exact method that moved.

Tolerances are per-method: the linear-algebra and grid-search paths are
deterministic (tight ``atol``); the ``scipy.optimize`` paths get a
looser bound to absorb library/platform variation.
"""

import numpy as np
import pytest

from repro import pipeline
from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI

K = 2.0 * TWO_PI / DEFAULT_WAVELENGTH_M
SEED = 20260805
TRUTH = np.array([0.12, 0.85])

#: estimator -> (reference position, atol). Regenerate only deliberately
#: (see the module docstring of this test): run the estimator on the
#: scene below and paste the new numbers with the reason in the commit.
GOLDEN = {
    "lion": (np.array([0.11984546316931004, 0.8496434044269205]), 1e-7),
    "lion-online": (np.array([0.11976159011961718, 0.8476843119915746]), 1e-7),
    "lion-adaptive": (np.array([0.11969063126111201, 0.8487164282782634]), 1e-7),
    "lion-multiref": (np.array([0.12169270705171202, 0.8529102283000236]), 1e-7),
    "lion-multiantenna": (np.array([-0.1, 0.8]), 1e-9),
    "hyperbola": (np.array([0.11996399156554577, 0.8492850623629289]), 1e-5),
    "parabola": (np.array([0.11868272097314138, 0.9295428238549107]), 1e-7),
    "angle": (np.array([0.7020519832984191, 0.3837946525231259]), 1e-5),
    "hologram": (np.array([0.12, 0.85]), 1e-9),
}


def _scene():
    """All golden requests, drawn from one seeded generator in order."""
    rng = np.random.default_rng(SEED)
    x = np.linspace(-0.5, 0.5, 180)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - TRUTH, axis=1)
    phases = np.mod(K * distances + 0.9 + rng.normal(0.0, 0.02, x.size), TWO_PI)
    runs = np.repeat([0, 1], 90)
    hop = phases.copy()
    hop[runs == 1] = np.mod(hop[runs == 1] + 1.3, TWO_PI)

    angles = np.linspace(0.0, TWO_PI, 200, endpoint=False)
    radius = 0.15
    antenna = 0.8 * np.array([np.cos(0.5), np.sin(0.5)])
    tags = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    angle_phases = np.mod(
        K * np.linalg.norm(tags - antenna, axis=1)
        + 0.3
        + rng.normal(0.0, 0.02, angles.size),
        TWO_PI,
    )

    centers = np.array([[-0.3, 0.0], [0.0, 0.0], [0.3, 0.0]])
    tag_truth = np.array([-0.1, 0.8])
    offsets = np.array([0.5, 1.3, 2.1])
    antenna_phases = np.mod(
        K * np.linalg.norm(centers - tag_truth, axis=1) + offsets, TWO_PI
    )

    bounds = ((TRUTH[0] - 0.1, TRUTH[0] + 0.1), (TRUTH[1] - 0.1, TRUTH[1] + 0.1))
    line = pipeline.EstimationRequest(positions=positions, phases_rad=phases)
    return {
        "lion": (line, {"dim": 2, "interval_m": 0.25}),
        "lion-online": (line, {"dim": 2, "pair_lag": 40}),
        "lion-adaptive": (
            line,
            {"dim": 2, "ranges_m": (0.8, 1.0), "intervals_m": (0.2, 0.25)},
        ),
        "lion-multiref": (
            pipeline.EstimationRequest(
                positions=positions, phases_rad=hop, run_ids=runs
            ),
            {"dim": 2, "interval_m": 0.25},
        ),
        "lion-multiantenna": (
            pipeline.EstimationRequest(
                positions=centers,
                phases_rad=antenna_phases,
                bounds=((-0.2, 0.0), (0.7, 0.9)),
                offset_corrections_rad=offsets - offsets[0],
            ),
            {"grid_size_m": 0.005},
        ),
        "hyperbola": (line, {}),
        "parabola": (line, {}),
        "angle": (
            pipeline.EstimationRequest(
                angles_rad=angles, phases_rad=angle_phases, radius_m=radius
            ),
            {},
        ),
        "hologram": (
            pipeline.EstimationRequest(
                positions=positions[::6],
                phases_rad=phases[::6],
                bounds=bounds,
            ),
            {"grid_size_m": 0.005},
        ),
    }


class TestGolden:
    def test_golden_covers_every_registered_estimator(self):
        assert sorted(GOLDEN) == pipeline.estimator_names()
        assert sorted(_scene()) == pipeline.estimator_names()

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_estimator_matches_golden(self, name):
        request, config = _scene()[name]
        report = pipeline.estimate(name, request, config)
        expected, atol = GOLDEN[name]
        np.testing.assert_allclose(
            report.position, expected, atol=atol,
            err_msg=f"estimator {name!r} drifted from its golden reference",
        )

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_estimator_is_deterministic(self, name):
        request, config = _scene()[name]
        first = pipeline.estimate(name, request, config)
        second = pipeline.estimate(name, request, config)
        np.testing.assert_allclose(first.position, second.position, atol=0.0)
