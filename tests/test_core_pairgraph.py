"""Tests for repro.core.pairgraph — pairing observability diagnostics."""

import numpy as np
import pytest

from repro.core.pairgraph import analyze_pairing, component_runs
from repro.core.pairing import lag_pairs, three_line_pairs
from repro.trajectory.multiline import ThreeLineScan


class TestAnalyzePairing:
    def test_chain_pairing_single_component(self):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        diagnostics = analyze_pairing(positions, lag_pairs(10, 1))
        assert diagnostics.is_single_component
        assert diagnostics.pair_count == 9
        assert diagnostics.unused_reads == ()

    def test_chain_is_all_bridges(self):
        positions = np.stack([np.linspace(0, 1, 8), np.zeros(8)], axis=1)
        diagnostics = analyze_pairing(positions, lag_pairs(8, 1))
        assert diagnostics.bridge_count == 7
        assert diagnostics.edge_connectivity == 1

    def test_overlapping_lags_are_meshed(self):
        positions = np.stack([np.linspace(0, 1, 20), np.zeros(20)], axis=1)
        pairs = lag_pairs(20, 1) + lag_pairs(20, 3)
        diagnostics = analyze_pairing(positions, pairs)
        assert diagnostics.bridge_count < 19
        assert diagnostics.edge_connectivity >= 2

    def test_axis_excitation_flags_unobservable_axis(self):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        diagnostics = analyze_pairing(positions, lag_pairs(10, 2))
        observable = diagnostics.observable_axes()
        assert observable[0]
        assert not observable[1]

    def test_three_line_pairing_excites_all_axes(self):
        scan = ThreeLineScan(-0.5, 0.5, include_transits=False)
        samples = scan.sample(speed_mps=0.1, read_rate_hz=30.0)
        pairs = three_line_pairs(
            samples.positions, samples.segment_ids, 0.25
        )
        diagnostics = analyze_pairing(samples.positions, pairs)
        assert diagnostics.observable_axes().all()
        # Lag pairing splits the reads into parallel chains (one per index
        # residue class), so the graph is legitimately multi-component;
        # the single shared d_r column couples them in the actual system.
        assert diagnostics.component_count > 1
        assert diagnostics.unused_reads == ()

    def test_disconnected_pairing_detected(self):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        pairs = [(0, 1), (1, 2), (5, 6), (6, 7)]
        diagnostics = analyze_pairing(positions, pairs)
        assert diagnostics.component_count == 2
        assert diagnostics.edge_connectivity == 0
        assert 3 in diagnostics.unused_reads

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_pairing(np.zeros((5, 2)), [])
        with pytest.raises(ValueError):
            analyze_pairing(np.zeros((5, 2)), [(0, 9)])


class TestComponentRuns:
    def test_splits_into_runs(self):
        pairs = [(0, 1), (1, 2), (4, 5)]
        runs = component_runs(6, pairs)
        as_sets = sorted(tuple(run) for run in runs)
        assert (0, 1, 2) in as_sets
        assert (4, 5) in as_sets
        assert (3,) in as_sets  # isolated read is its own run

    def test_single_run(self):
        runs = component_runs(4, [(0, 1), (1, 2), (2, 3)])
        assert len(runs) == 1
        assert np.array_equal(runs[0], [0, 1, 2, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            component_runs(3, [])
        with pytest.raises(ValueError):
            component_runs(3, [(0, 7)])
