"""Property-based tests (hypothesis) for the signal-processing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.constants import TWO_PI
from repro.signalproc.smoothing import moving_average
from repro.signalproc.stats import circular_distance, mean_resultant_length
from repro.signalproc.unwrap import unwrap_phase
from repro.signalproc.wrapping import wrap_phase, wrap_to_pi

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

phase_profiles = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)


class TestWrapProperties:
    @given(finite_floats)
    def test_wrap_phase_in_range(self, value):
        wrapped = wrap_phase(value)
        assert 0.0 <= wrapped < TWO_PI

    @given(finite_floats)
    def test_wrap_is_idempotent(self, value):
        once = wrap_phase(value)
        assert wrap_phase(once) == once

    @given(finite_floats)
    def test_wrap_preserves_value_mod_two_pi(self, value):
        wrapped = wrap_phase(value)
        assert abs(np.sin(wrapped) - np.sin(value)) < 1e-6
        assert abs(np.cos(wrapped) - np.cos(value)) < 1e-6

    @given(finite_floats)
    def test_wrap_to_pi_range(self, value):
        wrapped = wrap_to_pi(value)
        assert -np.pi < wrapped <= np.pi


class TestUnwrapProperties:
    @given(phase_profiles)
    def test_unwrap_starts_at_input(self, profile):
        wrapped = wrap_phase(profile)
        unwrapped = unwrap_phase(wrapped)
        assert unwrapped[0] == wrapped[0]

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=150),
            elements=st.floats(min_value=-0.4, max_value=0.4, allow_nan=False),
        )
    )
    def test_unwrap_inverts_wrap_for_slow_profiles(self, steps):
        """For any profile whose true jumps stay below pi, unwrap o wrap == identity
        up to a constant multiple of 2*pi."""
        profile = np.cumsum(steps)
        recovered = unwrap_phase(wrap_phase(profile))
        deltas = recovered - profile
        assert np.allclose(deltas, deltas[0], atol=1e-9)
        assert abs(deltas[0] / TWO_PI - round(deltas[0] / TWO_PI)) < 1e-9

    @given(phase_profiles)
    def test_unwrap_has_no_large_jumps(self, profile):
        unwrapped = unwrap_phase(wrap_phase(profile))
        if unwrapped.size > 1:
            assert np.max(np.abs(np.diff(unwrapped))) <= np.pi + 1e-9


class TestSmoothingProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        st.integers(min_value=1, max_value=15),
    )
    def test_output_within_input_range(self, values, window):
        smoothed = moving_average(values, window)
        assert np.min(smoothed) >= np.min(values) - 1e-9
        assert np.max(smoothed) <= np.max(values) + 1e-9

    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.integers(min_value=5, max_value=50),
        st.integers(min_value=1, max_value=11),
    )
    def test_affine_signals_are_fixed_points(self, intercept, slope, n, window):
        values = intercept + slope * np.arange(n)
        smoothed = moving_average(values, window)
        assert np.allclose(smoothed, values, atol=1e-7 * max(1.0, abs(slope) * n))

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=100),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        st.integers(min_value=1, max_value=9),
    )
    def test_mean_preserved_approximately(self, values, window):
        """Symmetric smoothing cannot shift the mean by more than the
        edge-window contribution."""
        smoothed = moving_average(values, window)
        spread = np.max(values) - np.min(values)
        slack = 1e-9 * max(1.0, float(np.max(np.abs(values))))
        assert abs(np.mean(smoothed) - np.mean(values)) <= spread + slack


class TestCircularStatsProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
        )
    )
    def test_resultant_length_bounded(self, angles):
        r = mean_resultant_length(angles)
        assert -1e-12 <= r <= 1.0 + 1e-12

    @given(
        st.floats(min_value=0, max_value=TWO_PI - 1e-9),
        st.floats(min_value=0, max_value=TWO_PI - 1e-9),
    )
    def test_distance_symmetric_and_bounded(self, a, b):
        d = circular_distance(a, b)
        assert 0.0 <= d <= np.pi + 1e-12
        assert d == pytest.approx(circular_distance(b, a), abs=1e-9)

    @given(st.floats(min_value=0, max_value=TWO_PI - 1e-9))
    def test_distance_to_self_zero(self, a):
        assert circular_distance(a, a) == 0.0
