"""Acceptance: the full fleet loop — drift, detect, recalibrate, serve.

Drives the whole PR surface end to end with a 10-antenna fleet:
calibrations seeded through the scheduler, truth drifted by the
simulator, staleness detected from *real* :mod:`repro.stream` drift
alarms on a live :class:`EventBus`, repair fanned through the
``process`` executor, commits persisted across a store reopen, and the
serving engine resolving named antennas to positions **bit-identical**
to hand-running :func:`calibrate_antenna` + the registry estimator on
explicit arrays. Also covers mixed-version pinned reads (old and new
calibrations localized together).
"""

import numpy as np

from repro import pipeline
from repro.calib import (
    CalibrationResolver,
    CalibrationStore,
    DriftMonitor,
    RecalibrationScheduler,
    StalenessPolicy,
    fleet_scan_source,
)
from repro.core.calibration import calibrate_antenna, relative_phase_offsets
from repro.datasets.fleet import AntennaFleet, FleetDriftConfig
from repro.serve import ServeConfig, ServeEngine
from repro.stream import CalibrationDriftAlarm, EventBus

FLEET_SIZE = 10
DRIFT_HOURS = 12.0
TAG = (0.4, -0.6, 0.1)
GRID = {"grid_size_m": 0.01}


def _bounds(tag, half=0.12):
    return tuple((coord - half, coord + half) for coord in tag)


def _direct_calibrations(fleet, salt):
    """The reference path: calibrate every antenna by hand, same scans."""
    calibrations = []
    for name in fleet.names:
        scan, grid = fleet.calibration_scan(name, salt=salt)
        calibration, _ = calibrate_antenna(
            scan.positions,
            scan.phases,
            fleet.antenna(name).physical_center_array,
            antenna_name=name,
            segment_ids=scan.segment_ids,
            exclude_mask=scan.exclude_mask,
            grid=grid,
        )
        calibrations.append(calibration)
    relative = relative_phase_offsets(calibrations)
    offsets = np.asarray([relative[name] for name in fleet.names])
    centers = np.asarray([c.estimated_center for c in calibrations])
    return offsets, centers


class TestFleetLoop:
    def test_drift_detect_recalibrate_serve(self, tmp_path):
        fleet = AntennaFleet(FleetDriftConfig(size=FLEET_SIZE, seed=0))
        store = CalibrationStore(tmp_path / "fleet")

        # -- seed: first calibration of every antenna -------------------
        seed_report = RecalibrationScheduler(
            store, fleet_scan_source(fleet, salt=0), executor="serial", source="seed"
        ).recalibrate(fleet.names)
        assert len(seed_report.committed) == FLEET_SIZE
        assert not seed_report.failures and not seed_report.conflicts

        # -- drift: half a day of offset walk + thermal swing -----------
        fleet.advance(DRIFT_HOURS * 3600.0)

        # -- detect: real stream alarms on a live bus -------------------
        monitor = DriftMonitor(
            store, StalenessPolicy(max_drift_alarms=2, alarm_window_s=600.0)
        )
        bus = EventBus()
        monitor.attach(bus)
        for sequence in range(2):
            for index, name in enumerate(fleet.names):
                bus.publish(
                    CalibrationDriftAlarm(
                        session_id=f"sess-{index}",
                        tag="tag-0",
                        antenna=name,
                        sequence=sequence,
                        timestamp_s=float(sequence),
                        drift_m=0.12,
                    )
                )

        # -- repair: scheduler cycle through the process executor -------
        scheduler = RecalibrationScheduler(
            store,
            fleet_scan_source(fleet, salt=1),
            executor="process",
            jobs=4,
            source="scheduled",
            manifest={"cycle": 1},
        )
        report, stale = scheduler.run_cycle(monitor)
        assert sorted(stale) == sorted(fleet.names)
        assert report.committed == {name: 2 for name in fleet.names}
        assert not report.failures and not report.conflicts

        # -- persistence: a cold reopen sees the same registry ----------
        reopened = CalibrationStore(tmp_path / "fleet", create=False)
        assert reopened.generation == store.generation
        assert all(reopened.latest(n).version == 2 for n in fleet.names)
        assert all(reopened.latest(n).manifest == {"cycle": 1} for n in fleet.names)

        # -- reference: the same physics by hand ------------------------
        offsets, centers = _direct_calibrations(fleet, salt=1)
        assert np.array_equal(reopened.offsets_for(fleet.names), offsets)
        assert np.array_equal(reopened.centers_for(fleet.names), centers)

        phases = fleet.static_tag_phases(TAG)
        bounds = _bounds(TAG)
        expected = pipeline.estimate(
            "lion-multiantenna",
            pipeline.EstimationRequest(
                positions=centers,
                phases_rad=phases,
                bounds=bounds,
                offset_corrections_rad=offsets,
            ),
            GRID,
        )

        # -- serve: named antennas resolve from the store ---------------
        resolver = CalibrationResolver(reopened)
        with ServeEngine(ServeConfig(), start=False, calibration=resolver) as engine:
            ticket = engine.submit(
                "lion-multiantenna",
                pipeline.EstimationRequest(
                    antennas=fleet.names, phases_rad=phases, bounds=bounds
                ),
                GRID,
            )
            assert engine.drain_once() == 1
            served = ticket.result(timeout=0)
        assert np.array_equal(served.position, expected.position)
        assert served.config_hash == expected.config_hash
        # The recalibrated fleet actually localizes the tag.
        assert np.linalg.norm(served.position - np.asarray(TAG)) < 0.05
        stats = engine.stats()["calibration"]
        assert stats["generation"] == reopened.generation
        assert stats["misses"] >= 1

    def test_mixed_version_localization_from_store(self, tmp_path):
        fleet = AntennaFleet(FleetDriftConfig(size=4, seed=3))
        store = CalibrationStore(tmp_path / "mixed")
        scheduler = RecalibrationScheduler(
            store, fleet_scan_source(fleet, salt=0), executor="serial", source="seed"
        )
        scheduler.recalibrate(fleet.names)
        fleet.advance(6 * 3600.0)
        RecalibrationScheduler(
            store, fleet_scan_source(fleet, salt=1), executor="serial"
        ).recalibrate(fleet.names)

        # Pin one antenna to its seed calibration, everyone else latest.
        pinned = fleet.names[1]
        pins = {pinned: 1}
        offsets = store.offsets_for(fleet.names, versions=pins)
        centers = store.centers_for(fleet.names, versions=pins)

        manual = [
            store.get(name, pins.get(name, 2)).to_calibration()
            for name in fleet.names
        ]
        relative = relative_phase_offsets(manual)
        assert np.array_equal(
            offsets, np.asarray([relative[name] for name in fleet.names])
        )
        assert np.array_equal(
            centers, np.asarray([c.estimated_center for c in manual])
        )

        # The mixed-version array still localizes (one stale antenna is
        # an error source, not a crash) bit-identically to the manual
        # construction of the same request.
        phases = fleet.static_tag_phases(TAG)
        request = pipeline.EstimationRequest(
            positions=centers,
            phases_rad=phases,
            bounds=_bounds(TAG),
            offset_corrections_rad=offsets,
        )
        from_store = pipeline.estimate("lion-multiantenna", request, GRID)
        by_hand = pipeline.estimate(
            "lion-multiantenna",
            pipeline.EstimationRequest(
                positions=np.asarray([c.estimated_center for c in manual]),
                phases_rad=phases,
                bounds=_bounds(TAG),
                offset_corrections_rad=np.asarray(
                    [relative[name] for name in fleet.names]
                ),
            ),
            GRID,
        )
        assert np.array_equal(from_store.position, by_hand.position)
        assert from_store.diagnostics == by_hand.diagnostics
