"""Tests for repro.rf.noise and repro.rf.tag."""

import numpy as np
import pytest

from repro.constants import TWO_PI
from repro.rf.noise import (
    BurstyPhaseNoise,
    GaussianPhaseNoise,
    NoPhaseNoise,
    SnrScaledPhaseNoise,
)
from repro.rf.tag import Tag


class TestNoPhaseNoise:
    def test_always_zero(self, rng):
        model = NoPhaseNoise()
        assert model.sample(rng, 1.0, 1.0) == 0.0


class TestGaussianPhaseNoise:
    def test_statistics(self, rng):
        model = GaussianPhaseNoise(std_rad=0.1)
        draws = np.array([model.sample(rng, 1.0, 1.0) for _ in range(5000)])
        assert np.mean(draws) == pytest.approx(0.0, abs=0.01)
        assert np.std(draws) == pytest.approx(0.1, rel=0.1)

    def test_zero_std(self, rng):
        assert GaussianPhaseNoise(std_rad=0.0).sample(rng, 1.0, 1.0) == 0.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            GaussianPhaseNoise(std_rad=-0.1)

    def test_independent_of_geometry(self, rng):
        model = GaussianPhaseNoise(std_rad=0.2)
        near = np.std([model.sample(rng, 0.1, 1.0) for _ in range(2000)])
        far = np.std([model.sample(rng, 10.0, 0.01) for _ in range(2000)])
        assert near == pytest.approx(far, rel=0.15)


class TestSnrScaledPhaseNoise:
    def test_sigma_at_reference(self):
        model = SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8)
        assert model.sigma(0.8, 1.0) == pytest.approx(0.1)

    def test_sigma_grows_with_distance(self):
        model = SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8)
        assert model.sigma(1.6, 1.0) == pytest.approx(0.2)

    def test_sigma_grows_off_beam(self):
        model = SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8)
        assert model.sigma(0.8, 0.25) == pytest.approx(0.2)

    def test_sigma_capped(self):
        model = SnrScaledPhaseNoise(
            base_std_rad=0.1, reference_distance_m=0.8, max_std_rad=0.5
        )
        assert model.sigma(100.0, 1e-6) == pytest.approx(0.5)

    def test_degenerate_distance(self):
        model = SnrScaledPhaseNoise(base_std_rad=0.1)
        assert model.sigma(0.0, 1.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SnrScaledPhaseNoise(base_std_rad=-0.1)
        with pytest.raises(ValueError):
            SnrScaledPhaseNoise(reference_distance_m=0.0)
        with pytest.raises(ValueError):
            SnrScaledPhaseNoise(base_std_rad=0.5, max_std_rad=0.1)


class TestBurstyPhaseNoise:
    def test_burst_rate(self, rng):
        model = BurstyPhaseNoise(
            base=NoPhaseNoise(), burst_probability=0.2, burst_magnitude_rad=1.0
        )
        draws = np.array([model.sample(rng, 1.0, 1.0) for _ in range(5000)])
        burst_fraction = np.mean(draws != 0.0)
        assert burst_fraction == pytest.approx(0.2, abs=0.03)

    def test_burst_magnitude_bounded(self, rng):
        model = BurstyPhaseNoise(
            base=NoPhaseNoise(), burst_probability=1.0, burst_magnitude_rad=0.5
        )
        draws = np.array([model.sample(rng, 1.0, 1.0) for _ in range(1000)])
        assert np.all(np.abs(draws) <= 0.5)

    def test_zero_probability_passthrough(self, rng):
        model = BurstyPhaseNoise(base=GaussianPhaseNoise(0.1), burst_probability=0.0)
        draws = np.array([model.sample(rng, 1.0, 1.0) for _ in range(2000)])
        assert np.std(draws) == pytest.approx(0.1, rel=0.15)

    def test_magnitude_must_be_below_pi(self):
        with pytest.raises(ValueError):
            BurstyPhaseNoise(base=NoPhaseNoise(), burst_magnitude_rad=3.5)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            BurstyPhaseNoise(base=NoPhaseNoise(), burst_probability=1.5)


class TestTag:
    def test_offset_normalised_into_range(self):
        tag = Tag(phase_offset_rad=TWO_PI + 1.0)
        assert tag.phase_offset_rad == pytest.approx(1.0)

    def test_random_tags_differ(self, rng):
        tags = [Tag.random(rng) for _ in range(5)]
        offsets = {round(t.phase_offset_rad, 6) for t in tags}
        assert len(offsets) == 5

    def test_random_epc_generated(self, rng):
        tag = Tag.random(rng)
        assert tag.epc.startswith("E200-")

    def test_random_epc_override(self, rng):
        assert Tag.random(rng, epc="CUSTOM").epc == "CUSTOM"
