"""Tests for repro.core.lowerdim (Observation 2)."""

import numpy as np
import pytest

from repro.core.lowerdim import (
    detect_missing_axis,
    recover_coordinate_from_reference,
)


class TestRecoverCoordinate:
    def test_recovers_exact_y_2d(self):
        """y = y_r + sqrt(d_r^2 - (x - x_r)^2), the Sec. III-C formula."""
        target = np.array([0.2, 1.0])
        reference = np.array([-0.1, 0.0])
        d_r = float(np.linalg.norm(target - reference))
        partial = np.array([0.2, 0.0])
        result = recover_coordinate_from_reference(partial, 1, d_r, reference)
        assert result.position == pytest.approx(target, abs=1e-12)

    def test_recovers_exact_z_3d(self):
        target = np.array([0.1, 0.8, 0.3])
        reference = np.array([0.0, 0.0, 0.0])
        d_r = float(np.linalg.norm(target - reference))
        partial = np.array([0.1, 0.8, 0.0])
        result = recover_coordinate_from_reference(partial, 2, d_r, reference)
        assert result.position == pytest.approx(target, abs=1e-12)

    def test_negative_side(self):
        target = np.array([0.0, -1.0])
        reference = np.zeros(2)
        result = recover_coordinate_from_reference(
            np.array([0.0, 0.0]), 1, 1.0, reference, positive_side=False
        )
        assert result.position == pytest.approx(target)

    def test_both_candidates_returned(self):
        result = recover_coordinate_from_reference(
            np.array([0.0, 0.0]), 1, 1.0, np.zeros(2)
        )
        assert result.candidates.shape == (2, 2)
        assert result.candidates[0, 1] == pytest.approx(1.0)
        assert result.candidates[1, 1] == pytest.approx(-1.0)

    def test_negative_radicand_clipped(self):
        """Inconsistent (noisy) d_r: position placed at the reference level."""
        result = recover_coordinate_from_reference(
            np.array([10.0, 0.0]), 1, 0.5, np.zeros(2)
        )
        assert result.radicand < 0.0
        assert result.position[1] == pytest.approx(0.0)

    def test_middle_axis_3d(self):
        target = np.array([0.3, 0.7, -0.2])
        reference = np.array([0.1, 0.0, 0.1])
        d_r = float(np.linalg.norm(target - reference))
        partial = np.array([0.3, 0.0, -0.2])
        result = recover_coordinate_from_reference(partial, 1, d_r, reference)
        assert result.position == pytest.approx(target, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            recover_coordinate_from_reference(np.zeros(2), 5, 1.0, np.zeros(2))
        with pytest.raises(ValueError):
            recover_coordinate_from_reference(np.zeros(2), 0, -1.0, np.zeros(2))
        with pytest.raises(ValueError):
            recover_coordinate_from_reference(np.zeros(2), 0, 1.0, np.zeros(3))
        with pytest.raises(ValueError):
            recover_coordinate_from_reference(np.zeros(4), 0, 1.0, np.zeros(4))


class TestDetectMissingAxis:
    def test_full_rank_scan(self, rng):
        positions = rng.uniform(-1, 1, size=(20, 3))
        assert detect_missing_axis(positions) is None

    def test_planar_scan_flags_z(self):
        positions = np.zeros((10, 3))
        positions[:, 0] = np.linspace(0, 1, 10)
        positions[:, 1] = np.linspace(0, 0.5, 10) ** 2
        assert detect_missing_axis(positions) == 2

    def test_axis_line_2d_flags_y(self):
        positions = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        assert detect_missing_axis(positions) == 1

    def test_line_in_3d_rejected(self):
        """Sec. III-C: a single linear trajectory cannot fix a 3D position."""
        positions = np.zeros((10, 3))
        positions[:, 0] = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            detect_missing_axis(positions)

    def test_non_matrix_rejected(self):
        with pytest.raises(ValueError):
            detect_missing_axis(np.zeros(5))
