"""Fig. 4: the two-measurement hologram and its cost."""

from benchmarks.conftest import regenerate


def test_bench_fig04(benchmark):
    result = regenerate(benchmark, "fig04")
    values = {row["quantity"]: row["value"] for row in result.rows}

    # The high-likelihood set is a thin ridge, not the whole area.
    assert 0 < values["ridge_cells_unweighted"] < values["grid_cells"] * 0.5
    # Weighting (coherence sharpening) thins the candidate set further.
    assert values["ridge_cells_weighted"] < values["ridge_cells_unweighted"]
    # Building even this small hologram has a measurable cost.
    assert values["build_seconds"] > 0.0
