"""Fig. 21: rotating-tag (turntable) localization vs radius."""

import numpy as np

from benchmarks.conftest import regenerate


def test_bench_fig21(benchmark):
    result = regenerate(benchmark, "fig21")
    radii = np.array(result.column("radius_m"), dtype=float)
    err_x = np.array(result.column("err_x_cm"), dtype=float)
    err_y = np.array(result.column("err_y_cm"), dtype=float)
    totals = np.array(result.column("err_total_cm"), dtype=float)

    # Errors distribute along the scan-center-to-antenna line (here +y):
    # the x error is consistently the smaller one.
    assert np.all(err_x <= err_y + 0.1)

    # Accuracy improves with the rotation radius.
    assert totals[-1] < totals[0]
    assert totals[-1] < 2.0
