"""Fig. 2: the phase valley sits centimeters from the physical center."""

from benchmarks.conftest import regenerate


def test_bench_fig02(benchmark):
    result = regenerate(benchmark, "fig02")
    for row in result.rows:
        valley = row["valley_offset_cm"]
        truth = row["true_displacement_cm"]
        # The valley tracks the hidden displacement, not the origin.
        assert abs(valley - truth) < abs(truth) + 1.0
        assert abs(valley) > 0.5  # clearly away from the physical center
