"""Fig. 9: 2D localization from a linear trajectory (lower-dimension)."""

from benchmarks.conftest import regenerate


def test_bench_fig09(benchmark):
    result = regenerate(benchmark, "fig09")
    means = {row["method"]: row["mean_error_cm"] for row in result.rows}

    # LION works with the linear trajectory (the lower-dimension recovery
    # is sound) and is comparable to the hologram.
    assert means["LION"] < 5.0
    assert means["LION"] < 2.0 * means["DAH"] + 1.0
