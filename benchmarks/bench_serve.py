"""Micro-batched vs single-request throughput of the serving engine.

Replays one Monte-Carlo-style request stream (fixed paper-scale line
scan, re-noised phases per request) through :class:`repro.serve.ServeEngine`
at batch sizes 1/8/32, verifies a sample of batched reports bit-identical
to the direct scalar path, and records p50/p99 latency, requests/second,
and the batch-32-vs-1 speedup as JSON (``BENCH_serve.json``). CI runs the
quick sizing on every PR, gates ``speedup_32_vs_1 >= 3`` with
``tools/check_bench_regression.py --min``, and the nightly slow job diffs
the full sizing against ``benchmarks/baselines/BENCH_serve.json``.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick   # CI smoke sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_serve.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json

from repro.serve.bench import run_load

#: Reads per scan; the paper-scale line scan.
READS = 400

#: ``max_batch_size`` settings measured per replay (1 = scalar baseline).
BATCH_SIZES = (1, 8, 32)


def run_study(requests: int, seed: int = 0) -> dict:
    """One full load study; see :func:`repro.serve.bench.run_load`."""
    return run_load(requests=requests, reads=READS, batch_sizes=BATCH_SIZES, seed=seed)


def test_bench_serve_microbatch(benchmark):
    """Smoke-sized load study: batching speeds up and changes no answer."""
    payload = benchmark.pedantic(run_study, kwargs={"requests": 48}, iterations=1, rounds=1)
    print()
    print("== serve engine, requests/second ==")
    for size in BATCH_SIZES:
        stats = payload["batch"][str(size)]
        print(f"  batch {size:>3}: {stats['requests_per_sec']:9.1f} req/s")
    print(f"  speedup_32_vs_1: {payload['speedup_32_vs_1']:.2f}x")
    # run_load already asserted batched == scalar bit-identity; here we
    # only smoke the direction, the hard >=3x gate runs on the CLI sizing.
    assert payload["speedup_32_vs_1"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=256,
        help="requests per batch-size replay (default: 256)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (64 requests)"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--out", default="BENCH_serve.json", help="output JSON path")
    args = parser.parse_args(argv)
    requests = 64 if args.quick else args.requests
    payload = run_study(requests, seed=args.seed)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
