"""Batched request-path throughput: prepare + solve + report, batch 32.

Measures the fused front half of the serving stack
(:func:`repro.serve.batching.execute_batch`: batched validation /
preprocessing / template-cached geometry / stacked IRLS / batched
finalize) as pure request-path throughput — a tight loop over one warm
batch, no queue or thread noise — at two workload scales:

- ``portal``: 60-read scans, the short per-tag windows of a logistics
  portal (the RF-CHORD-style serving case that motivates the batched
  path). This is the gated scale: the float32 pipeline must clear
  **10x** the committed ``BENCH_serve.json`` batch-32 baseline
  (1980 req/s -> 19 800 req/s floor).
- ``paper``: 400-read scans, the paper-scale dense line scan that
  ``BENCH_serve.json`` itself replays. Reported for the apples-to-apples
  read-count comparison (the per-read preprocess + solver cost dominates
  here), not gated on the absolute floor.

Both scales verify float64 results bit-identical to the scalar
``estimator.estimate`` path and bound the float32 position error before
reporting any number. The payload also records the trajectory-template
cache hit rate over the measured loop (gated >= 0.9: repeat geometries
must actually skip pairing/assembly) and the same-machine speedup over
the scalar path.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_prepare.py --out BENCH_prepare.json
    PYTHONPATH=src python benchmarks/bench_prepare.py --quick   # CI sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_prepare.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.batch_prepare import clear_template_cache, template_cache_info
from repro.core.sweep import clear_pair_cache
from repro.obs import collect_manifest
from repro.pipeline.contract import EstimationRequest
from repro.pipeline.registry import create_estimator
from repro.serve.batching import execute_batch
from repro.serve.bench import build_requests

#: Requests fused per dispatch — the gated batch size of BENCH_serve.
BATCH_SIZE = 32

#: Reads per scan at the two workload scales.
PORTAL_READS = 60
PAPER_READS = 400

#: Committed serve baseline this bench is gated against.
SERVE_BASELINE = os.path.join(
    os.path.dirname(__file__), "baselines", "BENCH_serve.json"
)

#: Maximum float32 position error vs the scalar float64 path, meters.
#: Property tests bound the pipeline at ~1e-3 (see
#: ``tests/test_batch_prepare.py``); the bench uses the same ceiling.
FLOAT32_TOLERANCE_M = 5e-3


def serve_baseline_req_s() -> Optional[float]:
    """Batch-32 req/s of the committed ``BENCH_serve.json`` baseline."""
    try:
        with open(SERVE_BASELINE) as handle:
            payload = json.load(handle)
        return float(payload["batch"][str(BATCH_SIZE)]["requests_per_sec"])
    except (OSError, KeyError, ValueError):
        return None


def _measure_loop(fn, iterations: int, repeats: int = 3, chunk: int = 20) -> float:
    """Best sustained wall time for ``iterations`` calls to ``fn``.

    Times short chunks (``chunk`` calls each) across ``repeats`` full
    passes and scales the fastest per-call chunk rate back to
    ``iterations`` calls. A single long window absorbs scheduler
    preemption and background load that have nothing to do with the
    code under test — on 1-CPU CI containers that skews a 200-iteration
    window by 20%+ run-to-run. Noise only ever slows a chunk down, so
    the best chunk is the stable estimator of the steady-state rate.
    """
    best = float("inf")
    for _ in range(repeats):
        done = 0
        while done < iterations:
            count = min(chunk, iterations - done)
            start = time.perf_counter()
            for _ in range(count):
                fn()
            best = min(best, (time.perf_counter() - start) / count)
            done += count
    return best * iterations


def run_scale(
    reads: int, iterations: int, seed: int = 0, check: int = 8
) -> Dict[str, Any]:
    """One workload scale: scalar baseline + f64/f32 batched loops.

    Clears the template and pair caches first, so the reported cache hit
    rate covers exactly this scale's warmup + measurement (first batch
    misses, every later batch hits the shared trajectory's template).

    Raises:
        AssertionError: if the float64 batch diverges bit-wise from the
            scalar path, or the float32 position error exceeds
            :data:`FLOAT32_TOLERANCE_M` — a benchmark that changed the
            answer must not report a speedup.
    """
    clear_template_cache()
    clear_pair_cache()
    requests: List[EstimationRequest] = build_requests(BATCH_SIZE, reads, seed=seed)
    estimator = create_estimator("lion", {"dim": 2, "method": "wls"})

    scalar = [estimator.estimate(request) for request in requests]
    batched64 = execute_batch(estimator, requests, dtype="float64")
    batched32 = execute_batch(estimator, requests, dtype="float32")
    for request_scalar, request_batched in list(zip(scalar, batched64))[:check]:
        assert np.array_equal(request_scalar.position, request_batched.position), (
            "float64 batched position diverged from the scalar path"
        )
    float32_error = max(
        float(np.max(np.abs(s.position - b.position)))
        for s, b in zip(scalar, batched32)
    )
    assert float32_error <= FLOAT32_TOLERANCE_M, (
        f"float32 position error {float32_error:.2e} m exceeds "
        f"{FLOAT32_TOLERANCE_M:.0e} m"
    )

    # Warm loops (cache steady state), then measure each pipeline.
    for _ in range(max(iterations // 10, 2)):
        execute_batch(estimator, requests, dtype="float32")
        execute_batch(estimator, requests, dtype="float64")

    def _stats(wall_s: float) -> Dict[str, float]:
        total = iterations * BATCH_SIZE
        return {
            "wall_s": round(wall_s, 4),
            "requests_per_sec": round(total / wall_s, 1),
            "us_per_request": round(wall_s / total * 1e6, 2),
        }

    scalar_wall = _measure_loop(
        lambda: [estimator.estimate(request) for request in requests],
        max(iterations // 8, 2),
    )
    scalar_stats = {
        "wall_s": round(scalar_wall, 4),
        "requests_per_sec": round(
            max(iterations // 8, 2) * BATCH_SIZE / scalar_wall, 1
        ),
    }
    wall64 = _measure_loop(
        lambda: execute_batch(estimator, requests, dtype="float64"), iterations
    )
    wall32 = _measure_loop(
        lambda: execute_batch(estimator, requests, dtype="float32"), iterations
    )
    cache = template_cache_info()
    probes = cache["hits"] + cache["misses"]
    return {
        "reads": reads,
        "iterations": iterations,
        "scalar": scalar_stats,
        "float64": _stats(wall64),
        "float32": _stats(wall32),
        "float32_max_error_m": round(float32_error, 8),
        "speedup_f64_vs_scalar": round(
            (scalar_wall / (max(iterations // 8, 2) * BATCH_SIZE))
            / (wall64 / (iterations * BATCH_SIZE)),
            2,
        ),
        "speedup_f32_vs_scalar": round(
            (scalar_wall / (max(iterations // 8, 2) * BATCH_SIZE))
            / (wall32 / (iterations * BATCH_SIZE)),
            2,
        ),
        "template_cache": {
            "hits": cache["hits"],
            "misses": cache["misses"],
            "hit_rate": round(cache["hits"] / probes, 4) if probes else None,
        },
    }


def run_study(iterations: int, seed: int = 0) -> Dict[str, Any]:
    """Both workload scales plus the committed-baseline comparison."""
    portal = run_scale(PORTAL_READS, iterations, seed=seed)
    paper = run_scale(PAPER_READS, max(iterations // 4, 2), seed=seed)
    baseline = serve_baseline_req_s()
    payload: Dict[str, Any] = {
        "benchmark": "batched_prepare",
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "portal": portal,
        "paper": paper,
        "serve_baseline_req_s": baseline,
        "template_cache": portal["template_cache"],
        "manifest": collect_manifest(
            seed=seed,
            config={
                "batch_size": BATCH_SIZE,
                "portal_reads": PORTAL_READS,
                "paper_reads": PAPER_READS,
                "iterations": iterations,
            },
        ).to_dict(),
    }
    if baseline:
        payload["speedup_vs_serve_baseline"] = round(
            portal["float32"]["requests_per_sec"] / baseline, 2
        )
        payload["paper_speedup_vs_serve_baseline"] = round(
            paper["float32"]["requests_per_sec"] / baseline, 2
        )
    return payload


def test_bench_prepare_batched(benchmark):
    """Smoke-sized study: batched prepare wins and changes no answer."""
    payload = benchmark.pedantic(
        run_study, kwargs={"iterations": 20}, iterations=1, rounds=1
    )
    print()
    print("== batched request path, requests/second (batch 32) ==")
    for scale in ("portal", "paper"):
        stats = payload[scale]
        print(
            f"  {scale:>6} ({stats['reads']} reads): "
            f"scalar {stats['scalar']['requests_per_sec']:9.1f}  "
            f"f64 {stats['float64']['requests_per_sec']:9.1f}  "
            f"f32 {stats['float32']['requests_per_sec']:9.1f} req/s"
        )
    # run_scale asserted f64 bit-identity and the f32 error bound; here we
    # smoke the direction — the hard 19 800 req/s floor runs on the CLI
    # sizing in CI.
    assert payload["portal"]["speedup_f32_vs_scalar"] > 1.0
    assert payload["template_cache"]["hit_rate"] > 0.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="measured batch dispatches per pipeline (default: 200)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI sizing (60 iterations)"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--out", default="BENCH_prepare.json", help="output JSON path")
    args = parser.parse_args(argv)
    iterations = 60 if args.quick else args.iterations
    payload = run_study(iterations, seed=args.seed)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
