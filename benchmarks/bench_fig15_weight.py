"""Fig. 15: the weighted-least-squares gain over plain least squares."""

from benchmarks.conftest import regenerate


def test_bench_fig15(benchmark):
    result = regenerate(benchmark, "fig15")
    means = {row["method"]: row["mean_error_cm"] for row in result.rows}

    # WLS clearly beats LS under bursty corruption (paper: 0.43 vs 0.92 cm,
    # roughly a 2x gap; assert a conservative 1.3x).
    assert means["WLS"] * 1.3 < means["LS"]
    # And WLS lands at sub-centimeter accuracy.
    assert means["WLS"] < 1.0
