"""Ablation: 3D calibration scan geometry — three-line vs two-line vs raster.

DESIGN.md design choice: the paper recommends matching the trajectory
dimension to the spatial dimension (three lines for 3D). This bench
compares the paper's minimum geometry against the reduced two-line scan
(z from d_r) and the richer raster plane under identical noise, and also
quantifies the accuracy floor imposed by an angle-wandering phase center.
"""

import numpy as np

from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise
from repro.trajectory.multiline import ThreeLineScan, TwoLineScan
from repro.trajectory.raster import RasterScan


def _error(trajectory, antenna, rng, noise):
    scan = simulate_scan(trajectory, antenna, rng=rng, noise=noise, read_rate_hz=30.0)
    result = LionLocalizer(dim=3, interval_m=0.25).locate(
        scan.positions, scan.phases,
        segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
    )
    return float(np.linalg.norm(result.position - antenna.phase_center))


def test_bench_scan_geometries(benchmark):
    rng = np.random.default_rng(31)

    def run():
        errors = {"three-line": [], "two-line": [], "raster-5-rows": []}
        for _ in range(6):
            antenna = Antenna(
                physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0)
            )
            noise = GaussianPhaseNoise(0.08)
            errors["three-line"].append(
                _error(ThreeLineScan(-0.5, 0.5), antenna, rng, noise)
            )
            errors["two-line"].append(
                _error(TwoLineScan(-0.5, 0.5, y_offset=0.2), antenna, rng, noise)
            )
            errors["raster-5-rows"].append(
                _error(
                    RasterScan(-0.5, 0.5, row_start=-0.4, row_count=5, row_spacing=0.1),
                    antenna, rng, noise,
                )
            )
        return {name: float(np.mean(values)) for name, values in errors.items()}

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: 3D calibration scan geometry (mean error, cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # All geometries are centimeter-capable; the two-line variant (z via
    # the sqrt recovery) is the most noise-sensitive.
    assert all(value < 0.03 for value in means.values())
    assert means["three-line"] <= means["two-line"] * 1.5


def test_bench_center_wander_floor(benchmark):
    """How much accuracy does the point-center assumption cost?"""

    def run():
        floors = {}
        for wander_mm in (0, 5, 10, 20):
            antenna = Antenna(
                physical_center=(0.0, 0.8, 0.0),
                boresight=(0, -1, 0),
                center_wander_m=wander_mm / 1000.0,
            )
            floors[wander_mm] = _error(
                ThreeLineScan(-0.5, 0.5), antenna,
                np.random.default_rng(2), NoPhaseNoise(),
            )
        return floors

    floors = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: noiseless calibration floor vs center wander ==")
    for wander_mm, value in floors.items():
        print(f"  wander {wander_mm:>2} mm: {value * 100:.3f} cm")

    values = list(floors.values())
    assert values[0] < 1e-4          # point center: exact
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))  # monotone
