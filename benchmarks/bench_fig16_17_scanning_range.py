"""Fig. 16+17: distance error and mean residual vs scanning range."""

import numpy as np

from benchmarks.conftest import regenerate


def test_bench_fig16_17(benchmark):
    result = regenerate(benchmark, "fig16_17")
    ranges = np.array(result.column("range_m"), dtype=float)
    errors = np.array(result.column("mean_error_cm"), dtype=float)

    # The paper's U-shape: an interior range (around 80 cm) beats both
    # extremes — too small lacks geometric diversity, too large pulls in
    # off-beam noise.
    best = int(np.argmin(errors))
    assert 0 < best < len(ranges) - 1 or errors[best] < min(errors[0], errors[-1])

    # The best interior range outperforms the widest one.
    interior = errors[(ranges >= 0.7) & (ranges <= 0.9)]
    assert interior.min() <= errors[-1] + 0.2
