"""Disabled-mode overhead of the observability instrumentation.

The instrumentation contract (``docs/observability.md``) is that with
tracing and metrics disabled the hot paths pay a single flag check — no
span objects, no registry lookups, no extra allocations. This benchmark
measures that contract on the hottest instrumented path,
``solve_weighted_least_squares``, by timing it against an inlined replica
of the pre-instrumentation IRLS loop (the PR-1 code, with no flag checks
at all). It also reports the per-call cost of a disabled ``span()``.

The overhead estimate is the median of per-round instrumented/baseline
ratios, with the two solvers interleaved *per solve* (~0.5 ms apart and
alternating which goes first) so frequency drift and scheduler noise —
which shift machine state at the ~10 ms scale on shared CI runners —
hit both sides equally. Per-side min-of-rounds times are reported
alongside, and the report embeds the run manifest so CI artifacts are
traceable to a commit.

A second contract covers the *enabled* mode on the serving path: with
tracing on, every engine dispatch records spans, stamps request ids,
and files completed roots into the request-span store for stitching
(``docs/observability.md``). That work must cost under a few percent of
serving throughput, or nobody runs with tracing in production. The
serve study replays one closed burst through :class:`ServeEngine` with
tracing off and on (alternating per round, request ids and span-store
claims included on the traced side — the full per-request stitching
path) and reports the median throughput ratio. Metrics stay enabled on
*both* sides, matching the serving workers (``lion serve`` always runs
with metrics on; tracing is the toggle) — so the ratio isolates the
span/stitching cost rather than re-charging tracing for the shared
``obs_enabled()`` solver diagnostics.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out BENCH_obs_overhead.json
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick --check

``--check`` exits non-zero when the disabled-mode overhead exceeds
``--threshold`` (default 2%) or the serve-path tracing overhead exceeds
``--serve-threshold`` (default 5%), which is how CI enforces both
contracts.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List

import numpy as np

from repro.core.solvers import (
    Solution,
    _row_norms,
    _weighted_solve,
    solve_weighted_least_squares,
)
from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import (
    collect_manifest,
    disable_metrics,
    disable_tracing,
    enable_tracing,
    reset_request_spans,
    reset_tracing,
    span,
    take_request_spans,
    tracing_enabled,
)

#: Workload shape: a typical sweep-cell system (rows x [x, y, d_r]).
EQUATIONS = 120
SOLVES_PER_ROUND = 20


def make_system(seed: int = 0) -> LinearSystem:
    """A well-conditioned random system shaped like a real sweep cell."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0, (EQUATIONS, 3))
    truth = np.array([0.12, 0.85, 1.1])
    rhs = matrix @ truth + rng.normal(0.0, 0.01, EQUATIONS)
    return LinearSystem(matrix=matrix, rhs=rhs, dim=2)


def baseline_irls(
    system: LinearSystem, max_iterations: int = 20, tolerance_m: float = 1e-6
) -> Solution:
    """The PR-1 IRLS solver, inlined with zero observability hooks.

    A line-for-line replica of the pre-instrumentation
    ``solve_weighted_least_squares`` (commit df48863), sharing the same
    ``_weighted_solve``/``_row_norms`` helpers and ``Solution`` type; the
    only difference from today's solver is the absence of the
    ``obs_enabled()`` flag check and the disabled span/metrics branches.
    """
    weights = np.ones(system.equation_count)
    estimate = _weighted_solve(system.matrix, system.rhs, weights)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        residuals = system.matrix @ estimate - system.rhs
        weights = gaussian_residual_weights(residuals)
        updated = _weighted_solve(system.matrix, system.rhs, weights)
        step = float(np.linalg.norm(updated - estimate))
        estimate = updated
        if step < tolerance_m:
            converged = True
            break
    residuals = system.matrix @ estimate - system.rhs
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=iterations,
        converged=converged,
    )


def _time_rounds(fn, rounds: int, reps: int) -> float:
    """Best (minimum) per-rep seconds across ``rounds`` timing rounds."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def _time_paired(
    fn_a, fn_b, items: List[LinearSystem], rounds: int
) -> tuple[float, float, float]:
    """Time two solvers per-item-interleaved; returns (min_a, min_b, median ratio).

    Timing all of A then all of B lets frequency/cache drift midway
    through masquerade as a difference between the solvers; on shared CI
    runners that state shifts at roughly the duration of one whole
    timing block. Instead A and B run ~0.5 ms apart on each item
    (alternating which goes first), so each round's B/A ratio is taken
    under near-identical machine state, and the median over rounds is
    robust to rounds that land in a slow window.
    """
    pairs: List[tuple[float, float]] = []
    for round_index in range(rounds):
        total_a = total_b = 0.0
        for item_index, item in enumerate(items):
            if (round_index + item_index) % 2 == 0:
                order = (fn_a, fn_b)
            else:
                order = (fn_b, fn_a)
            for fn in order:
                start = time.perf_counter()
                fn(item)
                elapsed = time.perf_counter() - start
                if fn is fn_a:
                    total_a += elapsed
                else:
                    total_b += elapsed
        pairs.append((total_a, total_b))
    median_ratio = _median([b / a for a, b in pairs])
    return min(a for a, _ in pairs), min(b for _, b in pairs), median_ratio


def measure_disabled_span_cost(calls: int = 100_000, rounds: int = 5) -> float:
    """Per-call seconds of ``with span(...): pass`` while tracing is off."""
    assert not tracing_enabled()

    def burst() -> None:
        for _ in range(calls):
            with span("noop"):
                pass

    return _time_rounds(burst, rounds=rounds, reps=1) / calls


def _serve_replay(requests: List, tracing: bool) -> float:
    """One closed-burst replay through the engine; returns requests/sec.

    With ``tracing`` on, the burst exercises the full stitched-trace
    path: spans record on the batcher thread, request ids stamp the
    dispatch spans, and every request claims its subtree from the span
    store afterwards — exactly what a traced worker does per response.
    """
    from repro.core.sweep import clear_pair_cache
    from repro.serve.engine import ServeConfig, ServeEngine

    clear_pair_cache()
    if tracing:
        enable_tracing()
    config = ServeConfig(
        max_queue_depth=max(2 * len(requests), 64),
        max_batch_size=32,
        max_wait_s=0.002,
        cache_entries=0,
    )
    try:
        with ServeEngine(config, start=False) as engine:
            tickets = [
                engine.submit(
                    "lion",
                    request,
                    request_id=f"bench-{index}" if tracing else None,
                )
                for index, request in enumerate(requests)
            ]
            start = time.perf_counter()
            engine.start()
            for index, ticket in enumerate(tickets):
                ticket.result()
                if tracing:
                    take_request_spans(f"bench-{index}")
            wall = time.perf_counter() - start
    finally:
        if tracing:
            disable_tracing()
            reset_tracing()
            reset_request_spans()
    return len(requests) / wall


def run_serve_study(
    rounds: int, requests: int = 192, reads: int = 120
) -> Dict[str, object]:
    """Tracing-on vs tracing-off serving throughput, alternating per round.

    Metrics are enabled for both sides — production workers always run
    them — so the off/on ratio charges tracing only for what tracing
    adds on top of the standing metrics instrumentation.
    """
    from repro.obs import enable_metrics, get_registry
    from repro.serve.bench import build_requests

    stream = build_requests(requests, reads, seed=1)
    enable_metrics()
    try:
        _serve_replay(stream, tracing=False)  # warm caches/threads for both sides
        ratios: List[float] = []
        best_off = best_on = 0.0
        for round_index in range(rounds):
            if round_index % 2 == 0:
                off = _serve_replay(stream, tracing=False)
                on = _serve_replay(stream, tracing=True)
            else:
                on = _serve_replay(stream, tracing=True)
                off = _serve_replay(stream, tracing=False)
            best_off = max(best_off, off)
            best_on = max(best_on, on)
            ratios.append(off / on)
    finally:
        disable_metrics()
        get_registry().reset()
    overhead = _median(ratios) - 1.0
    return {
        "requests": requests,
        "reads": reads,
        "rounds": rounds,
        "tracing_off_rps": round(best_off, 2),
        "tracing_on_rps": round(best_on, 2),
        "overhead_fraction": round(overhead, 5),
    }


def run_study(rounds: int) -> Dict[str, object]:
    """Measure both solvers and assemble the JSON payload."""
    # The contract under test is the *disabled* mode; make it explicit.
    disable_tracing()
    disable_metrics()
    systems: List[LinearSystem] = [make_system(seed) for seed in range(SOLVES_PER_ROUND)]

    # Interleave warmup so neither solver benefits from cache priming alone.
    for system in systems:
        baseline_irls(system)
        solve_weighted_least_squares(system)
    baseline_s, instrumented_s, median_ratio = _time_paired(
        baseline_irls, solve_weighted_least_squares, systems, rounds=rounds
    )
    overhead = median_ratio - 1.0
    return {
        "benchmark": "obs_disabled_overhead",
        "equations": EQUATIONS,
        "solves_per_round": SOLVES_PER_ROUND,
        "rounds": rounds,
        "baseline_seconds": round(baseline_s, 6),
        "instrumented_seconds": round(instrumented_s, 6),
        "overhead_fraction": round(overhead, 5),
        "disabled_span_cost_ns": round(measure_disabled_span_cost() * 1e9, 2),
        "manifest": collect_manifest(seed=0, jobs=1).to_dict(),
    }


def test_bench_obs_overhead_smoke(benchmark):
    """Smoke-sized run: the payload assembles and overhead stays bounded.

    The pytest gate is looser than the CI ``--check`` threshold because a
    single smoke round on shared runners is noisy; the dedicated CI step
    runs more rounds and enforces the real bound.
    """
    payload = benchmark.pedantic(
        run_study, kwargs={"rounds": 5}, iterations=1, rounds=1
    )
    print()
    print("== obs disabled-mode overhead ==")
    print(f"  baseline:     {payload['baseline_seconds'] * 1000:8.2f} ms/round")
    print(f"  instrumented: {payload['instrumented_seconds'] * 1000:8.2f} ms/round")
    print(f"  overhead:     {payload['overhead_fraction'] * 100:8.2f} %")
    print(f"  span() off:   {payload['disabled_span_cost_ns']:8.1f} ns/call")
    assert payload["overhead_fraction"] < 0.25


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=49, help="timing rounds (default: 49)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (25 rounds)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when overhead exceeds --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.02,
        help="max tolerated overhead fraction for --check (default: 0.02)",
    )
    parser.add_argument(
        "--serve-rounds",
        type=int,
        default=7,
        help="serve-path replay rounds per side (default: 7)",
    )
    parser.add_argument(
        "--serve-threshold",
        type=float,
        default=0.05,
        help="max tolerated serve-path tracing overhead for --check (default: 0.05)",
    )
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the serve-path tracing study",
    )
    parser.add_argument(
        "--out", default="BENCH_obs_overhead.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    rounds = 25 if args.quick else args.rounds
    payload = run_study(rounds)
    if not args.no_serve:
        serve_rounds = 5 if args.quick else args.serve_rounds
        payload["serve_tracing"] = run_serve_study(serve_rounds)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    failed = False
    if args.check and payload["overhead_fraction"] > args.threshold:
        print(
            f"FAIL: overhead {payload['overhead_fraction']:.2%} exceeds "
            f"threshold {args.threshold:.2%}"
        )
        failed = True
    if args.check and not args.no_serve:
        serve_overhead = payload["serve_tracing"]["overhead_fraction"]
        if serve_overhead > args.serve_threshold:
            print(
                f"FAIL: serve tracing overhead {serve_overhead:.2%} exceeds "
                f"threshold {args.serve_threshold:.2%}"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
