"""Throughput and update latency of the streaming session layer.

Drives :class:`repro.stream.SessionManager` with 100 / 1 000 / 5 000
concurrent tag sessions — every session live at once, reads interleaved
round-robin in NDJSON-sized chunks, each session warming through its
fast RLS path and periodic windowed re-solves — and records sustained
reads/second plus p50/p99 per-chunk update latency per session count.
A sample of sessions is then verified **bit-identical**: the replayed
stream's final windowed re-solve must equal a one-shot batch estimate
over the same window, the end-to-end form of the incremental-assembly
identity ``repro.core.incremental`` guarantees.

CI runs the quick sizing on every PR and gates
``sessions.1000.reads_per_sec`` against
``benchmarks/baselines/BENCH_stream.json`` (20% tolerance plus an
absolute floor) with ``tools/check_bench_regression.py``; the nightly
slow job refreshes the baseline artifact at full sizing.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_stream.py --out BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_stream.py --quick   # CI sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_stream.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.pipeline import EstimationRequest
from repro.pipeline import estimate as pipeline_estimate
from repro.stream import SessionManager, StreamConfig

#: Concurrent-session counts measured (full sizing).
SESSION_COUNTS = (100, 1000, 5000)

#: Session counts in ``--quick`` (CI) sizing.
QUICK_SESSION_COUNTS = (100, 1000)

#: Reads fed per session: enough to warm the fast path and trigger one
#: windowed re-solve at the default cadence.
READS_PER_SESSION = 64

#: Reads per feed chunk (the NDJSON-chunk analogue).
CHUNK_READS = 16

#: Sessions sampled for the end-to-end bit-identity check.
IDENTITY_SAMPLE = 8

#: Wavelength used by the synthetic conveyor (the default lion config's).
_WAVELENGTH_M = 0.325640144467074


def _synthesize_reads(sessions: int, seed: int):
    """Per-session wrapped phases over one shared conveyor line.

    All sessions share the tag-position track (one linear scan), each
    with its own tag location and noise draw, so windows are solvable
    and no two sessions produce identical arithmetic.
    """
    rng = np.random.default_rng(seed)
    x = np.linspace(-1.0, 1.0, READS_PER_SESSION)
    positions = np.column_stack([x, np.zeros(READS_PER_SESSION)])
    tags = np.column_stack(
        [rng.uniform(-0.5, 0.5, sessions), rng.uniform(0.8, 1.4, sessions)]
    )
    distances = np.linalg.norm(
        positions[None, :, :] - tags[:, None, :], axis=2
    )
    noise = rng.normal(0.0, 0.05, (sessions, READS_PER_SESSION))
    phases = np.mod(4.0 * np.pi * distances / _WAVELENGTH_M + noise, 2.0 * np.pi)
    return positions, phases


def _run_scale(sessions: int, seed: int) -> dict:
    """One concurrency level: open all sessions, interleave all reads."""
    positions, phases = _synthesize_reads(sessions, seed)
    timestamps = np.linspace(0.0, 1.0, READS_PER_SESSION)
    manager = SessionManager(
        defaults=StreamConfig(), max_sessions=sessions + 1
    )
    ids = [
        manager.open_session(f"EPC-{index:05d}").session_id
        for index in range(sessions)
    ]

    chunk_latencies: list = []
    started = time.perf_counter()
    for chunk_start in range(0, READS_PER_SESSION, CHUNK_READS):
        chunk_end = min(chunk_start + CHUNK_READS, READS_PER_SESSION)
        chunk_range = range(chunk_start, chunk_end)
        for index, session_id in enumerate(ids):
            chunk = [
                (float(timestamps[k]), positions[k], float(phases[index, k]))
                for k in chunk_range
            ]
            chunk_started = time.perf_counter()
            manager.feed(session_id, chunk)
            chunk_latencies.append(time.perf_counter() - chunk_started)
    wall_s = time.perf_counter() - started

    # End-to-end bit-identity on a deterministic session sample: the
    # final windowed re-solve vs a one-shot estimate of the same window.
    sample = ids[:: max(1, sessions // IDENTITY_SAMPLE)][:IDENTITY_SAMPLE]
    identical = 0
    for session_id in sample:
        session = manager.get_session(session_id)
        final = session.final_resolve()
        assert final is not None, f"session {session_id} window did not solve"
        name, config, request = session.build_resolve_request()
        oneshot = pipeline_estimate(
            name,
            EstimationRequest(
                positions=request.positions, phases_rad=request.phases_rad
            ),
            config,
        )
        assert np.array_equal(
            np.asarray(final.position), np.asarray(oneshot.position)
        ), (
            f"windowed re-solve diverged from one-shot solve for {session_id}: "
            f"{final.position} vs {oneshot.position}"
        )
        identical += 1

    stats = manager.stats()
    drain = manager.drain()
    latencies_ms = np.asarray(chunk_latencies) * 1e3
    total_reads = sessions * READS_PER_SESSION
    return {
        "sessions": sessions,
        "reads_total": total_reads,
        "reads_per_sec": round(total_reads / wall_s, 1),
        "wall_s": round(wall_s, 3),
        "p50_feed_ms": round(float(np.percentile(latencies_ms, 50)), 4),
        "p99_feed_ms": round(float(np.percentile(latencies_ms, 99)), 4),
        "resolves": stats["resolves_direct"],
        "events": stats["events"],
        "identity_checked": len(sample),
        "identity_identical": identical,
        "drained": drain["sessions_drained"],
    }


def run_study(session_counts=SESSION_COUNTS, seed: int = 0) -> dict:
    """The full study: one scale run per concurrency level."""
    scales = {str(count): _run_scale(count, seed) for count in session_counts}
    return {
        "reads_per_session": READS_PER_SESSION,
        "chunk_reads": CHUNK_READS,
        "session_counts": list(session_counts),
        "sessions": scales,
    }


def test_bench_stream_sessions(benchmark):
    """Smoke-sized scale run: 100 concurrent sessions, identity holds."""
    payload = benchmark.pedantic(
        run_study, kwargs={"session_counts": (100,)}, iterations=1, rounds=1
    )
    scale = payload["sessions"]["100"]
    print()
    print("== streaming sessions, reads/second ==")
    print(
        f"  {scale['sessions']:>5} sessions: {scale['reads_per_sec']:10,.1f} reads/s   "
        f"p99 feed {scale['p99_feed_ms']:.3f} ms"
    )
    assert scale["identity_identical"] == scale["identity_checked"]
    assert scale["reads_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI sizing: session counts {QUICK_SESSION_COUNTS}",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--out", default="BENCH_stream.json", help="output JSON path")
    args = parser.parse_args(argv)
    counts = QUICK_SESSION_COUNTS if args.quick else SESSION_COUNTS
    payload = run_study(counts, seed=args.seed)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
