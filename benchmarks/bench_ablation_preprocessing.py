"""Ablation: signal preprocessing — smoothing window and Hampel rejection.

DESIGN.md design choice: the paper smooths the unwrapped profile with a
moving-average filter (Sec. IV-A2). This bench sweeps the window size and
toggles Hampel outlier rejection under two corruption regimes:

* white Gaussian noise — smoothing is the right tool;
* bursty outliers — the mean filter *smears* bursts into their
  neighbourhood; Hampel excises them first.
"""

import numpy as np

from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import BurstyPhaseNoise, GaussianPhaseNoise, SnrScaledPhaseNoise
from repro.trajectory.linear import LinearTrajectory


def _scans(noise_factory, repetitions, seed):
    rng = np.random.default_rng(seed)
    scans = []
    for _ in range(repetitions):
        antenna = Antenna(physical_center=(0.0, 0.8, 0.0), boresight=(0, -1, 0))
        scan = simulate_scan(
            LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)),
            antenna, rng=rng, noise=noise_factory(), read_rate_hz=60.0,
        )
        scans.append((scan, antenna.phase_center[:2]))
    return scans


def _error(scan, truth, window, hampel):
    localizer = LionLocalizer(
        dim=2,
        interval_m=0.25,
        preprocess=PreprocessConfig(
            smoothing_window=window, hampel_window=11 if hampel else 0
        ),
    )
    result = localizer.locate(scan.positions, scan.phases)
    return float(np.linalg.norm(result.position - truth))


def test_bench_smoothing_window_gaussian(benchmark):
    scans = _scans(lambda: GaussianPhaseNoise(0.15), repetitions=8, seed=21)

    def run():
        return {
            window: float(np.mean([_error(s, t, window, False) for s, t in scans]))
            for window in (1, 5, 9, 21, 51)
        }

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: smoothing window under Gaussian noise (cm) ==")
    for window, value in means.items():
        print(f"  window={window}: {value * 100:.3f}")

    # Some smoothing beats none under white noise.
    assert min(means[5], means[9], means[21]) <= means[1] * 1.1
    # All settings stay centimeter-capable (the solver averages anyway).
    assert all(value < 0.02 for value in means.values())


def test_bench_hampel_under_bursts(benchmark):
    def bursty():
        return BurstyPhaseNoise(
            base=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.8),
            burst_probability=0.08,
            burst_magnitude_rad=1.5,
        )

    scans = _scans(bursty, repetitions=8, seed=22)

    def run():
        return {
            "plain-ls-style (window 9)": float(
                np.mean([_error(s, t, 9, False) for s, t in scans])
            ),
            "hampel + window 9": float(
                np.mean([_error(s, t, 9, True) for s, t in scans])
            ),
            "no smoothing, WLS only": float(
                np.mean([_error(s, t, 1, False) for s, t in scans])
            ),
        }

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: Hampel rejection under bursty corruption (cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # Hampel-then-smooth is at least as good as smearing the bursts.
    assert means["hampel + window 9"] <= means["plain-ls-style (window 9)"] * 1.05
