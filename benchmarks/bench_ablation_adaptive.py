"""Ablation: adaptive parameter selection vs fixed parameters.

DESIGN.md design choice: instead of one hand-picked (range, interval),
LION sweeps a grid and averages the estimates whose residual criterion is
smallest (Sec. IV-C1). This bench compares the adaptive scheme against
fixed parameter choices, including deliberately bad ones, under the noisy
sweep channel.
"""

import numpy as np

from repro.core.adaptive import ParameterGrid, adaptive_localize
from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.experiments.scenarios import make_room_reflectors
from repro.rf.antenna import Antenna
from repro.rf.noise import BurstyPhaseNoise, SnrScaledPhaseNoise
from repro.trajectory.linear import LinearTrajectory


def test_bench_adaptive_vs_fixed(benchmark):
    rng = np.random.default_rng(17)
    grid = ParameterGrid(ranges_m=(0.6, 0.8, 1.0), intervals_m=(0.15, 0.25, 0.35))

    def run():
        adaptive_errors, fixed_good, fixed_bad = [], [], []
        for _ in range(6):
            antenna = Antenna(physical_center=(0.0, 0.8, 0.0), boresight=(0, -1, 0))
            reflectors = make_room_reflectors(antenna, strength=0.3)
            noise = BurstyPhaseNoise(
                base=SnrScaledPhaseNoise(
                    base_std_rad=0.3, reference_distance_m=0.8, max_std_rad=1.4
                ),
                burst_probability=0.03,
                burst_magnitude_rad=1.2,
            )
            scan = simulate_scan(
                LinearTrajectory((-1.25, 0, 0), (1.25, 0, 0)),
                antenna, rng=rng, noise=noise, reflectors=reflectors,
                read_rate_hz=30.0,
            )
            truth = antenna.phase_center[:2]
            localizer = LionLocalizer(dim=2)

            adaptive = adaptive_localize(localizer, scan.positions, scan.phases, grid=grid)
            adaptive_errors.append(np.linalg.norm(adaptive.position - truth))

            good = localizer.locate(
                scan.positions, scan.phases,
                exclude_mask=np.abs(scan.positions[:, 0]) > 0.4,
                interval_m=0.25,
            )
            fixed_good.append(np.linalg.norm(good.position - truth))

            bad = localizer.locate(
                scan.positions, scan.phases,
                exclude_mask=np.abs(scan.positions[:, 0]) > 1.25,
                interval_m=0.10,
            )
            fixed_bad.append(np.linalg.norm(bad.position - truth))
        return {
            "adaptive": float(np.mean(adaptive_errors)),
            "fixed-good(0.8m/0.25m)": float(np.mean(fixed_good)),
            "fixed-bad(2.5m/0.10m)": float(np.mean(fixed_bad)),
        }

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: adaptive parameter selection (mean error, cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # Adaptive never needs hand-tuning yet beats the bad fixed choice and
    # stays close to (or better than) the good one.
    assert means["adaptive"] < means["fixed-bad(2.5m/0.10m)"]
    assert means["adaptive"] < 2.0 * means["fixed-good(0.8m/0.25m)"] + 0.005
