"""Fig. 14(b): 2D tracking error vs depth under depth-growing multipath."""

import numpy as np

from benchmarks.conftest import regenerate


def test_bench_fig14b(benchmark):
    result = regenerate(benchmark, "fig14b")
    lion = np.array(result.column("lion_error_cm"), dtype=float)
    dah = np.array(result.column("dah_error_cm"), dtype=float)
    depths = np.array(result.column("depth_m"), dtype=float)

    # Near zone (<= 1.2 m): both methods are centimeter-accurate.
    near = depths <= 1.2
    assert np.mean(lion[near]) < 3.0
    assert np.mean(dah[near]) < 3.0

    # The far zone is harder than the near zone for at least one method —
    # the depth-growing multipath is doing its job.
    far = depths >= 1.4
    assert max(np.mean(lion[far]), np.mean(dah[far])) > min(
        np.mean(lion[near]), np.mean(dah[near])
    )
