"""Fig. 13(a): overall accuracy — calibration gain, LION vs DAH, 2D/3D."""

from benchmarks.conftest import regenerate


def test_bench_fig13a(benchmark):
    result = regenerate(benchmark, "fig13a")
    means = {row["case"]: row["mean_error_cm"] for row in result.rows}

    # Calibration improves accuracy in both dimensions (paper: 6x 2D,
    # 2.1x 3D; we assert a conservative >1.5x to absorb simulation noise).
    assert means["LION 2D+"] * 1.5 < means["LION 2D-"]
    assert means["LION 3D+"] * 1.5 < means["LION 3D-"]

    # Calibrated LION is centimeter-accurate or better.
    assert means["LION 2D+"] < 1.0
    assert means["LION 3D+"] < 3.0

    # The uncalibrated error is dominated by the hidden 2-3 cm displacement.
    assert 1.0 < means["LION 2D-"] < 4.0
