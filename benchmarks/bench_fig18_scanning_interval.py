"""Fig. 18: distance error vs scanning interval."""

import numpy as np

from benchmarks.conftest import regenerate


def test_bench_fig18(benchmark):
    result = regenerate(benchmark, "fig18")
    intervals = np.array(result.column("interval_m"), dtype=float)
    errors = np.array(result.column("mean_error_cm"), dtype=float)
    dirtiness = np.array(result.column("mean_abs_residual_mm"), dtype=float)

    # Small intervals are noise-dominated: errors drop markedly once the
    # interval reaches ~20 cm (paper). Compare the two extremes.
    assert errors[intervals >= 0.2].mean() < errors[intervals <= 0.15].mean()

    # The per-equation residual scale shrinks as the interval grows (the
    # same noise is divided by a larger phase difference).
    assert dirtiness[-1] < dirtiness[0]
