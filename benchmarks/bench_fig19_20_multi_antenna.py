"""Fig. 19+20: the multi-antenna case study across calibration levels."""

from benchmarks.conftest import regenerate


def test_bench_fig19_20(benchmark):
    result = regenerate(benchmark, "fig19_20")
    errors = {row["case"]: row["error_cm"] for row in result.rows}

    none = errors["tag error, calibration=none"]
    center = errors["tag error, calibration=center"]
    full = errors["tag error, calibration=full"]

    # Each calibration level helps; the fully calibrated system is the
    # most accurate (paper: 8.49 -> 5.76 -> 4.68 cm).
    assert full < center
    assert full < none
    assert full < 2.0

    # The phase-center estimates themselves are sub-centimeter.
    for name in ("A1", "A2", "A3"):
        assert errors[f"{name} displacement est/true (cm)"] < 1.0
