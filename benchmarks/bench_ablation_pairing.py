"""Ablation: pair selection — structured (Sec. IV-B1) vs random vs all-pairs.

DESIGN.md design choice: the paper selects pairs axis-by-axis on the
three-line scan to keep the system well-conditioned. This bench compares
that structured pairing against naive alternatives on the same scan data.
"""

import numpy as np

from repro.core.pairing import all_pairs, random_pairs, three_line_pairs
from repro.core.solvers import solve_weighted_least_squares
from repro.core.system import build_system, delta_distances
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.signalproc.unwrap import unwrap_phase
from repro.trajectory.multiline import ThreeLineScan


def _prepare(rng):
    antenna = Antenna(physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0))
    scan = simulate_scan(
        ThreeLineScan(-0.5, 0.5), antenna, rng=rng,
        noise=GaussianPhaseNoise(0.08), read_rate_hz=40.0,
    )
    keep = ~scan.exclude_mask
    positions = scan.positions[keep]
    profile = unwrap_phase(scan.phases)[keep]
    segments = scan.segment_ids[keep]
    deltas = delta_distances(profile, positions.shape[0] // 2)
    return positions, deltas, segments, antenna.phase_center


def test_bench_pairing_strategies(benchmark):
    rng = np.random.default_rng(9)

    def run():
        errors = {"structured": [], "random": [], "all-pairs": []}
        for _ in range(5):
            positions, deltas, segments, truth = _prepare(rng)
            n = positions.shape[0]
            ids = tuple(int(v) for v in np.unique(segments))
            strategies = {
                "structured": three_line_pairs(
                    positions, segments, 0.25, line_ids=ids
                ),
                "random": random_pairs(n, min(3 * n, n * (n - 1) // 2), rng),
                "all-pairs": all_pairs(n, max_pairs=3 * n),
            }
            for name, pairs in strategies.items():
                system = build_system(positions, deltas, pairs, dim=3)
                solution = solve_weighted_least_squares(system)
                errors[name].append(
                    float(np.linalg.norm(solution.position - truth))
                )
        return {name: float(np.mean(values)) for name, values in errors.items()}

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: pairing strategy (mean 3D error, cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # The structured pairing must be competitive with the best alternative
    # (its real advantage is conditioning and row count, not raw accuracy
    # on clean data).
    best_other = min(means["random"], means["all-pairs"])
    assert means["structured"] < max(2.0 * best_other, best_other + 0.01)
    assert means["structured"] < 0.05
