"""Ablation: stitched single-datum scan vs multi-reference separate sweeps.

DESIGN.md design choice: the paper makes multi-line scans continuous (so
one phase datum covers them); the multi-reference extension drops that
requirement at the cost of noise amplification in the trilaterated
coordinates. This bench quantifies the trade on identical geometry.
"""

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer
from repro.core.multiref import locate_multireference
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.trajectory.multiline import ThreeLineScan


def test_bench_stitched_vs_multireference(benchmark):
    rng = np.random.default_rng(77)

    def run():
        stitched_errors, separate_errors = [], []
        for _ in range(6):
            antenna = Antenna(
                physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0)
            )
            truth = antenna.phase_center

            # Continuous scan with transits -> single-datum pipeline.
            scan = simulate_scan(
                ThreeLineScan(-0.5, 0.5), antenna, rng=rng,
                noise=GaussianPhaseNoise(0.05), read_rate_hz=40.0,
            )
            result = LionLocalizer(dim=3, interval_m=0.25).locate(
                scan.positions, scan.phases,
                segment_ids=scan.segment_ids, exclude_mask=scan.exclude_mask,
            )
            stitched_errors.append(np.linalg.norm(result.position - truth))

            # Same three lines scanned separately: independent datums.
            keep = ~scan.exclude_mask
            positions = scan.positions[keep]
            segments = scan.segment_ids[keep]
            runs = np.searchsorted(np.unique(segments), segments)
            phases = np.zeros(positions.shape[0])
            for run in np.unique(runs):
                members = np.flatnonzero(runs == run)
                distances = np.linalg.norm(positions[members] - truth, axis=1)
                phases[members] = np.mod(
                    2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
                    + rng.uniform(0, TWO_PI)
                    + rng.normal(0, 0.05, members.size),
                    TWO_PI,
                )
            solution = locate_multireference(
                positions, phases, runs, dim=3, interval_m=0.25
            )
            separate_errors.append(np.linalg.norm(solution.position - truth))
        return {
            "stitched": float(np.mean(stitched_errors)),
            "multireference": float(np.mean(separate_errors)),
        }

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: stitched vs multi-reference 3D calibration (cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # Both are centimeter-capable; the stitched pipeline is expected to be
    # at least as accurate (one datum = more cross-line information).
    assert means["stitched"] < 0.02
    assert means["multireference"] < 0.06
