"""Fleet recalibration throughput and registry latency under load.

Exercises the whole calibration-registry loop (:mod:`repro.calib` over
:mod:`repro.datasets.fleet`) at fleet sizes 10 / 100 / 500: seed every
antenna from a known-trajectory scan, drift the fleet half a day, then
measure

* **recalibration throughput** — antennas recalibrated per second when
  one scheduler cycle fans the calibration solves through the process
  executor and commits versions under compare-and-swap;
* **store read latency under serve load** — p50/p99 of the resolver-path
  reads (``offsets_for`` + ``centers_for``) while a background thread
  commits fresh versions into the same store, the contention pattern a
  serving front end sees during a rolling recalibration;
* **staleness-detection lag** — wall time of one full
  :class:`repro.calib.DriftMonitor` fleet evaluation, i.e. how long
  after a drift alarm the fleet health verdict can flip.

One antenna per fleet is re-solved directly and compared against the
committed record, so the bench also proves the fanned-out path is
**bit-identical** to an in-process :func:`calibrate_antenna` call.

CI runs the quick sizing on every PR and gates
``fleets.10.recal_antennas_per_sec`` against
``benchmarks/baselines/BENCH_calib_fleet.json`` (20% tolerance plus an
absolute floor); the nightly slow job refreshes the baseline artifact at
full sizing.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_calib_fleet.py --out BENCH_calib_fleet.json
    PYTHONPATH=src python benchmarks/bench_calib_fleet.py --quick   # CI sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_calib_fleet.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time

import numpy as np

from repro.calib import (
    CalibrationStore,
    DriftMonitor,
    RecalibrationScheduler,
    StalenessPolicy,
    fleet_scan_source,
    solve_calibration_task,
)
from repro.datasets.fleet import AntennaFleet, FleetDriftConfig

#: Fleet sizes measured (full sizing).
FLEET_SIZES = (10, 100, 500)

#: Fleet sizes in ``--quick`` (CI) sizing.
QUICK_FLEET_SIZES = (10,)

#: Simulated drift applied between the seed pass and the timed
#: recalibration cycle (hours).
DRIFT_HOURS = 12.0

#: Resolver-path reads timed per fleet for the latency percentiles.
READ_SAMPLES = 400

#: DriftMonitor fleet evaluations timed per fleet.
DETECT_SAMPLES = 20


def _read_latency_under_load(store: CalibrationStore, fleet: AntennaFleet) -> dict:
    """p50/p99 of resolver-path reads while a thread commits versions.

    The writer loop re-commits the latest record of each antenna in
    round-robin (cheap but exercises the full lock + fsync path), which
    is the contention a serving resolver sees during a rolling
    recalibration: every commit bumps the generation and forces the next
    read to miss its cache.
    """
    names = fleet.names
    stop = threading.Event()
    commits = [0]

    def writer() -> None:
        index = 0
        while not stop.is_set():
            name = names[index % len(names)]
            record = store.latest(name)
            store.commit(
                record.to_calibration(),
                source="manual",
                reads=record.reads,
                residual_rms_m=record.residual_rms_m,
            )
            commits[0] += 1
            index += 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    latencies = np.empty(READ_SAMPLES)
    try:
        for sample in range(READ_SAMPLES):
            started = time.perf_counter()
            store.offsets_for(names)
            store.centers_for(names, dim=2)
            latencies[sample] = time.perf_counter() - started
    finally:
        stop.set()
        thread.join()
    micros = latencies * 1e6
    return {
        "reads": READ_SAMPLES,
        "commits_during_load": commits[0],
        "read_p50_us": round(float(np.percentile(micros, 50)), 2),
        "read_p99_us": round(float(np.percentile(micros, 99)), 2),
    }


def _detection_latency(store: CalibrationStore, fleet: AntennaFleet) -> dict:
    """Staleness-detection pass latency: one full fleet evaluation.

    Every antenna gets enough drift alarms to trip the policy first, so
    the timed pass does the full alarm-window arithmetic and flags the
    whole fleet — the worst-case verdict.
    """
    monitor = DriftMonitor(store, StalenessPolicy(max_drift_alarms=2))
    for name in fleet.names:
        for _ in range(3):
            monitor.observe_alarm(name, drift_m=0.05)
    passes = np.empty(DETECT_SAMPLES)
    for sample in range(DETECT_SAMPLES):
        started = time.perf_counter()
        health = monitor.evaluate()
        passes[sample] = time.perf_counter() - started
    assert len(health.stale()) == len(fleet.names), "alarms did not flag the fleet"
    millis = passes * 1e3
    return {
        "stale_flagged": len(health.stale()),
        "detect_p50_ms": round(float(np.percentile(millis, 50)), 4),
        "detect_p99_ms": round(float(np.percentile(millis, 99)), 4),
    }


def _run_fleet(size: int, seed: int, executor: str) -> dict:
    """One fleet size: seed, drift, timed recalibration cycle, latencies."""
    fleet = AntennaFleet(FleetDriftConfig(size=size, seed=seed))
    with tempfile.TemporaryDirectory(prefix="bench-calib-") as root:
        store = CalibrationStore(root)
        seeder = RecalibrationScheduler(
            store, fleet_scan_source(fleet), executor=executor, source="seed"
        )
        seed_started = time.perf_counter()
        seed_report = seeder.recalibrate(fleet.names)
        seed_s = time.perf_counter() - seed_started
        assert not seed_report.failures, f"seed pass failed: {seed_report.failures}"

        fleet.advance(DRIFT_HOURS * 3600.0)
        scheduler = RecalibrationScheduler(
            store, fleet_scan_source(fleet, salt=1), executor=executor
        )
        report = scheduler.recalibrate(fleet.names)
        assert not report.failures, f"recalibration failed: {report.failures}"
        assert len(report.committed) == size

        # The fanned-out solve must be bit-identical to an in-process one.
        probe = fleet.names[size // 2]
        task = scheduler.build_tasks([probe])[0]
        direct = solve_calibration_task(task)
        committed = store.latest(probe)
        identity_ok = bool(
            committed.phase_offset_rad == direct.calibration.phase_offset_rad
            and np.array_equal(
                np.asarray(committed.estimated_center),
                np.asarray(direct.calibration.estimated_center),
            )
        )
        assert identity_ok, f"fan-out diverged from direct solve for {probe}"

        payload = {
            "size": size,
            "seed_commit_s": round(seed_s, 3),
            "recal_cycle_s": round(report.duration_s, 3),
            "recal_committed": len(report.committed),
            "recal_antennas_per_sec": round(report.antennas_per_sec, 2),
            "identity_ok": identity_ok,
        }
        payload.update(_detection_latency(store, fleet))
        payload.update(_read_latency_under_load(store, fleet))
        return payload


def run_study(
    fleet_sizes=FLEET_SIZES, seed: int = 0, executor: str = "process"
) -> dict:
    """The full study: one run per fleet size."""
    fleets = {str(size): _run_fleet(size, seed, executor) for size in fleet_sizes}
    return {
        "drift_hours": DRIFT_HOURS,
        "executor": executor,
        "fleet_sizes": list(fleet_sizes),
        "fleets": fleets,
    }


def test_bench_calib_fleet(benchmark):
    """Smoke-sized run: the 10-antenna fleet loop, identity holds."""
    payload = benchmark.pedantic(
        run_study,
        kwargs={"fleet_sizes": (10,), "executor": "serial"},
        iterations=1,
        rounds=1,
    )
    fleet = payload["fleets"]["10"]
    print()
    print("== fleet recalibration, antennas/second ==")
    print(
        f"  {fleet['size']:>4} antennas: {fleet['recal_antennas_per_sec']:8.2f} ant/s   "
        f"detect p99 {fleet['detect_p99_ms']:.3f} ms   "
        f"read p99 {fleet['read_p99_us']:.1f} us"
    )
    assert fleet["identity_ok"]
    assert fleet["recal_committed"] == 10
    assert fleet["recal_antennas_per_sec"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI sizing: fleet sizes {QUICK_FLEET_SIZES}",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="process",
        help="repro.parallel backend the scheduler fans solves through",
    )
    parser.add_argument(
        "--out", default="BENCH_calib_fleet.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    sizes = QUICK_FLEET_SIZES if args.quick else FLEET_SIZES
    payload = run_study(sizes, seed=args.seed, executor=args.executor)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
