"""Scaling characterization: LION's cost vs scan size and worker count.

The light-weight claim, quantified: the full pipeline (unwrap + smooth +
pair + WLS) should scale near-linearly in the number of reads — it is a
fixed number of passes over the data plus one (dim+1)-unknown solve —
where the hologram's cost scales with reads x grid cells. The second half
characterizes the executor backends of :mod:`repro.parallel` on a
Monte-Carlo workload (see ``bench_parallel.py`` for the JSON artifact CI
consumes).
"""

import time

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer
from repro.experiments.montecarlo import run_monte_carlo
from repro.parallel import EXECUTOR_NAMES, resolve_jobs


def _scan(n, target=np.array([0.1, 0.9]), seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(-0.6, 0.6, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + rng.normal(0.0, 0.05, n),
        TWO_PI,
    )
    return positions, phases


@pytest.mark.parametrize("reads", [500, 2000, 8000])
def test_bench_pipeline_vs_reads(benchmark, reads):
    positions, phases = _scan(reads)
    localizer = LionLocalizer(dim=2, interval_m=0.25)
    result = benchmark(localizer.locate, positions, phases)
    assert np.all(np.isfinite(result.position))


def test_bench_scaling_is_subquadratic(benchmark):
    """Doubling the reads must not quadruple the cost."""

    def run():
        timings = {}
        for reads in (1000, 2000, 4000, 8000):
            positions, phases = _scan(reads)
            localizer = LionLocalizer(dim=2, interval_m=0.25)
            start = time.perf_counter()
            for _ in range(3):
                localizer.locate(positions, phases)
            timings[reads] = (time.perf_counter() - start) / 3.0
        return timings

    timings = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== scaling: full pipeline seconds vs reads ==")
    for reads, seconds in timings.items():
        print(f"  {reads:>5} reads: {seconds * 1000:8.2f} ms")
    growth = timings[8000] / timings[1000]
    print(f"  8x reads -> {growth:.1f}x time")
    assert growth < 24.0  # near-linear with slack for the O(n·w) smoother


def _scaling_trial(rng):
    positions, _ = _scan(1500)
    target = np.array([0.1, 0.9])
    distances = np.linalg.norm(positions - target, axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + rng.normal(0.0, 0.05, positions.shape[0]),
        TWO_PI,
    )
    result = LionLocalizer(dim=2, interval_m=0.25).locate(positions, phases)
    return {"error_m": float(np.linalg.norm(result.position - target))}


def test_bench_monte_carlo_executor_backends(benchmark):
    """Backend comparison on one Monte-Carlo study; answers must agree."""

    def run():
        timings = {}
        means = {}
        for backend in EXECUTOR_NAMES:
            start = time.perf_counter()
            result = run_monte_carlo(
                _scaling_trial, trials=24, seed=0, executor=backend
            )
            timings[backend] = time.perf_counter() - start
            means[backend] = result["error_m"].mean
        return timings, means

    timings, means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"== monte-carlo backends, seconds ({resolve_jobs()} workers) ==")
    for backend, seconds in timings.items():
        print(f"  {backend:>8}: {seconds * 1000:8.1f} ms")
    assert means["thread"] == means["serial"]
    assert means["process"] == means["serial"]