"""Fig. 6: LION vs hologram with the antenna at different directions."""

from benchmarks.conftest import regenerate


def test_bench_fig06(benchmark):
    result = regenerate(benchmark, "fig06")
    by_key = {(row["direction_deg"], row["method"]): row for row in result.rows}

    # Comparable accuracy: LION within 2x of DAH everywhere (and all cm-scale).
    for direction in (0.0, 45.0, 90.0):
        lion = by_key[(direction, "LION")]["mean_error_cm"]
        dah = by_key[(direction, "DAH")]["mean_error_cm"]
        assert lion < max(2.0 * dah, dah + 1.0)
        assert lion < 5.0

    # Axis errors follow the antenna direction (errors distribute along the
    # trajectory-center-to-antenna line): at 0 deg the x error dominates,
    # at 90 deg the y error dominates.
    row0 = by_key[(0.0, "LION")]
    row90 = by_key[(90.0, "LION")]
    assert row0["mean_abs_x_cm"] > row0["mean_abs_y_cm"]
    assert row90["mean_abs_y_cm"] > row90["mean_abs_x_cm"]
