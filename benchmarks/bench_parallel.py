"""Serial-vs-parallel throughput of the Monte-Carlo evaluation engine.

Measures one representative workload — a full LION localization per trial
— on every executor backend, verifies the backends agree bit-for-bit, and
records the speedups as JSON (``BENCH_parallel.json``). CI runs this as a
smoke job and uploads the JSON as a workflow artifact, so the parallel
layer's speedup is measured (and regressions are visible) on every PR.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI smoke sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_parallel.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer
from repro.experiments.montecarlo import run_monte_carlo
from repro.obs import collect_manifest
from repro.parallel import EXECUTOR_NAMES, resolve_jobs

#: Scan size per trial; large enough that one trial is real work (~ms).
READS_PER_TRIAL = 600

_TARGET = np.array([0.12, 0.85])
_X = np.linspace(-0.6, 0.6, READS_PER_TRIAL)
_POSITIONS = np.stack([_X, np.zeros_like(_X)], axis=1)
_DISTANCES = np.linalg.norm(_POSITIONS - _TARGET, axis=1)


def localization_trial(rng: np.random.Generator) -> Dict[str, float]:
    """One Monte-Carlo trial: noisy scan in, localization error out.

    Module-level so the process backend can pickle it.
    """
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * _DISTANCES
        + rng.normal(0.0, 0.05, READS_PER_TRIAL),
        TWO_PI,
    )
    localizer = LionLocalizer(dim=2, interval_m=0.25)
    result = localizer.locate(_POSITIONS, phases)
    return {"error_m": float(np.linalg.norm(result.position - _TARGET))}


def run_study(trials: int, jobs: int) -> Dict[str, object]:
    """Time the study on every backend and assemble the JSON payload."""
    timings: Dict[str, float] = {}
    means: Dict[str, float] = {}
    for backend in EXECUTOR_NAMES:
        start = time.perf_counter()
        result = run_monte_carlo(
            localization_trial, trials=trials, seed=0, executor=backend, jobs=jobs
        )
        timings[backend] = time.perf_counter() - start
        means[backend] = result["error_m"].mean
    # Parallelism must not change the answer, only the wall clock.
    assert means["thread"] == means["serial"], "thread backend changed the result"
    assert means["process"] == means["serial"], "process backend changed the result"
    return {
        "benchmark": "monte_carlo_parallel",
        "trials": trials,
        "reads_per_trial": READS_PER_TRIAL,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "speedup_thread": round(timings["serial"] / timings["thread"], 3),
        "speedup_process": round(timings["serial"] / timings["process"], 3),
        "mean_error_m": means["serial"],
        "manifest": collect_manifest(
            seed=0,
            jobs=jobs,
            config={"trials": trials, "reads_per_trial": READS_PER_TRIAL},
        ).to_dict(),
    }


def test_bench_parallel_backends_agree(benchmark):
    """Smoke-sized study: backends agree and the JSON payload assembles."""
    payload = benchmark.pedantic(
        run_study, kwargs={"trials": 40, "jobs": resolve_jobs()}, iterations=1, rounds=1
    )
    print()
    print("== monte-carlo backends, seconds ==")
    for name, seconds in payload["seconds"].items():
        print(f"  {name:>8}: {seconds * 1000:8.1f} ms")
    print(f"  process speedup: {payload['speedup_process']:.2f}x")
    assert payload["mean_error_m"] < 0.05


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trials", type=int, default=500, help="Monte-Carlo trials (default: 500)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (100 trials)"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker count (default: resolve_jobs())"
    )
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    trials = 100 if args.quick else args.trials
    jobs = resolve_jobs(args.jobs)
    payload = run_study(trials, jobs)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
