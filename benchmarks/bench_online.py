"""Micro-benchmarks of the streaming localizer (extension).

Quantifies the per-read update cost — the number that matters on an edge
node — and verifies the stream matches batch accuracy on the same data.
"""

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer
from repro.core.online import OnlineLionLocalizer


def _stream(target, n=2000, noise=0.06, seed=3):
    rng = np.random.default_rng(seed)
    x = np.linspace(-0.6, 0.6, n)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + 0.7
        + rng.normal(0.0, noise, n),
        TWO_PI,
    )
    return positions, phases


def test_bench_online_per_read_update(benchmark):
    target = np.array([0.1, 0.9])
    positions, phases = _stream(target)
    online = OnlineLionLocalizer(dim=2, pair_lag=300)

    index = {"value": 0}

    def one_read():
        i = index["value"] % len(positions)
        if i == 0:
            online.reset()
        online.add_read(positions[i], phases[i])
        index["value"] += 1

    benchmark(one_read)


def test_bench_online_vs_batch_accuracy(benchmark):
    target = np.array([0.1, 0.9])
    positions, phases = _stream(target)

    def run():
        online = OnlineLionLocalizer(dim=2, pair_lag=300)
        for position, phase in zip(positions, phases):
            online.add_read(position, phase)
        streaming = online.estimate().position
        batch = LionLocalizer(dim=2, interval_m=0.3).locate(positions, phases).position
        return (
            float(np.linalg.norm(streaming - target)),
            float(np.linalg.norm(batch - target)),
        )

    streaming_error, batch_error = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        f"== online vs batch: streaming {streaming_error * 100:.3f} cm, "
        f"batch {batch_error * 100:.3f} cm =="
    )
    assert streaming_error < 0.01
    assert batch_error < 0.01