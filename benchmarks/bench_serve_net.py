"""Loopback load test of the networked sharded serving front end.

Boots ``repro.serve.net`` servers (process workers, result cache off so
every request pays its real solve) at 1/4/8 shards and drives two load
protocols over HTTP on loopback:

- **closed loop** — a fixed client fleet, each client keeping exactly
  one request in flight: 6 LION config groups x 2 clients plus one
  hologram client whose grid search costs ~100x a LION solve. This is
  the mixed-traffic shape shard-by-``(estimator, config_hash)`` routing
  exists for: with one shard, every cheap LION request queues behind
  whatever hologram solve holds the single engine's dispatch thread
  (head-of-line blocking); with shards, the hologram group is pinned to
  its own worker process and the OS preempts it, so cheap traffic flows
  at its own pace even on a single CPU. Reported per shard count:
  requests/second, LION p50/p99 latency, and per-class counts; the
  ``speedup_4_vs_1`` ratio is the committed gate (>= 2.5).
- **open loop** — requests fired at a fixed offered rate regardless of
  completions, past single-CPU capacity: 6 medium-cost hologram groups
  (distinct ``grid_size_m`` so they spread across shards) at 250 req/s
  against a per-shard inflight cap of 32 and a 750 ms client deadline.
  This exercises the shedding path: the supervisor's inflight bound
  returns 429 (``Retry-After``) and deadline breaches return 504.
  Reported: offered/completed rates, shed rate, and success-latency
  percentiles.

The LION group configs differ only in ``max_iterations`` — values picked
so the 6 groups spread evenly across shards (2 per shard at 4 shards,
distinct shards at 8) while the hologram group sits alone on shard 2 of
both; routing is a stable digest, so the placement is reproducible.
A sample request per group is also solved in-process and compared
**bit-identically** against the wire answer (JSON round-trips float64
exactly via ``repr``).

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_serve_net.py --out BENCH_serve_net.json
    PYTHONPATH=src python benchmarks/bench_serve_net.py --quick --shards 1,4

The committed baseline lives at
``benchmarks/baselines/BENCH_serve_net.json``; CI gates the quick sizing
with ``tools/check_bench_regression.py --metric speedup_4_vs_1:min=2.5``
and the nightly slow job diffs the full 1/4/8 run against the baseline.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pipeline import estimate
from repro.pipeline.contract import EstimationRequest
from repro.serve.bench import build_requests
from repro.serve.engine import ServeConfig
from repro.serve.net import NetServeConfig, ServerHandle

#: ``max_iterations`` per LION config group. Chosen so the groups place
#: 2-per-shard on shards {0, 1, 3} at 4 shards and on 6 distinct shards
#: at 8 — never on shard 2, which the hologram group owns alone.
LION_GROUPS: Tuple[int, ...] = (7, 11, 12, 13, 20, 24)

#: Closed-loop clients per LION group.
CLIENTS_PER_GROUP = 2

#: The expensive group: a hologram grid search of ~300 ms per solve
#: (vs ~1.5 ms per LION solve), the head-of-line blocker.
HOLOGRAM_CONFIG = {"grid_size_m": 0.01}
HOLOGRAM_READS = 250
HOLOGRAM_BOUNDS = [[-0.4, 0.4], [0.5, 1.3]]

#: Reads per LION scan (paper-scale line scan).
LION_READS = 400

#: Distinct request bodies cycled per closed-loop client (the server
#: cache is disabled, so reuse does not shortcut the solve).
BODIES_PER_CLIENT = 4

#: Open-loop traffic: medium-cost hologram groups (~4-15 ms per solve),
#: ``grid_size_m`` values picked to spread across shards — shards
#: {1, 3, 2, 0, 0, 1} at 4 shards, 6 distinct shards at 8.
OPEN_LOOP_GRIDS: Tuple[float, ...] = (0.016, 0.017, 0.018, 0.019, 0.021, 0.024)
OPEN_LOOP_READS = 60
OPEN_LOOP_BOUNDS = [[-0.3, 0.3], [0.6, 1.2]]

#: Open-loop driver sizing: connections in the client pool, offered
#: rate (past the ~100 req/s single-CPU hologram capacity), client
#: deadline, and the supervisor inflight cap that triggers 429s.
OPEN_LOOP_CONNECTIONS = 24
OPEN_LOOP_RATE_PER_SEC = 250.0
OPEN_LOOP_DEADLINE_MS = 750.0
MAX_INFLIGHT_PER_SHARD = 32


def _server_config(shards: int) -> NetServeConfig:
    return NetServeConfig(
        port=0,
        shards=shards,
        worker_mode="process",
        max_inflight_per_shard=MAX_INFLIGHT_PER_SHARD,
        engine=ServeConfig(max_wait_s=0.002, cache_entries=0),
    )


def _lion_request(group: int, index: int) -> EstimationRequest:
    return build_requests(1, LION_READS, seed=1000 * group + index)[0]


def _lion_body(group: int, index: int) -> bytes:
    request = _lion_request(group, index)
    return json.dumps(
        {
            "estimator": "lion",
            "config": {"max_iterations": group},
            "request": {
                "positions": request.positions.tolist(),
                "phases_rad": request.phases_rad.tolist(),
            },
        }
    ).encode()


def _hologram_body(index: int) -> bytes:
    request = build_requests(1, HOLOGRAM_READS, seed=9000 + index)[0]
    return json.dumps(
        {
            "estimator": "hologram",
            "config": HOLOGRAM_CONFIG,
            "request": {
                "positions": request.positions.tolist(),
                "phases_rad": request.phases_rad.tolist(),
                "bounds": HOLOGRAM_BOUNDS,
            },
        }
    ).encode()


def _post(
    conn: http.client.HTTPConnection, body: bytes
) -> Tuple[int, bytes]:
    conn.request("POST", "/v1/locate", body=body)
    response = conn.getresponse()
    return response.status, response.read()


def _percentiles_ms(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {"p50_ms": float("nan"), "p99_ms": float("nan")}
    values = np.asarray(latencies) * 1e3
    return {
        "p50_ms": round(float(np.percentile(values, 50)), 3),
        "p99_ms": round(float(np.percentile(values, 99)), 3),
    }


# ----------------------------------------------------------------------
# closed loop
# ----------------------------------------------------------------------
def _closed_client(
    port: int,
    bodies: List[bytes],
    stop: threading.Event,
    sink: List[Tuple[int, int, List[float]]],
) -> None:
    """One closed-loop client: exactly one request in flight, forever."""
    conn = http.client.HTTPConnection("127.0.0.1", port)
    latencies: List[float] = []
    completed = 0
    errors = 0
    index = 0
    while not stop.is_set():
        started = time.perf_counter()
        try:
            status, _ = _post(conn, bodies[index % len(bodies)])
        except OSError:
            errors += 1
            conn.close()
            conn = http.client.HTTPConnection("127.0.0.1", port)
            continue
        if status == 200:
            completed += 1
            latencies.append(time.perf_counter() - started)
        else:
            errors += 1
        index += 1
    conn.close()
    sink.append((completed, errors, latencies))


def run_closed_loop(handle: ServerHandle, duration_s: float) -> Dict[str, object]:
    """Drive the fixed mixed-traffic fleet for ``duration_s`` seconds."""
    stop = threading.Event()
    lion_sink: List[Tuple[int, int, List[float]]] = []
    holo_sink: List[Tuple[int, int, List[float]]] = []
    threads: List[threading.Thread] = []
    for group in LION_GROUPS:
        for client in range(CLIENTS_PER_GROUP):
            bodies = [
                _lion_body(group, client * BODIES_PER_CLIENT + body)
                for body in range(BODIES_PER_CLIENT)
            ]
            threads.append(
                threading.Thread(
                    target=_closed_client, args=(handle.port, bodies, stop, lion_sink)
                )
            )
    threads.append(
        threading.Thread(
            target=_closed_client,
            args=(handle.port, [_hologram_body(0)], stop, holo_sink),
        )
    )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    lion_completed = sum(done for done, _, _ in lion_sink)
    holo_completed = sum(done for done, _, _ in holo_sink)
    errors = sum(err for _, err, _ in lion_sink + holo_sink)
    lion_latencies = [value for _, _, lats in lion_sink for value in lats]
    return {
        "requests_per_sec": round((lion_completed + holo_completed) / wall, 2),
        "lion_completed": lion_completed,
        "hologram_completed": holo_completed,
        "errors": errors,
        "duration_s": round(wall, 3),
        **{f"lion_{k}": v for k, v in _percentiles_ms(lion_latencies).items()},
    }


# ----------------------------------------------------------------------
# open loop
# ----------------------------------------------------------------------
def _open_worker(
    port: int,
    feed: "List[Optional[bytes]]",
    feed_lock: threading.Lock,
    available: threading.Semaphore,
    sink: List[Tuple[int, int, int, List[float]]],
) -> None:
    """One pooled connection draining the paced feed until the ``None`` mark."""
    conn = http.client.HTTPConnection("127.0.0.1", port)
    completed = 0
    shed = 0
    errors = 0
    latencies: List[float] = []
    while True:
        available.acquire()
        with feed_lock:
            body = feed.pop(0)
        if body is None:
            break
        started = time.perf_counter()
        try:
            status, _ = _post(conn, body)
        except OSError:
            errors += 1
            conn.close()
            conn = http.client.HTTPConnection("127.0.0.1", port)
            continue
        if status == 200:
            completed += 1
            latencies.append(time.perf_counter() - started)
        elif status in (429, 503, 504):
            shed += 1
        else:
            errors += 1
    conn.close()
    sink.append((completed, shed, errors, latencies))


def _open_body(index: int) -> bytes:
    request = build_requests(1, OPEN_LOOP_READS, seed=5000 + index)[0]
    return json.dumps(
        {
            "estimator": "hologram",
            "config": {"grid_size_m": OPEN_LOOP_GRIDS[index % len(OPEN_LOOP_GRIDS)]},
            "request": {
                "positions": request.positions.tolist(),
                "phases_rad": request.phases_rad.tolist(),
                "bounds": OPEN_LOOP_BOUNDS,
            },
            "deadline_ms": OPEN_LOOP_DEADLINE_MS,
        }
    ).encode()


def run_open_loop(handle: ServerHandle, duration_s: float) -> Dict[str, object]:
    """Fire hologram requests at a fixed offered rate, past capacity.

    The pacing thread appends to a shared feed on a wall-clock schedule
    — independent of completions, the defining property of an open-loop
    driver — and a fixed connection pool drains it. 429/503/504 count as
    shed; the deadline rides along so stale queued requests breach
    server-side instead of jamming the queue. When the window closes,
    the unsent backlog is dropped (reported as ``unsent``), so trailing
    drain does not distort the rates.
    """
    bodies = [_open_body(index) for index in range(len(OPEN_LOOP_GRIDS))]
    feed: "List[Optional[bytes]]" = []
    feed_lock = threading.Lock()
    available = threading.Semaphore(0)
    sink: List[Tuple[int, int, int, List[float]]] = []
    workers = [
        threading.Thread(
            target=_open_worker,
            args=(handle.port, feed, feed_lock, available, sink),
        )
        for _ in range(OPEN_LOOP_CONNECTIONS)
    ]
    for worker in workers:
        worker.start()
    offered = 0
    interval = 1.0 / OPEN_LOOP_RATE_PER_SEC
    started = time.perf_counter()
    while True:
        now = time.perf_counter() - started
        if now >= duration_s:
            break
        due = int(now / interval) + 1
        while offered < due:
            with feed_lock:
                feed.append(bodies[offered % len(bodies)])
            available.release()
            offered += 1
        time.sleep(min(interval, 0.005))
    window = time.perf_counter() - started
    with feed_lock:
        unsent = len(feed)
        feed.clear()
        feed.extend([None] * len(workers))
    for _ in workers:
        available.release()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    completed = sum(done for done, _, _, _ in sink)
    shed = sum(s for _, s, _, _ in sink)
    errors = sum(e for _, _, e, _ in sink)
    latencies = [value for _, _, _, lats in sink for value in lats]
    sent = offered - unsent
    return {
        "offered_per_sec": round(offered / window, 2),
        "completed_per_sec": round(completed / wall, 2),
        "shed": shed,
        "shed_rate": round((shed + unsent) / offered, 4) if offered else 0.0,
        "unsent": unsent,
        "sent": sent,
        "errors": errors,
        "duration_s": round(wall, 3),
        **_percentiles_ms(latencies),
    }


# ----------------------------------------------------------------------
# wire fidelity
# ----------------------------------------------------------------------
def verify_bit_identical(handle: ServerHandle) -> bool:
    """One request per LION group: wire answer == in-process answer, bitwise."""
    conn = http.client.HTTPConnection("127.0.0.1", handle.port)
    try:
        for group in LION_GROUPS:
            status, raw = _post(conn, _lion_body(group, 0))
            if status != 200:
                raise AssertionError(f"locate for group {group} returned {status}")
            wire = json.loads(raw)
            report = estimate(
                "lion", _lion_request(group, 0), config={"max_iterations": group}
            )
            if wire["position"] != np.asarray(report.position).tolist():
                raise AssertionError(
                    f"group {group}: wire position {wire['position']} != "
                    f"in-process {np.asarray(report.position).tolist()}"
                )
            if wire["config_hash"] != report.config_hash:
                raise AssertionError(f"group {group}: config_hash mismatch")
    finally:
        conn.close()
    return True


# ----------------------------------------------------------------------
# study
# ----------------------------------------------------------------------
def run_study(
    shard_counts: Sequence[int],
    closed_s: float,
    open_s: float,
) -> Dict[str, object]:
    """Closed- and open-loop sweeps over ``shard_counts``; JSON payload."""
    closed: Dict[str, Dict[str, object]] = {}
    open_loop: Dict[str, Dict[str, object]] = {}
    shard_stats: Dict[str, object] = {}
    bit_identical = False
    for shards in shard_counts:
        with ServerHandle(_server_config(shards)) as handle:
            if not bit_identical:
                bit_identical = verify_bit_identical(handle)
            closed[str(shards)] = run_closed_loop(handle, closed_s)
            open_loop[str(shards)] = run_open_loop(handle, open_s)
            stats = handle.stop()
            shard_stats[str(shards)] = [
                {key: entry.get(key) for key in ("shard", "drained_clean", "completed")}
                for entry in stats
            ]
    payload: Dict[str, object] = {
        "bench": "serve_net",
        "cpu_count": os.cpu_count(),
        "protocol": {
            "lion_groups": list(LION_GROUPS),
            "clients_per_group": CLIENTS_PER_GROUP,
            "lion_reads": LION_READS,
            "hologram_reads": HOLOGRAM_READS,
            "hologram_grid_size_m": HOLOGRAM_CONFIG["grid_size_m"],
            "open_loop_grids": list(OPEN_LOOP_GRIDS),
            "open_loop_rate_per_sec": OPEN_LOOP_RATE_PER_SEC,
            "open_loop_deadline_ms": OPEN_LOOP_DEADLINE_MS,
            "max_inflight_per_shard": MAX_INFLIGHT_PER_SHARD,
            "closed_duration_s": closed_s,
            "open_duration_s": open_s,
        },
        "closed_loop": closed,
        "open_loop": open_loop,
        "drain": shard_stats,
        "bit_identical": bit_identical,
    }
    if "1" in closed and "4" in closed:
        payload["speedup_4_vs_1"] = round(
            float(closed["4"]["requests_per_sec"])
            / float(closed["1"]["requests_per_sec"]),
            3,
        )
    if "1" in closed and "8" in closed:
        payload["speedup_8_vs_1"] = round(
            float(closed["8"]["requests_per_sec"])
            / float(closed["1"]["requests_per_sec"]),
            3,
        )
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        default="1,4,8",
        metavar="N,N,...",
        help="shard counts to sweep (default: 1,4,8)",
    )
    parser.add_argument(
        "--closed-s",
        type=float,
        default=10.0,
        help="closed-loop measurement window per shard count (default: 10)",
    )
    parser.add_argument(
        "--open-s",
        type=float,
        default=5.0,
        help="open-loop measurement window per shard count (default: 5)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing: shards 1,4 and short windows",
    )
    parser.add_argument(
        "--out", default="BENCH_serve_net.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    try:
        shard_counts = tuple(int(part) for part in args.shards.split(",") if part)
    except ValueError:
        parser.error(f"--shards must be comma-separated integers, got {args.shards!r}")
    if args.quick:
        shard_counts = tuple(s for s in shard_counts if s <= 4) or (1, 4)
        closed_s, open_s = min(args.closed_s, 8.0), min(args.open_s, 3.0)
    else:
        closed_s, open_s = args.closed_s, args.open_s
    payload = run_study(shard_counts, closed_s=closed_s, open_s=open_s)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
