"""Fig. 14(a): 3D localization error vs antenna position P1-P6."""

import numpy as np

from benchmarks.conftest import regenerate


def test_bench_fig14a(benchmark):
    result = regenerate(benchmark, "fig14a")
    rows = {row["position"]: row for row in result.rows}

    # Accurate within the near zone (depth <= 0.8 m): the paper reports
    # all-axis errors below 1.5 cm there; allow 2x margin for the fast run.
    for position in ("P1", "P2", "P3", "P4"):
        assert rows[position]["err_total_cm"] < 3.0

    # Error grows with depth: the deepest positions are the worst.
    shallow = np.mean([rows["P1"]["err_total_cm"], rows["P2"]["err_total_cm"]])
    deep = np.mean([rows["P5"]["err_total_cm"], rows["P6"]["err_total_cm"]])
    assert deep > shallow

    # The degradation concentrates on y/z, not x (the swept axis).
    assert rows["P5"]["err_x_cm"] < rows["P5"]["err_y_cm"] + rows["P5"]["err_z_cm"]
