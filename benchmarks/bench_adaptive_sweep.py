"""Fused vs per-cell throughput of the adaptive (range, interval) sweep.

Runs the paper's default 6x6 sweep grid over a Monte-Carlo-style sequence
of re-noised scans, once through the legacy per-cell dispatch and once
through the fused engine (shared preparation, cached pairing, masked
batch IRLS), asserts the two are bit-identical per repeat, and records
cells/second, the fused speedup, and the pairing-cache hit rate as JSON
(``BENCH_adaptive_sweep.json``). CI runs the quick sizing on every PR,
uploads the JSON, and fails if fused cells/second regresses more than
20% against ``benchmarks/baselines/BENCH_adaptive_sweep.json``.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_adaptive_sweep.py --out BENCH_adaptive_sweep.json
    PYTHONPATH=src python benchmarks/bench_adaptive_sweep.py --quick   # CI smoke sizing

or under pytest-benchmark along with the other benches::

    PYTHONPATH=src pytest benchmarks/bench_adaptive_sweep.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import ParameterGrid, _adaptive_localize_impl
from repro.core.localizer import LionLocalizer
from repro.core.sweep import clear_pair_cache, pair_cache_info
from repro.obs import collect_manifest

#: Reads per scan; the paper-scale line scan the sweep masks down.
READS = 400

_TARGET = np.array([0.08, 0.85])
_X = np.linspace(-0.6, 0.6, READS)
_POSITIONS = np.stack([_X, np.zeros_like(_X)], axis=1)
_DISTANCES = np.linalg.norm(_POSITIONS - _TARGET, axis=1)


def _phases(seed: int) -> np.ndarray:
    """One re-noised wrapped profile of the fixed trajectory."""
    rng = np.random.default_rng(seed)
    return np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * _DISTANCES
        + 0.4
        + rng.normal(0.0, 0.05, READS),
        TWO_PI,
    )


def _sweep_once(localizer, phases, grid, fused):
    return _adaptive_localize_impl(
        localizer, _POSITIONS, phases, grid=grid, fused=fused
    )


def run_study(repeats: int) -> Dict[str, object]:
    """Time both sweep paths over ``repeats`` re-noised scans."""
    grid = ParameterGrid()
    cells = sum(
        1
        for range_m in grid.ranges_m
        for interval_m in grid.intervals_m
        if interval_m < range_m
    )
    localizer = LionLocalizer(dim=2)
    profiles = [_phases(seed) for seed in range(repeats)]

    timings: Dict[str, float] = {}
    positions: Dict[str, List[np.ndarray]] = {}
    clear_pair_cache()
    for mode, fused in (("per_cell", False), ("fused", True)):
        start = time.perf_counter()
        results = [_sweep_once(localizer, phases, grid, fused) for phases in profiles]
        timings[mode] = time.perf_counter() - start
        positions[mode] = [result.position for result in results]
    cache = pair_cache_info()

    # The fused engine must not change the answer, only the wall clock.
    for ours, theirs in zip(positions["fused"], positions["per_cell"]):
        assert np.array_equal(ours, theirs), "fused sweep changed the result"

    cells_per_sec = {
        mode: cells * repeats / seconds for mode, seconds in timings.items()
    }
    lookups = cache["hits"] + cache["misses"]
    return {
        "benchmark": "adaptive_sweep_fused",
        "repeats": repeats,
        "reads": READS,
        "grid_cells": cells,
        "cpu_count": os.cpu_count(),
        "seconds": {mode: round(seconds, 4) for mode, seconds in timings.items()},
        "cells_per_sec": {
            mode: round(rate, 2) for mode, rate in cells_per_sec.items()
        },
        "speedup_fused": round(cells_per_sec["fused"] / cells_per_sec["per_cell"], 3),
        "pair_cache": {
            "hits": cache["hits"],
            "misses": cache["misses"],
            "hit_rate": round(cache["hits"] / lookups, 4) if lookups else 0.0,
        },
        "manifest": collect_manifest(
            seed=0, config={"repeats": repeats, "reads": READS, "grid_cells": cells}
        ).to_dict(),
    }


def test_bench_adaptive_sweep_fused_matches(benchmark):
    """Smoke-sized study: fused path is bit-identical and faster."""
    payload = benchmark.pedantic(run_study, kwargs={"repeats": 4}, iterations=1, rounds=1)
    print()
    print("== adaptive sweep, cells/second ==")
    for mode, rate in payload["cells_per_sec"].items():
        print(f"  {mode:>9}: {rate:9.1f}")
    print(f"  fused speedup: {payload['speedup_fused']:.2f}x")
    print(f"  pair-cache hit rate: {payload['pair_cache']['hit_rate']:.0%}")
    assert payload["speedup_fused"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=30,
        help="re-noised sweeps per mode (default: 30)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (8 repeats)"
    )
    parser.add_argument(
        "--out", default="BENCH_adaptive_sweep.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    repeats = 8 if args.quick else args.repeats
    payload = run_study(repeats)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
