"""Shared helpers for the benchmark suite.

Every figure of the paper has one bench module. Each bench regenerates its
figure through :func:`repro.experiments.figures.run_figure` under
pytest-benchmark timing, prints the regenerated table (visible with
``pytest -s``), and asserts the *shape* properties the paper reports —
who wins, what grows, where the optimum sits — rather than absolute
numbers, which belong to the authors' testbed.

Set ``LION_BENCH_FULL=1`` to run the full-size (non-fast) workloads.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.metrics import ExperimentResult


def full_mode() -> bool:
    """Whether benches run at full (paper-sized) workloads."""
    return os.environ.get("LION_BENCH_FULL", "0") == "1"


def regenerate(benchmark, figure_id: str, seed: int = 0) -> ExperimentResult:
    """Time one regeneration of ``figure_id`` and return its result."""
    fast = not full_mode()
    result = benchmark.pedantic(
        run_figure,
        kwargs={"figure_id": figure_id, "seed": seed, "fast": fast},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format_table())
    return result


@pytest.fixture
def figure_result():
    """Factory fixture: ``figure_result(benchmark, "fig13a")``."""
    return regenerate
