"""Fig. 13(b): computation time — the headline light-weight claim."""

from benchmarks.conftest import regenerate


def test_bench_fig13b(benchmark):
    result = regenerate(benchmark, "fig13b")
    seconds = {row["method"]: row["seconds"] for row in result.rows}

    # LION is far faster than DAH in both dimensions.
    assert seconds["LION 2D"] * 5 < seconds["DAH 2D"]
    assert seconds["LION 3D"] * 20 < seconds["DAH 3D"]

    # The DAH gap explodes in 3D (grid count is cubic, not quadratic).
    dah_ratio = seconds["DAH 3D"] / seconds["DAH 2D"]
    lion_ratio = seconds["LION 3D"] / max(seconds["LION 2D"], 1e-9)
    assert dah_ratio > lion_ratio

    # LION itself stays sub-second even for 3D.
    assert seconds["LION 3D"] < 1.0
