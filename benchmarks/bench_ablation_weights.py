"""Ablation: weighting function — Gaussian (paper) vs uniform vs Huber.

DESIGN.md design choice: the paper weights equations by a Gaussian of
their residual (Eq. 15). This bench compares it against no weighting and
the classical Huber IRLS weights under bursty corruption, plus one pass
vs iterated re-weighting.
"""

import numpy as np

from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.core.pairing import spacing_pairs
from repro.core.solvers import solve_least_squares, solve_weighted_least_squares
from repro.core.system import build_system
from repro.core.weights import gaussian_residual_weights, huber_weights
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import BurstyPhaseNoise, SnrScaledPhaseNoise
from repro.signalproc.unwrap import unwrap_phase
from repro.trajectory.linear import LinearTrajectory


def _corrupted_scans(repetitions: int):
    rng = np.random.default_rng(42)
    scans = []
    for _ in range(repetitions):
        x0 = float(rng.uniform(-0.2, 0.2))
        antenna = Antenna(physical_center=(x0, 0.8, 0.0), boresight=(0, -1, 0))
        noise = BurstyPhaseNoise(
            base=SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8),
            burst_probability=0.05,
            burst_magnitude_rad=1.5,
        )
        scan = simulate_scan(
            LinearTrajectory((x0 - 0.5, 0, 0), (x0 + 0.5, 0, 0)),
            antenna, rng=rng, noise=noise, read_rate_hz=60.0,
        )
        scans.append((scan, antenna.phase_center[:2]))
    return scans


def _solve_with(scan, truth, method, **kwargs):
    localizer = LionLocalizer(
        dim=2,
        method=method,
        interval_m=0.25,
        preprocess=PreprocessConfig(smoothing_window=1),
        **kwargs,
    )
    result = localizer.locate(scan.positions, scan.phases)
    return float(np.linalg.norm(result.position - truth))


def test_bench_weight_functions(benchmark):
    scans = _corrupted_scans(8)

    def run():
        errors = {"uniform(LS)": [], "gaussian(WLS)": [], "gaussian-1-pass": []}
        for scan, truth in scans:
            errors["uniform(LS)"].append(_solve_with(scan, truth, "ls"))
            errors["gaussian(WLS)"].append(_solve_with(scan, truth, "wls"))
            errors["gaussian-1-pass"].append(
                _solve_with(scan, truth, "wls", max_iterations=1)
            )
        return {name: float(np.mean(values)) for name, values in errors.items()}

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: weighting function (mean error, cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")

    # The paper's Gaussian weighting beats plain LS...
    assert means["gaussian(WLS)"] < means["uniform(LS)"]
    # ...and iterating at least matches a single re-weighting pass.
    assert means["gaussian(WLS)"] <= means["gaussian-1-pass"] * 1.5


def test_bench_weight_functions_on_raw_system(benchmark):
    """Same ablation at the solver level, including Huber."""
    rng = np.random.default_rng(3)
    target = np.array([0.1, 0.9])
    angles = np.linspace(0, 2 * np.pi, 120, endpoint=False)
    positions = 0.35 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)

    def run():
        errors = {"ls": [], "gaussian": [], "huber": []}
        for _ in range(10):
            deltas = distances - distances[0] + rng.normal(0, 0.001, 120)
            corrupt = rng.choice(120, size=8, replace=False)
            deltas[corrupt] += rng.uniform(0.02, 0.06, 8)
            system = build_system(positions, deltas, spacing_pairs(positions, 0.25))
            errors["ls"].append(
                np.linalg.norm(solve_least_squares(system).position - target)
            )
            errors["gaussian"].append(
                np.linalg.norm(
                    solve_weighted_least_squares(
                        system, weight_function=gaussian_residual_weights
                    ).position - target
                )
            )
            errors["huber"].append(
                np.linalg.norm(
                    solve_weighted_least_squares(
                        system, weight_function=huber_weights
                    ).position - target
                )
            )
        return {name: float(np.mean(values)) for name, values in errors.items()}

    means = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("== ablation: solver weight functions (mean error, cm) ==")
    for name, value in means.items():
        print(f"  {name}: {value * 100:.3f}")
    assert means["gaussian"] < means["ls"]
    assert means["huber"] < means["ls"]
