"""Fig. 3: distinct hardware phase offsets per antenna-tag pair."""

import numpy as np

from benchmarks.conftest import regenerate
from repro.signalproc.stats import circular_distance


def test_bench_fig03(benchmark):
    result = regenerate(benchmark, "fig03")
    means = {(row["antenna"], row["tag"]): row["mean_phase_rad"] for row in result.rows}

    # Reads of one pair cluster tightly...
    assert all(row["std_rad"] < 0.2 for row in result.rows)

    # ...while pairs differ: swapping the antenna shifts the phase.
    shifts = [
        circular_distance(means[("A1", f"T{k}")], means[("A2", f"T{k}")])
        for k in range(1, 5)
    ]
    assert max(shifts) > 0.3

    # The antenna-to-antenna shift is (approximately) tag-independent —
    # which is what makes relative offset calibration possible.
    assert np.std(shifts) < 0.1
