"""Micro-benchmarks of the hot kernels.

These are genuine pytest-benchmark timings (many rounds), quantifying the
paper's light-weight claim at the operation level: radical-row assembly,
the WLS solve, the full LionLocalizer pipeline, and one hologram kernel
evaluation for contrast.
"""

import numpy as np
import pytest

from repro.baselines.hologram import hologram_likelihood
from repro.core.pairing import lag_pairs
from repro.core.radical import radical_rows
from repro.core.solvers import solve_weighted_least_squares
from repro.core.system import build_system
from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.trajectory.linear import LinearTrajectory


@pytest.fixture(scope="module")
def scan_data():
    rng = np.random.default_rng(5)
    antenna = Antenna(physical_center=(0.1, 0.9, 0.0), boresight=(0, -1, 0))
    scan = simulate_scan(
        LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)), antenna, rng=rng,
        noise=GaussianPhaseNoise(0.08), read_rate_hz=120.0,
    )
    return scan, antenna


def test_bench_radical_rows(benchmark, rng=np.random.default_rng(1)):
    positions = rng.uniform(-1, 1, size=(1000, 3))
    deltas = rng.uniform(-0.1, 0.1, size=1000)
    pairs = lag_pairs(1000, 100)
    matrix, rhs = benchmark(radical_rows, positions, deltas, pairs)
    assert matrix.shape == (900, 4)


def test_bench_wls_solve(benchmark, rng=np.random.default_rng(2)):
    target = np.array([0.2, 0.9])
    angles = np.linspace(0, 2 * np.pi, 800, endpoint=False)
    positions = 0.4 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    deltas = distances - distances[0] + rng.normal(0, 0.001, 800)
    system = build_system(positions, deltas, lag_pairs(800, 100))
    solution = benchmark(solve_weighted_least_squares, system)
    assert np.linalg.norm(solution.position - target) < 0.01


def test_bench_lion_full_pipeline_2d(benchmark, scan_data):
    scan, antenna = scan_data
    localizer = LionLocalizer(dim=2, interval_m=0.25)
    result = benchmark(localizer.locate, scan.positions, scan.phases)
    assert np.linalg.norm(result.position - antenna.phase_center[:2]) < 0.02


def test_bench_hologram_kernel(benchmark, scan_data):
    scan, antenna = scan_data
    stride = max(len(scan) // 30, 1)
    positions = scan.positions[::stride, :2]
    phases = scan.phases[::stride]
    truth = antenna.phase_center[:2]
    xs = np.arange(truth[0] - 0.1, truth[0] + 0.1, 0.002)
    ys = np.arange(truth[1] - 0.1, truth[1] + 0.1, 0.002)
    mesh = np.meshgrid(xs, ys, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)
    likelihood = benchmark(hologram_likelihood, positions, phases, cells)
    assert likelihood.shape == (cells.shape[0],)
