"""Micro-benchmarks of the hot kernels.

These are genuine pytest-benchmark timings (many rounds), quantifying the
paper's light-weight claim at the operation level: radical-row assembly,
the WLS solve, the full LionLocalizer pipeline, and one hologram kernel
evaluation for contrast.

Run directly for the per-stage timing mode — the scalar request path
split into validate / preprocess / prepare-scan / pair / assemble /
solve, so a whole-path regression localizes to one stage::

    PYTHONPATH=src python benchmarks/bench_core_micro.py --reads 400
"""

import argparse
import json
import time

import numpy as np
import pytest

from repro.baselines.hologram import hologram_likelihood
from repro.core.pairing import lag_pairs
from repro.core.radical import radical_rows
from repro.core.solvers import solve_weighted_least_squares
from repro.core.system import build_system
from repro.core.localizer import LionLocalizer
from repro.datasets.synthetic import simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.trajectory.linear import LinearTrajectory


@pytest.fixture(scope="module")
def scan_data():
    rng = np.random.default_rng(5)
    antenna = Antenna(physical_center=(0.1, 0.9, 0.0), boresight=(0, -1, 0))
    scan = simulate_scan(
        LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)), antenna, rng=rng,
        noise=GaussianPhaseNoise(0.08), read_rate_hz=120.0,
    )
    return scan, antenna


def test_bench_radical_rows(benchmark, rng=np.random.default_rng(1)):
    positions = rng.uniform(-1, 1, size=(1000, 3))
    deltas = rng.uniform(-0.1, 0.1, size=1000)
    pairs = lag_pairs(1000, 100)
    matrix, rhs = benchmark(radical_rows, positions, deltas, pairs)
    assert matrix.shape == (900, 4)


def test_bench_wls_solve(benchmark, rng=np.random.default_rng(2)):
    target = np.array([0.2, 0.9])
    angles = np.linspace(0, 2 * np.pi, 800, endpoint=False)
    positions = 0.4 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    deltas = distances - distances[0] + rng.normal(0, 0.001, 800)
    system = build_system(positions, deltas, lag_pairs(800, 100))
    solution = benchmark(solve_weighted_least_squares, system)
    assert np.linalg.norm(solution.position - target) < 0.01


def test_bench_lion_full_pipeline_2d(benchmark, scan_data):
    scan, antenna = scan_data
    localizer = LionLocalizer(dim=2, interval_m=0.25)
    result = benchmark(localizer.locate, scan.positions, scan.phases)
    assert np.linalg.norm(result.position - antenna.phase_center[:2]) < 0.02


def test_bench_hologram_kernel(benchmark, scan_data):
    scan, antenna = scan_data
    stride = max(len(scan) // 30, 1)
    positions = scan.positions[::stride, :2]
    phases = scan.phases[::stride]
    truth = antenna.phase_center[:2]
    xs = np.arange(truth[0] - 0.1, truth[0] + 0.1, 0.002)
    ys = np.arange(truth[1] - 0.1, truth[1] + 0.1, 0.002)
    mesh = np.meshgrid(xs, ys, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)
    likelihood = benchmark(hologram_likelihood, positions, phases, cells)
    assert likelihood.shape == (cells.shape[0],)


# ---------------------------------------------------------------------------
# per-stage timing mode (CLI)
# ---------------------------------------------------------------------------


def _time_stage(fn, repeats: int) -> float:
    """Median-of-five best wall time per call, microseconds."""
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        samples.append((time.perf_counter() - start) / repeats)
    return float(np.median(samples)) * 1e6


def run_stage_breakdown(reads: int = 400, repeats: int = 200, seed: int = 0) -> dict:
    """Time each stage of the scalar LION request path in isolation.

    The stages mirror :meth:`LionLocalizer.prepare` + ``_solve_prepared``:
    ``validate`` (the input checks at the top of ``prepare``, replicated
    here verbatim), ``preprocess`` (unwrap + smoothing),
    ``prepare_scan`` (masking, reference pick, Eq. (6) deltas),
    ``pair`` (pair selection), ``assemble`` (radical rows), and
    ``solve`` (the scalar IRLS). Stage sums approximate but do not
    exactly equal the end-to-end ``locate`` time (shared ``np.asarray``
    coercions are paid once per stage here).
    """
    from repro.core.localizer import LionLocalizer
    from repro.core.solvers import solve_weighted_least_squares
    from repro.core.system import build_system

    rng = np.random.default_rng(seed)
    x = np.linspace(-0.6, 0.6, reads)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    target = np.array([0.08, 0.85])
    distances = np.linalg.norm(positions - target, axis=1)
    wavelength = 0.3262
    phases = np.mod(
        4.0 * np.pi / wavelength * distances + rng.normal(0.0, 0.05, reads),
        2.0 * np.pi,
    )
    localizer = LionLocalizer(dim=2, interval_m=0.25)

    def validate():
        points = np.asarray(positions, dtype=float)
        raw = np.asarray(phases, dtype=float)
        assert points.ndim == 2 and points.shape[1] in (2, 3)
        assert raw.shape == (points.shape[0],)
        assert points.shape[0] >= 3
        assert np.all(np.isfinite(points))
        assert np.all(np.isfinite(raw))

    profile = localizer.preprocess_phase(phases)
    prepared = localizer._prepare_scan(positions, profile, None, None, None)
    pairs = tuple(
        localizer._auto_pairs(
            prepared.solve_points, prepared.used_segments, localizer.interval_m
        )
    )
    system = build_system(prepared.solve_points, prepared.delta_d, pairs)

    stages = {
        "validate": _time_stage(validate, repeats),
        "preprocess": _time_stage(lambda: localizer.preprocess_phase(phases), repeats),
        "prepare_scan": _time_stage(
            lambda: localizer._prepare_scan(positions, profile, None, None, None),
            repeats,
        ),
        "pair": _time_stage(
            lambda: localizer._auto_pairs(
                prepared.solve_points, prepared.used_segments, localizer.interval_m
            ),
            repeats,
        ),
        "assemble": _time_stage(
            lambda: build_system(prepared.solve_points, prepared.delta_d, pairs),
            repeats,
        ),
        "solve": _time_stage(lambda: solve_weighted_least_squares(system), repeats),
    }
    total = sum(stages.values())
    return {
        "benchmark": "core_stage_breakdown",
        "reads": reads,
        "repeats": repeats,
        "stages_us": {name: round(value, 2) for name, value in stages.items()},
        "stage_share": {
            name: round(value / total, 4) for name, value in stages.items()
        },
        "total_us": round(total, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-stage timing of the scalar LION request path"
    )
    parser.add_argument("--reads", type=int, default=400, help="reads per scan")
    parser.add_argument(
        "--repeats", type=int, default=200, help="calls per stage sample"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--out", default=None, help="optional output JSON path")
    args = parser.parse_args(argv)
    payload = run_stage_breakdown(args.reads, args.repeats, seed=args.seed)
    print(json.dumps(payload, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
