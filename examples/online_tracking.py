"""Streaming localization on an edge node (extension beyond the paper).

The paper motivates LION with edge deployments: limited compute, realtime
requirements. Because the model is linear, it admits a *recursive* form —
each read updates small normal equations in O(1), so an estimate is
available continuously during the scan, not just at its end.

This example replays a conveyor scan read-by-read through
:class:`repro.core.online.OnlineLionLocalizer`, printing how the estimate
sharpens as the tag approaches and passes the antenna, and compares the
final streaming estimate with the batch solver on the same data.

Run:  python examples/online_tracking.py
"""

import time

import numpy as np

from repro import (
    Antenna,
    BurstyPhaseNoise,
    LinearTrajectory,
    LionLocalizer,
    OnlineLionLocalizer,
    SnrScaledPhaseNoise,
    simulate_scan,
)


def main() -> None:
    rng = np.random.default_rng(19)
    antenna = Antenna(
        physical_center=(0.1, 0.9, 0.0), boresight=(0.0, -1.0, 0.0), name="edge"
    )
    truth = antenna.phase_center[:2]
    noise = BurstyPhaseNoise(
        base=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.9),
        burst_probability=0.02,
        burst_magnitude_rad=1.0,
    )
    scan = simulate_scan(
        LinearTrajectory((-0.6, 0.0, 0.0), (0.6, 0.0, 0.0)),
        antenna,
        rng=rng,
        noise=noise,
    )
    print(f"replaying {len(scan)} reads; true phase center {truth.round(4)}")
    print(f"{'reads':>6} {'x est':>8} {'y est':>8} {'error (cm)':>11}")

    online = OnlineLionLocalizer(dim=2, pair_lag=300, gate_threshold=4.0)
    start = time.perf_counter()
    for index, (position, phase) in enumerate(zip(scan.positions, scan.phases)):
        online.add_read(position, phase)
        if online.ready() and (index + 1) % 250 == 0:
            estimate = online.estimate()
            error = np.linalg.norm(estimate.position - truth) * 100
            print(
                f"{index + 1:>6} {estimate.position[0]:>8.4f} "
                f"{estimate.position[1]:>8.4f} {error:>11.2f}"
            )
    streaming_seconds = time.perf_counter() - start
    final = online.estimate()

    batch = LionLocalizer(dim=2, interval_m=0.25)
    start = time.perf_counter()
    batch_result = batch.locate(scan.positions, scan.phases)
    batch_seconds = time.perf_counter() - start

    print()
    print(f"streaming final error : "
          f"{np.linalg.norm(final.position - truth) * 100:.2f} cm "
          f"({streaming_seconds * 1e3 / len(scan):.3f} ms/read)")
    print(f"batch solver error    : "
          f"{np.linalg.norm(batch_result.position - truth) * 100:.2f} cm "
          f"({batch_seconds * 1e3:.1f} ms once)")


if __name__ == "__main__":
    main()
