"""Streaming localization through the session layer (beyond the paper).

The paper motivates LION with edge deployments: limited compute, realtime
requirements. Because the model is linear it admits a recursive form, and
:mod:`repro.stream` packages that into a full session subsystem — a
:class:`~repro.stream.SessionManager` owning per-``(tag, antenna)`` state
machines that fold each read in O(1) on the fast path, periodically
re-solve their sliding window through the batch solver, and narrate the
whole lifecycle as typed events (``tag_entered`` → ``position_updated``
→ ``tag_settled`` → ``tag_departed``).

This example replays a conveyor scan chunk-by-chunk through a session,
prints the event stream as the estimate sharpens, and then verifies the
headline invariant: the final windowed re-solve is **bit-identical** to
the one-shot batch solver on the same window.

Run:  python examples/online_tracking.py
"""

import numpy as np

from repro import (
    Antenna,
    BurstyPhaseNoise,
    LinearTrajectory,
    LionLocalizer,
    SnrScaledPhaseNoise,
    simulate_scan,
)
from repro.stream import SessionManager, StreamConfig

#: Reads per feed chunk — the cadence a reader would deliver them at.
CHUNK_READS = 25


def main() -> None:
    rng = np.random.default_rng(19)
    antenna = Antenna(
        physical_center=(0.1, 0.9, 0.0), boresight=(0.0, -1.0, 0.0), name="edge"
    )
    truth = antenna.phase_center[:2]
    noise = BurstyPhaseNoise(
        base=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.9),
        burst_probability=0.02,
        burst_magnitude_rad=1.0,
    )
    scan = simulate_scan(
        LinearTrajectory((-0.6, 0.0, 0.0), (0.6, 0.0, 0.0)),
        antenna,
        rng=rng,
        noise=noise,
    )
    print(f"replaying {len(scan)} reads; true phase center {truth.round(4)}")

    manager = SessionManager(
        defaults=StreamConfig(
            max_window_reads=len(scan),  # keep the whole scan in the window
            update_every_reads=50,
            resolve_every_reads=300,
            fast_pair_lag=300,  # long-lag pairs: the fast path needs the
            # approach-and-pass geometry to pin down depth
        )
    )
    session = manager.open_session(tag="PALLET-7", antenna=antenna.name)

    timestamps = np.arange(len(scan)) / 120.0  # 120 Hz read rate
    print(f"{'event':>22} {'reads':>6} {'x est':>8} {'y est':>8} {'error (cm)':>11}")
    for start in range(0, len(scan), CHUNK_READS):
        end = min(start + CHUNK_READS, len(scan))
        chunk = [
            (float(timestamps[k]), scan.positions[k], float(scan.phases[k]))
            for k in range(start, end)
        ]
        result = manager.feed(session.session_id, chunk)
        for event in result.events:
            payload = event.to_dict()
            position = payload.get("position")
            if position is None:
                print(f"{event.kind:>22} {session.reads:>6}")
                continue
            error = np.linalg.norm(np.asarray(position) - truth) * 100
            source = payload.get("source", "")
            print(
                f"{event.kind:>22} {session.reads:>6} {position[0]:>8.4f} "
                f"{position[1]:>8.4f} {error:>11.2f}  {source}"
            )

    # The invariant the streaming layer guarantees: the final windowed
    # re-solve equals the one-shot batch solve of the same window, bit
    # for bit.
    final = session.final_resolve()
    assert final is not None
    _, positions, phases = session.window_arrays()
    batch = LionLocalizer(dim=2).locate(positions, phases)
    assert np.array_equal(final.position, batch.position), "bit-identity broken!"

    print()
    print(f"streaming final error : "
          f"{np.linalg.norm(final.position - truth) * 100:.2f} cm")
    print(f"batch solver error    : "
          f"{np.linalg.norm(batch.position - truth) * 100:.2f} cm")
    print("windowed re-solve is bit-identical to the one-shot batch solve")
    manager.close_session(session.session_id)


if __name__ == "__main__":
    main()
