"""Record a scan to CSV, replay it through the streaming session layer.

A realistic workflow: a technician records a scan once, ships the CSV,
and the stream is replayed offline — for debugging, regression checks,
or re-running with different parameters. This example simulates the
recording, writes it to disk, reloads it with
:func:`repro.datasets.session_streams`, and replays it through
:mod:`repro.stream` at max speed, verifying that the replayed session's
final windowed re-solve is **bit-identical** to a one-shot estimate over
the same window (``lion replay scan.csv`` is the CLI for exactly this).

Run:  python examples/record_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    SnrScaledPhaseNoise,
    ThreeLineScan,
    default_antenna,
    read_records_csv,
    simulate_scan,
    write_records_csv,
)
from repro.datasets import session_streams
from repro.stream import replay_records


def main() -> None:
    rng = np.random.default_rng(42)
    antenna = default_antenna((0.0, 0.8, 0.0), rng, name="dock-3")
    truth = antenna.phase_center[:2]

    # --- recording session -------------------------------------------------
    scan = simulate_scan(
        ThreeLineScan(-0.55, 0.55, origin=(0.0, 0.0, 0.0)),
        antenna,
        rng=rng,
        noise=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.8),
    )
    with tempfile.TemporaryDirectory() as workdir:
        csv_path = Path(workdir) / "dock-3-scan.csv"
        write_records_csv(scan.records, csv_path)
        print(f"recorded {len(scan.records)} reads -> {csv_path.name} "
              f"({csv_path.stat().st_size // 1024} KiB)")

        # --- offline replay -------------------------------------------------
        records = read_records_csv(csv_path)
        streams = session_streams(records, dim=2)
        print(f"replaying {len(streams)} recorded session stream(s) at max speed")
        results = replay_records(streams, verify=True)

    for result in results:
        assert result.bit_identical, "replayed solve diverged from one-shot!"
        final = np.asarray(result.final_position)
        error = np.linalg.norm(final - truth)
        print(f"replayed session {result.tag} @ antenna {result.antenna}:")
        print(f"  reads               : {result.reads} "
              f"({result.reads_per_sec:,.0f} reads/s)")
        print(f"  events              : "
              + ", ".join(f"{kind}={n}" for kind, n in sorted(result.events.items())))
        print(f"  final estimate      : {final.round(4).tolist()}")
        print(f"  true phase center   : {truth.round(4).tolist()}")
        print(f"  error               : {error * 100:.2f} cm")
        print("  windowed re-solve is bit-identical to the one-shot estimate")


if __name__ == "__main__":
    main()
