"""Record and replay scans through the LLRP-shaped CSV format.

A realistic workflow: a technician records a calibration scan once, ships
the CSV, and the calibration is computed offline (possibly re-run later
with different parameters). This example simulates the recording, writes
it to disk, reloads it, and calibrates from the replayed records alone.

Run:  python examples/record_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ParameterGrid,
    SnrScaledPhaseNoise,
    ThreeLineScan,
    calibrate_antenna,
    default_antenna,
    read_records_csv,
    simulate_scan,
    write_records_csv,
)


def main() -> None:
    rng = np.random.default_rng(42)
    antenna = default_antenna((0.0, 0.8, 0.0), rng, name="dock-3")

    # --- recording session -------------------------------------------------
    scan = simulate_scan(
        ThreeLineScan(-0.55, 0.55, origin=(0.0, 0.0, 0.0)),
        antenna,
        rng=rng,
        noise=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.8),
    )
    with tempfile.TemporaryDirectory() as workdir:
        csv_path = Path(workdir) / "dock-3-calibration.csv"
        write_records_csv(scan.records, csv_path)
        print(f"recorded {len(scan.records)} reads -> {csv_path.name} "
              f"({csv_path.stat().st_size // 1024} KiB)")

        # --- offline replay -------------------------------------------------
        records = read_records_csv(csv_path)
        positions = np.array([r.tag_position for r in records])
        phases = np.array([r.phase_rad for r in records])

        # Rebuild the segment structure from the known scan geometry. (The
        # trajectory definition travels with the CSV in a real deployment.)
        trajectory = ThreeLineScan(-0.55, 0.55, origin=(0.0, 0.0, 0.0))
        samples = trajectory.sample()
        assert len(samples) == len(records)
        segment_ids = samples.segment_ids
        exclude = trajectory.transit_mask(samples)

        calibration, _ = calibrate_antenna(
            positions,
            phases,
            antenna.physical_center_array,
            antenna_name=antenna.name,
            segment_ids=segment_ids,
            exclude_mask=exclude,
            grid=ParameterGrid(ranges_m=(0.8, 0.9, 1.0), intervals_m=(0.2, 0.25, 0.3)),
        )

    error = np.linalg.norm(calibration.estimated_center - antenna.phase_center)
    print(f"replayed calibration for {calibration.antenna_name}:")
    print(f"  estimated phase center: {calibration.estimated_center.round(4)}")
    print(f"  true phase center     : {antenna.phase_center.round(4)}")
    print(f"  error                 : {error * 100:.2f} cm")
    print(f"  phase offset          : {calibration.phase_offset_rad:.3f} rad")


if __name__ == "__main__":
    main()
