"""3D calibration from *separate* sweeps — no phase stitching required.

The paper's Fig. 11 scan needs the tag to move continuously between the
three lines so the phase profile stays unwrappable across them
(Sec. IV-B). That is awkward for a real slide rig: re-mounting the rail
per line breaks continuity. The multi-reference extension
(:mod:`repro.core.multiref`) removes the requirement: each sweep keeps an
independent phase datum (its own ``d_r`` unknown), the within-sweep rows
pin the swept coordinate, and the per-sweep reference distances
trilaterate the remaining coordinates — linear algebra end to end.

The same machinery handles frequency-hopped scans (one run per dwell
block, per-run wavelengths), also demonstrated below.

Run:  python examples/separate_sweeps.py
"""

import numpy as np

from repro import (
    Antenna,
    GaussianPhaseNoise,
    LinearTrajectory,
    locate_multireference,
    simulate_scan,
    wavelength_for_frequency,
)
from repro.constants import TWO_PI


def main() -> None:
    rng = np.random.default_rng(13)
    antenna = Antenna(
        physical_center=(0.0, 0.8, 0.0),
        center_displacement=(0.021, -0.017, 0.024),
        phase_offset_rad=2.4,
        boresight=(0.0, -1.0, 0.0),
    )
    truth = antenna.phase_center
    print(f"true phase center: {truth.round(4)}")

    # --- three independent sweeps, each its own recording session -------
    sweeps = [
        LinearTrajectory((-0.5, 0.0, 0.0), (0.5, 0.0, 0.0)),
        LinearTrajectory((-0.5, 0.0, 0.2), (0.5, 0.0, 0.2)),
        LinearTrajectory((-0.5, -0.2, 0.0), (0.5, -0.2, 0.0)),
    ]
    positions, phases, runs = [], [], []
    for index, sweep in enumerate(sweeps):
        scan = simulate_scan(
            sweep, antenna, rng=rng, noise=GaussianPhaseNoise(0.05),
            read_rate_hz=60.0,
        )
        positions.append(scan.positions)
        phases.append(scan.phases)
        runs.append(np.full(len(scan), index))
    positions = np.vstack(positions)
    phases = np.concatenate(phases)
    runs = np.concatenate(runs)

    solution = locate_multireference(
        positions, phases, runs, dim=3, interval_m=0.25
    )
    error = np.linalg.norm(solution.position - truth)
    print("--- separate sweeps (independent phase datums) ---")
    print(f"estimated center: {solution.position.round(4)}")
    print(f"error           : {error * 100:.2f} cm")
    for run, d_r in solution.reference_distances.items():
        print(f"  sweep {run}: d_r = {d_r:.4f} m")

    # --- frequency-hopped variant on a single sweep ----------------------
    print("--- frequency-hopped scan (two channels, one sweep) ---")
    x = np.linspace(-0.5, 0.5, 600)
    hop_positions = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
    hop_runs = np.repeat([0, 1], 300)
    wavelengths = {
        0: wavelength_for_frequency(903.25e6),
        1: wavelength_for_frequency(925.25e6),
    }
    hop_phases = np.zeros(600)
    for run in (0, 1):
        members = hop_runs == run
        distances = np.linalg.norm(hop_positions[members] - truth, axis=1)
        channel_offset = rng.uniform(0.0, TWO_PI)  # per-channel hardware shift
        hop_phases[members] = np.mod(
            2.0 * TWO_PI / wavelengths[run] * distances
            + channel_offset
            + rng.normal(0.0, 0.05, int(members.sum())),
            TWO_PI,
        )
    hop_solution = locate_multireference(
        hop_positions[:, :2], hop_phases, hop_runs, dim=2,
        interval_m=0.2, wavelengths_m=wavelengths,
    )
    hop_error = np.linalg.norm(hop_solution.position - truth[:2])
    print(f"estimated (2D)  : {hop_solution.position.round(4)}")
    print(f"error           : {hop_error * 100:.2f} cm")
    print("note: phases were never compared across channels - each run")
    print("carries its own wavelength, datum and hardware shift.")


if __name__ == "__main__":
    main()
