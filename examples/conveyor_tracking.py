"""Conveyor tracking: the paper's motivating industrial scenario.

Tagged items ride a conveyor past a reader antenna. The item's position
*along the belt* is what a sorting robot needs, at millimeter-to-
centimeter accuracy, computed fast enough to act on. We compare three
methods on identical scans:

* LION (weighted linear model) — the paper's contribution,
* DAH (Tagoram differential hologram) — accurate but grid-search slow,
* parabola fit — very fast but 2D/linear-only and biased.

Each method sees the same reads; we report accuracy and wall-clock time.

Run:  python examples/conveyor_tracking.py
"""

import time

import numpy as np

from repro import (
    Antenna,
    BurstyPhaseNoise,
    DifferentialHologram,
    LinearTrajectory,
    LionLocalizer,
    SnrScaledPhaseNoise,
    locate_parabola_2d,
    simulate_scan,
)


def main() -> None:
    rng = np.random.default_rng(23)
    items = 6
    depth = 0.8  # belt runs 0.8 m in front of the antenna

    stats = {"LION": [], "DAH": [], "Parabola": []}
    timings = {"LION": 0.0, "DAH": 0.0, "Parabola": 0.0}

    for item in range(items):
        # Each item carries its own tag (own hardware offset) and passes
        # the antenna with a slightly different lateral alignment.
        belt_offset = float(rng.uniform(-0.2, 0.2))
        antenna = Antenna(
            physical_center=(belt_offset, depth, 0.0),
            boresight=(0.0, -1.0, 0.0),
            name="dock-antenna",
        )
        noise = BurstyPhaseNoise(
            base=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=depth),
            burst_probability=0.02,
            burst_magnitude_rad=1.0,
        )
        scan = simulate_scan(
            LinearTrajectory((belt_offset - 0.5, 0, 0), (belt_offset + 0.5, 0, 0)),
            antenna,
            rng=rng,
            noise=noise,
        )
        truth = antenna.phase_center[:2]

        # LION
        start = time.perf_counter()
        lion = LionLocalizer(dim=2, interval_m=0.25).locate(scan.positions, scan.phases)
        timings["LION"] += time.perf_counter() - start
        stats["LION"].append(np.linalg.norm(lion.position - truth))

        # DAH on a thinned read set (its cost scales with reads x cells).
        stride = max(len(scan) // 40, 1)
        start = time.perf_counter()
        dah = DifferentialHologram(grid_size_m=0.002).locate(
            scan.positions[::stride, :2],
            scan.phases[::stride],
            [(truth[0] - 0.1, truth[0] + 0.1), (truth[1] - 0.1, truth[1] + 0.1)],
        )
        timings["DAH"] += time.perf_counter() - start
        stats["DAH"].append(np.linalg.norm(dah.position - truth))

        # Parabola fit on the belt coordinate.
        start = time.perf_counter()
        parabola = locate_parabola_2d(scan.positions[:, 0], scan.phases)
        timings["Parabola"] += time.perf_counter() - start
        stats["Parabola"].append(np.linalg.norm(parabola.position - truth))

    print(f"{items} items tracked at {depth} m depth")
    print(f"{'method':<10} {'mean err (cm)':>14} {'max err (cm)':>13} {'time/item (ms)':>15}")
    for method in ("LION", "DAH", "Parabola"):
        errors = np.array(stats[method]) * 100
        print(
            f"{method:<10} {errors.mean():>14.2f} {errors.max():>13.2f} "
            f"{timings[method] / items * 1000:>15.2f}"
        )


if __name__ == "__main__":
    main()
