"""Rotating-tag localization (paper Sec. V-F2, Fig. 21).

Where a linear slide is impractical, a turntable works: LION accepts any
known trajectory. A tag spins at several radii in front of an antenna;
we locate the antenna with LION and with a Tagspin-style rotating-tag
solver, and show the paper's two observations: errors align with the
center-to-antenna direction, and larger radii help.

Run:  python examples/turntable_localization.py
"""

import numpy as np

from repro import (
    Antenna,
    CircularTrajectory,
    GaussianPhaseNoise,
    LionLocalizer,
    locate_rotating_tag,
    simulate_scan,
)


def main() -> None:
    rng = np.random.default_rng(31)
    antenna = Antenna(
        physical_center=(0.0, 0.7, 0.0),
        boresight=(0.0, -1.0, 0.0),
        name="shelf-antenna",
    )
    truth = antenna.phase_center[:2]
    print(f"antenna at {truth.round(3)} (0.7 m in front of the turntable center)")
    print(f"{'radius (m)':>10} {'LION err x/y (cm)':>20} {'LION total':>11} {'Tagspin total':>14}")

    for radius in (0.10, 0.15, 0.20, 0.25):
        lion_axis, lion_total, spin_total = [], [], []
        for _ in range(10):
            scan = simulate_scan(
                CircularTrajectory(center=(0, 0, 0), radius=radius),
                antenna,
                rng=rng,
                noise=GaussianPhaseNoise(0.1),
            )
            result = LionLocalizer(dim=2, interval_m=min(radius, 0.2)).locate(
                scan.positions, scan.phases
            )
            lion_axis.append(np.abs(result.position - truth))
            lion_total.append(np.linalg.norm(result.position - truth))

            # Tagspin-style baseline needs the turntable angle per read.
            angles = np.arctan2(scan.positions[:, 1], scan.positions[:, 0])
            angles = np.unwrap(angles)
            spin = locate_rotating_tag(angles, scan.phases, radius_m=radius)
            spin_total.append(np.linalg.norm(spin.position - truth))

        axis = np.mean(np.vstack(lion_axis), axis=0) * 100
        print(
            f"{radius:>10.2f} {axis[0]:>9.2f}/{axis[1]:<9.2f} "
            f"{np.mean(lion_total) * 100:>10.2f} {np.mean(spin_total) * 100:>13.2f}"
        )

    print()
    print("note: the x error (perpendicular to the center-antenna line) is")
    print("smaller than the y error, and both shrink as the radius grows -")
    print("the Fig. 21 observations.")


if __name__ == "__main__":
    main()
