"""Error bars and information limits: covariance vs CRLB vs Monte-Carlo.

Three views of the same question — "how good can this scan geometry be?":

1. **Monte-Carlo**: rerun the scan under fresh noise, scatter the
   estimates (the empirical truth).
2. **Per-solve covariance** (`repro.core.uncertainty`): what a *single*
   scan reports about itself from its residuals.
3. **CRLB** (`repro.experiments.crlb`): the information-theoretic floor
   for any unbiased estimator on this geometry.

A circle scan around the origin localizes an antenna at (0.2, 0.9); all
three views should agree on the error scale, and the scatter cloud's
shape should match the predicted confidence ellipse.

Run:  python examples/uncertainty_analysis.py
"""

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.localizer import LionLocalizer, PreprocessConfig
from repro.core.uncertainty import uncertainty_of
from repro.experiments.crlb import phase_localization_crlb
from repro.experiments.montecarlo import run_monte_carlo
from repro.viz import scatter_2d


def main() -> None:
    target = np.array([0.2, 0.9])
    sigma = 0.1
    angles = np.linspace(0, 2 * np.pi, 300, endpoint=False)
    positions = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    distances = np.linalg.norm(positions - target, axis=1)
    localizer = LionLocalizer(
        dim=2, interval_m=0.3, preprocess=PreprocessConfig(smoothing_window=1)
    )

    # --- Monte-Carlo scatter --------------------------------------------
    estimates = []

    def trial(rng: np.random.Generator) -> dict:
        phases = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
            + rng.normal(0.0, sigma, len(distances)),
            TWO_PI,
        )
        result = localizer.locate(positions, phases)
        estimates.append(result.position)
        return {"error_m": float(np.linalg.norm(result.position - target))}

    study = run_monte_carlo(trial, trials=80, seed=4)
    rmse = float(np.sqrt(np.mean(study["error_m"].samples ** 2)))

    # --- single-solve covariance ----------------------------------------
    rng = np.random.default_rng(99)
    phases = np.mod(
        2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
        + rng.normal(0.0, sigma, len(distances)),
        TWO_PI,
    )
    one_result = localizer.locate(positions, phases)
    uncertainty = uncertainty_of(one_result)
    major, minor, angle = uncertainty.confidence_ellipse(probability=0.95)

    # --- CRLB -------------------------------------------------------------
    bound = phase_localization_crlb(positions, target, sigma)

    print("circle scan (r = 0.3 m, 300 reads), antenna at (0.2, 0.9), sigma = 0.1 rad")
    print()
    print(f"Monte-Carlo RMSE (80 trials) : {rmse * 1000:.2f} mm")
    print(f"  mean error 95% CI          : "
          f"[{study['error_m'].ci_low * 1000:.2f}, {study['error_m'].ci_high * 1000:.2f}] mm")
    print(f"single-solve predicted std   : {uncertainty.total_std_m() * 1000:.2f} mm")
    print(f"  95% ellipse                : {major * 1000:.2f} x {minor * 1000:.2f} mm "
          f"at {np.degrees(angle):.0f} deg")
    print(f"CRLB floor                   : {bound.position_std_m * 1000:.2f} mm")
    print(f"  per-axis bounds            : "
          f"{bound.axis_std_m[0] * 1000:.2f} / {bound.axis_std_m[1] * 1000:.2f} mm")
    print(f"LION efficiency vs CRLB      : {bound.position_std_m / rmse:.2f}")
    print()
    print(scatter_2d(
        np.vstack(estimates), truth=target, width=56, height=18,
        title="estimate scatter around the truth (X)",
    ))


if __name__ == "__main__":
    main()
