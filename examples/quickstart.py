"""Quickstart: locate an RFID antenna from one sliding-track scan.

Simulates the paper's basic setup — a tag on a linear slide read by one
antenna — and runs the LION linear localizer on the reported phases.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GaussianPhaseNoise,
    LinearTrajectory,
    LionLocalizer,
    default_antenna,
    simulate_scan,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # An antenna 1 m behind the track. Its *true* phase center is a few
    # centimeters away from the physical center we constructed it at —
    # the hidden hardware quirk LION exists to measure.
    antenna = default_antenna((0.2, 1.0, 0.0), rng)
    print(f"physical center : {antenna.physical_center_array.round(4)}")
    print(f"true phase center (hidden): {antenna.phase_center.round(4)}")

    # One pass of the tag along the track, 0.8 m of travel at 10 cm/s,
    # sampled >100 times per second with the paper's noise level.
    trajectory = LinearTrajectory((-0.4, 0.0, 0.0), (0.4, 0.0, 0.0))
    scan = simulate_scan(trajectory, antenna, rng=rng, noise=GaussianPhaseNoise(0.1))
    print(f"collected {len(scan)} reads")

    # LION: unwrap, smooth, build radical-line equations, weighted solve.
    # The trajectory is a line, so the y coordinate is recovered from the
    # reference distance (the paper's lower-dimension trick).
    localizer = LionLocalizer(dim=2)
    result = localizer.locate(scan.positions, scan.phases)

    error_m = np.linalg.norm(result.position - antenna.phase_center[:2])
    print(f"estimated phase center (2D): {result.position.round(4)}")
    print(f"error: {error_m * 100:.2f} cm")
    print(f"recovered axis: {result.recovered_axis} (1 = depth, via d_r)")
    print(f"WLS iterations: {result.solution.iterations}")


if __name__ == "__main__":
    main()
