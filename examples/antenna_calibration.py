"""Full phase calibration of a three-antenna rig (paper Sec. IV + V-F1).

Three antennas stand in a line, each with a hidden phase-center
displacement and hardware phase offset. One tag performs the Fig. 11
three-line scan in front of them; every antenna observes the same
movement. For each antenna we:

1. locate its actual phase center in 3D with the adaptive LION pipeline,
2. report the center displacement (estimated - physical),
3. estimate its phase offset (Eq. 17) and the offset *differences*
   between antennas, which are tag-independent and directly usable by
   differential multi-antenna localization.

Run:  python examples/antenna_calibration.py
"""

import numpy as np

from repro import (
    Antenna,
    ParameterGrid,
    SnrScaledPhaseNoise,
    Tag,
    ThreeLineScan,
    calibrate_antenna,
    relative_phase_offsets,
    simulate_scan,
)


def make_rig(rng: np.random.Generator) -> list[Antenna]:
    """Three antennas at 30 cm spacing, facing the scan area (+y)."""
    antennas = []
    for index, x in enumerate((-0.3, 0.0, 0.3)):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        antennas.append(
            Antenna(
                physical_center=(x, 0.0, 0.0),
                center_displacement=tuple(rng.uniform(0.02, 0.03) * direction),
                phase_offset_rad=float(rng.uniform(0.0, 2 * np.pi)),
                boresight=(0.0, 1.0, 0.0),
                name=f"A{index + 1}",
            )
        )
    return antennas


def main() -> None:
    rng = np.random.default_rng(11)
    antennas = make_rig(rng)
    tag = Tag.random(rng, epc="calibration-tag")

    # The Fig. 11 scan: L1 at 0.7 m depth, L2 20 cm above, L3 20 cm behind,
    # traversed continuously (transit moves keep the phase unwrappable).
    scan_path = ThreeLineScan(
        x_start=-0.55, x_end=0.55, y_offset=0.2, z_offset=0.2, origin=(0.0, 0.7, 0.0)
    )
    grid = ParameterGrid(
        ranges_m=(0.7, 0.8, 0.9, 1.0), intervals_m=(0.15, 0.2, 0.25, 0.3)
    )

    calibrations = []
    for antenna in antennas:
        scan = simulate_scan(
            scan_path,
            antenna,
            tag=tag,
            rng=rng,
            noise=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.7),
        )
        calibration, adaptive = calibrate_antenna(
            scan.positions,
            scan.phases,
            antenna.physical_center_array,
            antenna_name=antenna.name,
            segment_ids=scan.segment_ids,
            exclude_mask=scan.exclude_mask,
            grid=grid,
        )
        calibrations.append(calibration)

        true_displacement = np.asarray(antenna.center_displacement)
        estimate_error = np.linalg.norm(
            calibration.center_displacement - true_displacement
        )
        print(f"--- {antenna.name} ---")
        print(f"  estimated center      : {calibration.estimated_center.round(4)}")
        print(f"  center displacement   : {calibration.center_displacement.round(4)}")
        print(f"  true displacement     : {true_displacement.round(4)}")
        print(f"  displacement error    : {estimate_error * 100:.2f} cm")
        print(f"  phase offset (Eq. 17) : {calibration.phase_offset_rad:.3f} rad")
        print(f"  adaptive grid points  : {len(adaptive.outcomes)}, "
              f"selected {len(adaptive.selected)}")

    print("--- relative phase offsets (tag-independent) ---")
    offsets = relative_phase_offsets(calibrations)
    for name, value in offsets.items():
        antenna = next(a for a in antennas if a.name == name)
        truth = antenna.phase_offset_rad - antennas[0].phase_offset_rad
        truth = np.mod(truth + np.pi, 2 * np.pi) - np.pi
        print(f"  {name}: estimated {value:+.3f} rad  (true {truth:+.3f} rad)")


if __name__ == "__main__":
    main()
