"""Configuration of one streaming tag session.

:class:`StreamConfig` bundles the estimator choice with the window,
cadence, settle, departure, and drift knobs of a session. It is frozen,
validated on construction, and dict-round-trippable (the HTTP create
body carries exactly :meth:`StreamConfig.to_dict`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of one tag session.

    Attributes:
        estimator: registry name of the windowed re-solve method
            (``"lion"`` rides the fused incremental assembler; other
            names fall back to batch estimation over the window).
        estimator_config: dict config for that estimator (``None`` for
            defaults), as accepted by ``repro.pipeline.resolve_config``.
        max_window_reads: sliding-window bound in reads.
        min_window_reads: reads required before the first windowed
            re-solve (must be at least 3 — the solvable minimum).
        update_every_reads: fast-path estimate cadence, in reads.
        resolve_every_reads: windowed re-solve cadence, in reads.
        settle_window: consecutive estimates that must agree to settle.
        settle_epsilon_m: agreement radius for settling, meters.
        depart_after_s: idle time after which the sweep departs a session.
        drift_threshold_m: fast-vs-windowed divergence that raises a
            :class:`~repro.stream.events.CalibrationDriftAlarm`.
        fast_pair_lag: pair lag of the implicit ``lion-online`` fast path
            used when the windowed estimator has no streaming facet.
        fast_min_rows: rows before the implicit fast path reports.
    """

    estimator: str = "lion"
    estimator_config: Optional[Dict[str, Any]] = None
    max_window_reads: int = 512
    min_window_reads: int = 12
    update_every_reads: int = 10
    resolve_every_reads: int = 64
    settle_window: int = 5
    settle_epsilon_m: float = 0.002
    depart_after_s: float = 2.0
    drift_threshold_m: float = 0.25
    fast_pair_lag: int = 25
    fast_min_rows: int = 10

    def __post_init__(self) -> None:
        if not self.estimator:
            raise ValueError("estimator name must be non-empty")
        if self.max_window_reads < 3:
            raise ValueError("max_window_reads must be at least 3")
        if self.min_window_reads < 3:
            raise ValueError("min_window_reads must be at least 3")
        if self.min_window_reads > self.max_window_reads:
            raise ValueError("min_window_reads cannot exceed max_window_reads")
        if self.update_every_reads < 1:
            raise ValueError("update_every_reads must be positive")
        if self.resolve_every_reads < 1:
            raise ValueError("resolve_every_reads must be positive")
        if self.settle_window < 2:
            raise ValueError("settle_window must be at least 2")
        if self.settle_epsilon_m <= 0.0:
            raise ValueError("settle_epsilon_m must be positive")
        if self.depart_after_s <= 0.0:
            raise ValueError("depart_after_s must be positive")
        if self.drift_threshold_m <= 0.0:
            raise ValueError("drift_threshold_m must be positive")
        if self.fast_pair_lag < 1:
            raise ValueError("fast_pair_lag must be positive")
        if self.fast_min_rows < 1:
            raise ValueError("fast_min_rows must be positive")
        if self.estimator_config is not None:
            object.__setattr__(self, "estimator_config", dict(self.estimator_config))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict that :meth:`from_dict` reconstructs exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StreamConfig":
        """Build from a dict, rejecting unknown keys.

        Raises:
            ValueError: on unknown keys (typo protection at the wire).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown stream config keys: {unknown}")
        return cls(**dict(payload))

    def override(self, **changes: Any) -> "StreamConfig":
        """A copy with ``changes`` applied (validated like a fresh build)."""
        return replace(self, **changes)
