"""The session manager: capacity, feeding, re-solves, sweeps, drain.

:class:`SessionManager` owns every live :class:`TagSession`, serializes
access per session (one lock per session — the ordering half of session
affinity), enforces a global capacity
(:class:`~repro.stream.errors.SessionCapacityError` → HTTP 429), runs
the departure sweep (:meth:`poll`), and routes windowed re-solves either
directly through the session or — when constructed with a
:class:`repro.serve.ServeEngine` — through the engine's session-affine
admission, where concurrent sessions' re-solves fuse into one stacked
IRLS per ``(estimator, config, dim)`` group.

Every event flows through one :class:`~repro.stream.events.EventBus`;
``serve.stream.*`` metrics ride the usual :mod:`repro.obs` flag guards.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import LATENCY_BUCKETS_S, get_logger, get_registry, metrics_enabled, span, tracing_enabled
from repro.pipeline.contract import EstimationReport
from repro.serve.engine import ServeEngine
from repro.stream.config import StreamConfig
from repro.stream.errors import (
    DuplicateSessionError,
    SessionCapacityError,
    UnknownSessionError,
)
from repro.stream.events import EventBus, SessionEvent
from repro.stream.session import SessionState, TagSession

_logger = get_logger("stream.manager")

Read = Tuple[float, Sequence[float], float]


@dataclass(frozen=True)
class FeedResult:
    """Outcome of one chunk of reads fed into a session.

    Attributes:
        session_id: the fed session.
        accepted: reads ingested from the chunk.
        state: the session state after the chunk.
        events: the events the chunk triggered, in order.
        estimate: the session's latest estimate summary, or ``None``.
    """

    session_id: str
    accepted: int
    state: str
    events: Tuple[SessionEvent, ...]
    estimate: Optional[Dict[str, Any]]


@dataclass
class _Entry:
    """One managed session plus its serialization lock.

    The lock is reentrant: an engine re-solve that resolves inline
    (result-cache hit) invokes its completion callback on the feeding
    thread while the feed still holds the lock.
    """

    session: TagSession
    lock: threading.RLock = field(default_factory=threading.RLock)


class SessionManager:
    """Owns the live tag sessions of one process.

    Args:
        defaults: the :class:`StreamConfig` applied to sessions opened
            without an explicit one.
        max_sessions: live-session capacity; opens beyond it shed load.
        engine: route windowed re-solves through this serving engine
            (session-affine, cross-session fused batching). ``None``
            re-solves directly on the feeding thread.
        bus: event bus to publish on (one is created when omitted).
        clock: monotonic idle clock, injectable for tests.
    """

    def __init__(
        self,
        defaults: Optional[StreamConfig] = None,
        max_sessions: int = 1024,
        engine: Optional[ServeEngine] = None,
        bus: Optional[EventBus] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self.defaults = defaults or StreamConfig()
        self.max_sessions = int(max_sessions)
        self.engine = engine
        self.bus = bus or EventBus()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}
        self._by_key: Dict[Tuple[str, str], str] = {}
        self._draining = False
        self._opened = 0
        self._departed = 0
        self._reads_total = 0
        self._events_total = 0
        self._resolves_direct = 0
        self._resolves_engine = 0
        self._resolve_errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open_session(
        self,
        tag: str,
        antenna: str = "1",
        config: Optional[StreamConfig] = None,
        session_id: Optional[str] = None,
    ) -> TagSession:
        """Open a session for ``(tag, antenna)``.

        Raises:
            SessionCapacityError: at ``max_sessions`` live sessions.
            DuplicateSessionError: the key already has a live session.
            ValueError / KeyError / TypeError: bad stream or estimator
                config (fails here, not at first read).
        """
        if not tag:
            raise ValueError("tag must be non-empty")
        resolved = config or self.defaults
        sid = session_id or uuid.uuid4().hex[:16]
        key = (tag, antenna)
        session = TagSession(sid, tag, antenna, resolved)
        session.last_activity_s = self._clock()
        with self._lock:
            if self._draining:
                raise SessionCapacityError("manager is draining")
            if len(self._entries) >= self.max_sessions:
                raise SessionCapacityError(
                    f"session capacity reached ({self.max_sessions})"
                )
            if key in self._by_key:
                raise DuplicateSessionError(
                    f"tag {tag!r} antenna {antenna!r} already has live session "
                    f"{self._by_key[key]}"
                )
            if sid in self._entries:
                raise DuplicateSessionError(f"session id {sid!r} already exists")
            self._entries[sid] = _Entry(session=session)
            self._by_key[key] = sid
            self._opened += 1
            active = len(self._entries)
        if metrics_enabled():
            registry = get_registry()
            registry.counter("serve.stream.sessions_total", result="opened").inc()
            registry.gauge("serve.stream.sessions_active").set(active)
        return session

    def get_session(self, session_id: str) -> TagSession:
        """Look up a live session.

        Raises:
            UnknownSessionError: for an unknown or already-removed id.
        """
        with self._lock:
            entry = self._entries.get(session_id)
        if entry is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        return entry.session

    def close_session(self, session_id: str, reason: str = "closed") -> FeedResult:
        """Depart and remove one session, flushing a final re-solve.

        Raises:
            UnknownSessionError: for an unknown id.
        """
        entry = self._entry(session_id)
        with entry.lock:
            events: List[SessionEvent] = []
            if (
                entry.session.state is not SessionState.DEPARTED
                and entry.session.window_size() >= entry.session.config.min_window_reads
            ):
                events.extend(entry.session.resolve_windowed())
                with self._lock:
                    self._resolves_direct += 1
            events.extend(entry.session.depart(reason))
            snapshot_state = entry.session.state.value
            estimate = entry.session.last_estimate
        self._remove(session_id)
        self._publish(events)
        return FeedResult(
            session_id=session_id,
            accepted=0,
            state=snapshot_state,
            events=tuple(events),
            estimate=estimate,
        )

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def feed(self, session_id: str, reads: Iterable[Read]) -> FeedResult:
        """Feed a chunk of ``(timestamp_s, position, phase)`` reads.

        Reads of one session are serialized under its lock and applied
        in chunk order — combined with the engine's session-affine
        admission, a session's estimates can never observe its reads out
        of order. Returns the triggered events (also published on the
        bus).

        Raises:
            UnknownSessionError: for an unknown id.
            SessionClosedError: the session has departed.
            ValueError: on a malformed read.
        """
        entry = self._entry(session_id)
        events: List[SessionEvent] = []
        accepted = 0
        with entry.lock:
            session = entry.session
            for timestamp_s, position, phase in reads:
                events.extend(session.add_read(timestamp_s, position, phase))
                accepted += 1
            session.last_activity_s = self._clock()
            if session.needs_resolve():
                events.extend(self._schedule_resolve(entry))
            state = session.state.value
            estimate = session.last_estimate
        with self._lock:
            self._reads_total += accepted
        if metrics_enabled() and accepted:
            get_registry().counter("serve.stream.reads_total").inc(accepted)
        self._publish(events)
        return FeedResult(
            session_id=session_id,
            accepted=accepted,
            state=state,
            events=tuple(events),
            estimate=estimate,
        )

    def _schedule_resolve(self, entry: _Entry) -> List[SessionEvent]:
        """Run (or dispatch) one windowed re-solve. Caller holds the lock."""
        session = entry.session
        if self.engine is None:
            if not tracing_enabled():
                events = session.resolve_windowed()
            else:
                with span("stream.resolve", session=session.session_id, mode="direct"):
                    events = session.resolve_windowed()
            with self._lock:
                self._resolves_direct += 1
            self._observe_resolve("direct")
            return events

        name, config, request = session.build_resolve_request()
        session.mark_resolve_pending()
        started = time.perf_counter()
        try:
            ticket = self.engine.submit(
                name,
                request,
                config=config,
                session_key=session.session_id,
                request_id=f"stream-{session.session_id}",
            )
        except Exception:
            session.resolve_failed()
            with self._lock:
                self._resolve_errors += 1
            return []
        with self._lock:
            self._resolves_engine += 1

        def _apply(future: "Future[EstimationReport]") -> None:
            events: List[SessionEvent]
            with entry.lock:
                error = future.exception()
                if error is not None:
                    session.resolve_failed()
                    with self._lock:
                        self._resolve_errors += 1
                    _logger.debug(
                        "windowed re-solve failed: session=%s error=%s",
                        session.session_id,
                        error,
                    )
                    return
                report = future.result()
                events = session.apply_windowed(report.position)
            self._observe_resolve("engine", time.perf_counter() - started)
            self._publish(events)

        ticket.add_done_callback(_apply)
        return []

    # ------------------------------------------------------------------
    # sweeping / drain
    # ------------------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> List[SessionEvent]:
        """Depart sessions idle past their ``depart_after_s`` and remove them."""
        current = self._clock() if now is None else now
        expired: List[str] = []
        with self._lock:
            for sid, entry in self._entries.items():
                idle = current - entry.session.last_activity_s
                if idle >= entry.session.config.depart_after_s:
                    expired.append(sid)
        events: List[SessionEvent] = []
        for sid in expired:
            entry = self._entry_or_none(sid)
            if entry is None:
                continue
            with entry.lock:
                events.extend(entry.session.depart("timeout"))
            self._remove(sid)
        self._publish(events)
        return events

    def drain(self) -> Dict[str, Any]:
        """Session-aware drain: final re-solves, departures, removal.

        Stops admitting new sessions, flushes one final windowed
        re-solve per live session (directly — the engine may itself be
        draining), departs them with ``reason="drain"``, and returns a
        summary. Idempotent.
        """
        with self._lock:
            self._draining = True
            sids = list(self._entries)
        finals = 0
        events: List[SessionEvent] = []
        for sid in sids:
            entry = self._entry_or_none(sid)
            if entry is None:
                continue
            with entry.lock:
                session = entry.session
                if (
                    session.state is not SessionState.DEPARTED
                    and session.window_size() >= session.config.min_window_reads
                ):
                    events.extend(session.resolve_windowed())
                    with self._lock:
                        self._resolves_direct += 1
                    finals += 1
                events.extend(session.depart("drain"))
            self._remove(sid)
        self._publish(events)
        return {"sessions_drained": len(sids), "final_resolves": finals}

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (new opens are shed)."""
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def active_sessions(self) -> int:
        """Live session count."""
        with self._lock:
            return len(self._entries)

    def session_ids(self) -> List[str]:
        """Ids of the live sessions."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Always-on counters plus per-state occupancy."""
        with self._lock:
            states: Dict[str, int] = {}
            for entry in self._entries.values():
                state = entry.session.state.value
                states[state] = states.get(state, 0) + 1
            return {
                "active": len(self._entries),
                "opened": self._opened,
                "departed": self._departed,
                "reads": self._reads_total,
                "events": self._events_total,
                "resolves_direct": self._resolves_direct,
                "resolves_engine": self._resolves_engine,
                "resolve_errors": self._resolve_errors,
                "draining": self._draining,
                "states": states,
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, session_id: str) -> _Entry:
        entry = self._entry_or_none(session_id)
        if entry is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        return entry

    def _entry_or_none(self, session_id: str) -> Optional[_Entry]:
        with self._lock:
            return self._entries.get(session_id)

    def _remove(self, session_id: str) -> None:
        with self._lock:
            entry = self._entries.pop(session_id, None)
            if entry is None:
                return
            self._by_key.pop((entry.session.tag, entry.session.antenna), None)
            self._departed += 1
            active = len(self._entries)
        if metrics_enabled():
            registry = get_registry()
            registry.counter("serve.stream.sessions_total", result="departed").inc()
            registry.gauge("serve.stream.sessions_active").set(active)

    def _publish(self, events: List[SessionEvent]) -> None:
        if not events:
            return
        with self._lock:
            self._events_total += len(events)
        if metrics_enabled():
            registry = get_registry()
            for event in events:
                registry.counter("serve.stream.events_total", kind=event.kind).inc()
        self.bus.publish_all(events)

    def _observe_resolve(self, mode: str, elapsed_s: Optional[float] = None) -> None:
        if not metrics_enabled():
            return
        registry = get_registry()
        registry.counter("serve.stream.resolves_total", mode=mode).inc()
        if elapsed_s is not None:
            registry.histogram(
                "serve.stream.resolve_seconds", buckets=LATENCY_BUCKETS_S
            ).observe(elapsed_s)
