"""Per-``(tag, antenna)`` streaming session state machine.

A :class:`TagSession` owns one tag's read stream at one antenna and
narrates it as lifecycle events::

    warming ──► tracking ◄──► settled ──► departed
       │            │                         ▲
       └────────────┴─────────────────────────┘   (timeout / close / drain)

Two estimation paths run side by side:

* **fast path** — an incremental streaming estimator (the registry's
  :class:`~repro.pipeline.contract.StreamingEstimator` facet when the
  session's estimator advertises it, otherwise an implicit
  ``lion-online``) folds every read in O(1) and produces
  ``PositionUpdated(source="fast")`` estimates at the update cadence;
* **windowed re-solve** — the bounded sliding window
  (:class:`repro.core.incremental.IncrementalScanAssembler` for LION,
  raw read arrays otherwise) is periodically re-solved through the
  batch path — directly, or fused across sessions by the serving
  engine — yielding ``PositionUpdated(source="windowed")`` estimates
  that are bit-identical to a one-shot ``locate`` on the same window.

When the two disagree beyond ``drift_threshold_m`` the session raises a
``CalibrationDriftAlarm`` — the streaming symptom of the phase-drift
problem the paper's calibration attacks.

Sessions are not thread-safe; :class:`~repro.stream.manager.SessionManager`
serializes access per session (the session-affinity guarantee).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.core.incremental import IncrementalScanAssembler
from repro.core.localizer import LionLocalizer
from repro.pipeline.contract import (
    EstimationReport,
    EstimationRequest,
    Estimator,
    StreamingEstimator,
)
from repro.pipeline.estimators import LionEstimator
from repro.pipeline.registry import create_estimator, resolve_config, supports_streaming
from repro.stream.config import StreamConfig
from repro.stream.errors import SessionClosedError
from repro.stream.events import (
    CalibrationDriftAlarm,
    PositionUpdated,
    SessionEvent,
    TagDeparted,
    TagEntered,
    TagSettled,
    as_position,
)

Read = Tuple[float, Sequence[float], float]


class SessionState(str, enum.Enum):
    """Lifecycle states of a tag session."""

    WARMING = "warming"
    TRACKING = "tracking"
    SETTLED = "settled"
    DEPARTED = "departed"


class TagSession:
    """One tag's streaming state at one antenna.

    Args:
        session_id: opaque id assigned by the manager.
        tag: tag EPC.
        antenna: antenna id.
        config: the session's :class:`StreamConfig`.

    Raises:
        KeyError / TypeError / ValueError: estimator-config resolution
            failures, synchronously (bad sessions fail at open, not at
            first read).
    """

    def __init__(
        self, session_id: str, tag: str, antenna: str, config: StreamConfig
    ) -> None:
        self.session_id = session_id
        self.tag = tag
        self.antenna = antenna
        self.config = config
        self.state = SessionState.WARMING

        resolved = resolve_config(config.estimator, config.estimator_config)
        self._window_estimator: Estimator = create_estimator(
            config.estimator, resolved
        )
        self._estimator_dim = int(getattr(resolved, "dim", 2) or 2)

        # LION rides the incremental assembler (unwrap continuation +
        # recipe reuse); everything else keeps raw window arrays and
        # re-solves through its batch contract.
        self._assembler: Optional[IncrementalScanAssembler] = None
        self._raw_t: Deque[float] = deque(maxlen=config.max_window_reads)
        self._raw_pos: Deque[np.ndarray] = deque(maxlen=config.max_window_reads)
        self._raw_phase: Deque[float] = deque(maxlen=config.max_window_reads)
        if config.estimator == "lion":
            localizer: LionLocalizer = cast(
                LionEstimator, self._window_estimator
            ).localizer
            self._assembler = IncrementalScanAssembler(
                localizer, max_reads=config.max_window_reads
            )

        self._fast: Optional[StreamingEstimator] = self._build_fast_path()

        self._sequence = 0
        self._reads = 0
        self._reads_since_update = 0
        self._reads_since_resolve = 0
        self._resolves = 0
        self._drift_alarms = 0
        self._resolve_pending = False
        self._last_timestamp_s = 0.0
        self.last_activity_s = 0.0
        self._recent: Deque[np.ndarray] = deque(maxlen=config.settle_window)
        self._last_fast: Optional[np.ndarray] = None
        self._last_windowed: Optional[np.ndarray] = None
        self._last_estimate: Optional[Dict[str, Any]] = None

    def _build_fast_path(self) -> Optional[StreamingEstimator]:
        """The incremental estimator feeding ``source="fast"`` updates."""
        name = self.config.estimator
        if supports_streaming(name):
            # A *separate* instance from the windowed one: the windowed
            # fallback replays the window through ``estimate``, which
            # resets streaming state.
            return cast(
                StreamingEstimator,
                create_estimator(name, self.config.estimator_config),
            )
        if name == "lion":
            base = resolve_config(name, self.config.estimator_config)
            fast_config: Dict[str, Any] = {
                "dim": int(getattr(base, "dim", 2)),
                "wavelength_m": float(getattr(base, "wavelength_m", 0.0)),
                "positive_side": bool(getattr(base, "positive_side", True)),
                "pair_lag": self.config.fast_pair_lag,
                "min_rows": self.config.fast_min_rows,
            }
            return cast(
                StreamingEstimator, create_estimator("lion-online", fast_config)
            )
        return None

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def add_read(
        self, timestamp_s: float, position: Sequence[float], wrapped_phase_rad: float
    ) -> List[SessionEvent]:
        """Fold one read in; returns the events it triggered, in order.

        Raises:
            SessionClosedError: the session already departed.
            ValueError: on a malformed read (non-finite, wrong shape).
        """
        if self.state is SessionState.DEPARTED:
            raise SessionClosedError(f"session {self.session_id} has departed")
        events: List[SessionEvent] = []
        timestamp = float(timestamp_s)
        if self._reads == 0:
            events.append(self._event(TagEntered, timestamp))

        if self._assembler is not None:
            self._assembler.append(position, wrapped_phase_rad, timestamp_s=timestamp)
        else:
            point = np.asarray(position, dtype=float)
            if point.ndim != 1 or point.shape[0] not in (2, 3):
                raise ValueError(
                    f"position must be a 2- or 3-vector, got {point.shape}"
                )
            self._raw_t.append(timestamp)
            self._raw_pos.append(point.copy())
            self._raw_phase.append(float(wrapped_phase_rad))

        if self._fast is not None:
            self._fast.ingest(np.asarray(position, dtype=float), float(wrapped_phase_rad))

        self._reads += 1
        self._reads_since_update += 1
        self._reads_since_resolve += 1
        self._last_timestamp_s = timestamp

        if (
            self._fast is not None
            and self._reads_since_update >= self.config.update_every_reads
            and self._fast.ready()
        ):
            self._reads_since_update = 0
            try:
                report = self._fast.snapshot()
            except ValueError:
                report = None
            if report is not None:
                self._last_fast = np.asarray(report.position, dtype=float)
                events.extend(
                    self._emit_update(self._last_fast, "fast", timestamp)
                )
        return events

    # ------------------------------------------------------------------
    # windowed re-solve
    # ------------------------------------------------------------------
    def window_size(self) -> int:
        """Reads currently in the sliding window."""
        if self._assembler is not None:
            return len(self._assembler)
        return len(self._raw_phase)

    def window_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The window's raw ``(timestamps, positions, phases)`` arrays."""
        if self._assembler is not None:
            return self._assembler.window_arrays()
        timestamps = np.array(self._raw_t, dtype=float)
        positions = (
            np.array(self._raw_pos, dtype=float) if self._raw_pos else np.empty((0, 2))
        )
        phases = np.array(self._raw_phase, dtype=float)
        return timestamps, positions, phases

    def needs_resolve(self) -> bool:
        """Whether a windowed re-solve is due (and none is in flight)."""
        return (
            self.state is not SessionState.DEPARTED
            and not self._resolve_pending
            and self.window_size() >= self.config.min_window_reads
            and self._reads_since_resolve >= self.config.resolve_every_reads
        )

    def build_resolve_request(self) -> Tuple[str, Optional[Dict[str, Any]], EstimationRequest]:
        """The ``(estimator, config, request)`` of a windowed re-solve.

        The request carries the window's *raw* reads, so any executor —
        the session's own direct path, the serving engine's fused batch,
        or a one-shot ``locate`` — produces the same, bit-identical
        answer.
        """
        _, positions, phases = self.window_arrays()
        request = EstimationRequest(positions=positions, phases_rad=phases)
        return self.config.estimator, self.config.estimator_config, request

    def mark_resolve_pending(self) -> None:
        """Record an in-flight engine re-solve (single-flight per session)."""
        self._resolve_pending = True
        self._reads_since_resolve = 0

    def resolve_windowed(self) -> List[SessionEvent]:
        """Re-solve the window directly (no engine) and apply the result.

        LION sessions go through the incremental assembler's fused path
        (recipe cache, bit-identical to ``locate``); other estimators
        re-estimate the window through their batch contract. A window
        that cannot solve (degenerate, too few reads) is skipped — the
        fast path keeps serving estimates.
        """
        self._reads_since_resolve = 0
        try:
            if self._assembler is not None:
                result = self._assembler.resolve()
                position = np.asarray(result.position, dtype=float)
            else:
                name, config, request = self.build_resolve_request()
                report = self._window_estimator.estimate(request)
                position = np.asarray(report.position, dtype=float)
        except ValueError:
            return []
        return self.apply_windowed(position)

    def apply_windowed(self, position: np.ndarray) -> List[SessionEvent]:
        """Fold a finished windowed re-solve back into the session."""
        self._resolve_pending = False
        self._resolves += 1
        estimate = np.asarray(position, dtype=float)
        self._last_windowed = estimate
        events = self._emit_update(estimate, "windowed", self._last_timestamp_s)
        # The first re-solve lands while the RLS fast path is still
        # converging; disagreement there is warmup, not drift.
        if (
            self._resolves > 1
            and self._last_fast is not None
            and self._last_fast.shape == estimate.shape
        ):
            drift = float(np.linalg.norm(self._last_fast - estimate))
            if drift > self.config.drift_threshold_m:
                self._drift_alarms += 1
                events.append(
                    self._event(
                        CalibrationDriftAlarm,
                        self._last_timestamp_s,
                        drift_m=drift,
                        fast_position=as_position(self._last_fast),
                        windowed_position=as_position(estimate),
                    )
                )
        return events

    def resolve_failed(self) -> None:
        """Clear the in-flight flag after an engine re-solve failed."""
        self._resolve_pending = False

    def final_resolve(self) -> Optional[EstimationReport]:
        """One last windowed solve of the current window, or ``None``.

        This is the estimate the drain path and ``lion replay`` report;
        for LION it is bit-identical to a one-shot ``locate`` over
        :meth:`window_arrays`.
        """
        try:
            if self._assembler is not None:
                result = self._assembler.resolve()
                return cast(LionEstimator, self._window_estimator).report(result)
            name, config, request = self.build_resolve_request()
            return self._window_estimator.estimate(request)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def depart(self, reason: str) -> List[SessionEvent]:
        """End the session; idempotent (a departed session emits nothing)."""
        if self.state is SessionState.DEPARTED:
            return []
        self.state = SessionState.DEPARTED
        return [
            self._event(
                TagDeparted, self._last_timestamp_s, reason=reason, reads=self._reads
            )
        ]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe session summary for ``GET /v1/sessions/{id}``."""
        return {
            "session_id": self.session_id,
            "tag": self.tag,
            "antenna": self.antenna,
            "state": self.state.value,
            "estimator": self.config.estimator,
            "reads": self._reads,
            "window_reads": self.window_size(),
            "events": self._sequence,
            "resolves": self._resolves,
            "drift_alarms": self._drift_alarms,
            "last_timestamp_s": self._last_timestamp_s,
            "estimate": dict(self._last_estimate) if self._last_estimate else None,
        }

    @property
    def reads(self) -> int:
        """Reads consumed so far."""
        return self._reads

    @property
    def last_estimate(self) -> Optional[Dict[str, Any]]:
        """The most recent estimate summary (position/source/reads)."""
        return dict(self._last_estimate) if self._last_estimate else None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _event(
        self, cls: type, timestamp_s: float, **extra: Any
    ) -> SessionEvent:
        self._sequence += 1
        return cast(
            SessionEvent,
            cls(
                session_id=self.session_id,
                tag=self.tag,
                antenna=self.antenna,
                sequence=self._sequence,
                timestamp_s=float(timestamp_s),
                **extra,
            ),
        )

    def _emit_update(
        self, position: np.ndarray, source: str, timestamp_s: float
    ) -> List[SessionEvent]:
        """One estimate → ``PositionUpdated`` plus settle bookkeeping."""
        events: List[SessionEvent] = [
            self._event(
                PositionUpdated,
                timestamp_s,
                position=as_position(position),
                source=source,
                reads=self._reads,
            )
        ]
        self._last_estimate = {
            "position": list(as_position(position)),
            "source": source,
            "reads": self._reads,
        }
        if self.state is SessionState.WARMING:
            self.state = SessionState.TRACKING
        self._recent.append(np.asarray(position, dtype=float))
        if len(self._recent) == self.config.settle_window:
            stacked = np.vstack(list(self._recent))
            center = stacked.mean(axis=0)
            dispersion = float(np.max(np.linalg.norm(stacked - center, axis=1)))
            if dispersion <= self.config.settle_epsilon_m:
                if self.state is SessionState.TRACKING:
                    self.state = SessionState.SETTLED
                    events.append(
                        self._event(
                            TagSettled,
                            timestamp_s,
                            position=as_position(center),
                            dispersion_m=dispersion,
                        )
                    )
            elif self.state is SessionState.SETTLED:
                self.state = SessionState.TRACKING
        return events
