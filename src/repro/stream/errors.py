"""Error taxonomy of the streaming session layer.

Every error maps to one HTTP status in :mod:`repro.serve.net` (see
``classify_error``): capacity → 429, unknown id → 404, duplicate key →
409, closed session → 409, draining → 503. All subclass
:class:`StreamError` so embedding callers can catch the layer wholesale.
"""

from __future__ import annotations


class StreamError(RuntimeError):
    """Base class of every streaming-session error."""


class SessionCapacityError(StreamError):
    """The manager is at ``max_sessions``; shed load (HTTP 429)."""


class UnknownSessionError(StreamError):
    """No session with the given id exists (HTTP 404)."""


class DuplicateSessionError(StreamError):
    """An active session already owns this ``(tag, antenna)`` key (HTTP 409)."""


class SessionClosedError(StreamError):
    """Reads arrived for a departed/closed session (HTTP 409)."""
