"""Replay recorded read streams through the session layer.

Recorded scans (:func:`repro.datasets.io.session_streams`) replay
through a :class:`~repro.stream.manager.SessionManager` either at
**wall-clock** pace (sleeping out the recorded inter-read gaps,
optionally time-scaled) or at **max speed** (no sleeping — the offline
test/bench mode). The replay's final windowed re-solve is compared
bit-for-bit against a one-shot batch estimate over the identical window
— the end-to-end form of the incremental-assembly identity the core
layer guarantees — and the verdict ships in the
:class:`ReplayResult`. ``lion replay`` is the CLI face of this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.io import RecordedStream
from repro.pipeline.registry import estimate as pipeline_estimate
from repro.stream.config import StreamConfig
from repro.stream.events import SessionEvent
from repro.stream.manager import SessionManager


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one recorded stream.

    Attributes:
        session_id / tag / antenna: the replayed session.
        reads: reads fed.
        events: event counts by kind.
        final_position: the final windowed re-solve, or ``None`` when
            the window never became solvable.
        oneshot_position: the one-shot batch estimate over the same
            final window (verification mode only).
        bit_identical: whether the two agree bit-for-bit; ``None`` when
            verification was skipped or the window never solved.
        final_state: session state just before departure.
        wall_s: wall time the replay took.
        reads_per_sec: feed throughput over the replay.
    """

    session_id: str
    tag: str
    antenna: str
    reads: int
    events: Dict[str, int]
    final_position: Optional[Tuple[float, ...]]
    oneshot_position: Optional[Tuple[float, ...]]
    bit_identical: Optional[bool]
    final_state: str
    wall_s: float
    reads_per_sec: float


def replay_stream(
    stream: RecordedStream,
    manager: SessionManager,
    speed: Optional[float] = None,
    chunk_reads: int = 32,
    verify: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> ReplayResult:
    """Replay one recorded stream through ``manager``.

    Args:
        stream: the recorded ``(tag, antenna)`` read stream.
        manager: the session manager to feed (its bus sees the events).
        speed: ``None`` replays at max speed; a positive factor replays
            at wall clock scaled by it (``1.0`` = real time, ``2.0`` =
            twice as fast).
        chunk_reads: reads per :meth:`SessionManager.feed` chunk (the
            NDJSON-chunk analogue).
        verify: compare the final windowed re-solve bit-for-bit against
            a one-shot estimate over the identical window.
        sleep: injectable sleeper (tests pace without waiting).

    Raises:
        ValueError: on a non-positive ``speed`` or ``chunk_reads``.
    """
    if speed is not None and speed <= 0.0:
        raise ValueError(f"speed must be positive, got {speed}")
    if chunk_reads < 1:
        raise ValueError(f"chunk_reads must be positive, got {chunk_reads}")

    session = manager.open_session(stream.tag, stream.antenna)
    events: Dict[str, int] = {}
    started = time.perf_counter()
    total = len(stream)
    index = 0
    while index < total:
        end = min(index + chunk_reads, total)
        if speed is not None and index > 0:
            gap = float(stream.timestamps_s[index] - stream.timestamps_s[index - 1])
            if gap > 0.0:
                sleep(gap / speed)
        chunk = [
            (
                float(stream.timestamps_s[i]),
                stream.positions[i],
                float(stream.phases_rad[i]),
            )
            for i in range(index, end)
        ]
        result = manager.feed(session.session_id, chunk)
        for event in result.events:
            events[event.kind] = events.get(event.kind, 0) + 1
        index = end
    wall_s = time.perf_counter() - started

    final_position: Optional[Tuple[float, ...]] = None
    oneshot_position: Optional[Tuple[float, ...]] = None
    bit_identical: Optional[bool] = None
    final = session.final_resolve()
    if final is not None:
        final_position = tuple(float(v) for v in final.position)
        if verify:
            name, config, request = session.build_resolve_request()
            oneshot = pipeline_estimate(name, request, config)
            oneshot_position = tuple(float(v) for v in oneshot.position)
            bit_identical = bool(
                np.array_equal(
                    np.asarray(final.position, dtype=float),
                    np.asarray(oneshot.position, dtype=float),
                )
            )
    final_state = session.state.value
    closing = manager.close_session(session.session_id, reason="closed")
    for event in closing.events:
        events[event.kind] = events.get(event.kind, 0) + 1

    return ReplayResult(
        session_id=session.session_id,
        tag=stream.tag,
        antenna=stream.antenna,
        reads=total,
        events=events,
        final_position=final_position,
        oneshot_position=oneshot_position,
        bit_identical=bit_identical,
        final_state=final_state,
        wall_s=wall_s,
        reads_per_sec=(total / wall_s) if wall_s > 0.0 else float(total),
    )


def replay_records(
    streams: List[RecordedStream],
    config: Optional[StreamConfig] = None,
    speed: Optional[float] = None,
    chunk_reads: int = 32,
    verify: bool = True,
    subscriber: Optional[Callable[[SessionEvent], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> List[ReplayResult]:
    """Replay every recorded stream through a fresh manager, in order.

    Convenience over :func:`replay_stream` for the CLI: one manager,
    sequential sessions, optional event subscriber (the CLI prints
    events through it).
    """
    manager = SessionManager(
        defaults=config or StreamConfig(), max_sessions=max(len(streams), 1)
    )
    token: Optional[int] = None
    if subscriber is not None:
        token = manager.bus.subscribe(subscriber)
    try:
        return [
            replay_stream(
                stream,
                manager,
                speed=speed,
                chunk_reads=chunk_reads,
                verify=verify,
                sleep=sleep,
            )
            for stream in streams
        ]
    finally:
        if token is not None:
            manager.bus.unsubscribe(token)
