"""Typed lifecycle events of streaming tag sessions, and their bus.

A :class:`~repro.stream.session.TagSession` narrates its life as typed,
immutable events: ``TagEntered`` on the first read, ``PositionUpdated``
on fast-path and windowed estimates, ``TagSettled`` when the estimate
stops moving, ``CalibrationDriftAlarm`` when the incremental fast path
and the windowed re-solve disagree beyond threshold (the streaming
counterpart of the paper's calibration-drift concern), and
``TagDeparted`` at the end. Events serialize to flat JSON-safe dicts
(:meth:`SessionEvent.to_dict`) for the HTTP surface and carry a
per-session monotone ``sequence`` so subscribers can detect gaps.

:class:`EventBus` is a synchronous fan-out: subscribers register a
callback (optionally filtered by event kind); a subscriber raising does
not disturb the session, the publisher, or other subscribers — the
failure is counted and dropped.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Any, Callable, ClassVar, Dict, Iterable, List, Optional, Tuple

Position = Tuple[float, ...]


def as_position(values: Iterable[float]) -> Position:
    """Normalize an array-like into the JSON-safe position tuple."""
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class SessionEvent:
    """Base of every session lifecycle event.

    Attributes:
        session_id: the emitting session.
        tag: tag EPC of the session key.
        antenna: antenna id of the session key.
        sequence: per-session monotone event counter (gap detection).
        timestamp_s: stream time of the triggering read.
    """

    kind: ClassVar[str] = "session_event"

    session_id: str
    tag: str
    antenna: str
    sequence: int
    timestamp_s: float

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-safe representation, ``kind`` included."""
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class TagEntered(SessionEvent):
    """First read of a new tag session arrived."""

    kind: ClassVar[str] = "tag_entered"


@dataclass(frozen=True)
class PositionUpdated(SessionEvent):
    """A new position estimate is available.

    Attributes:
        position: the estimate, ``(x, y[, z])`` meters.
        source: ``"fast"`` (incremental streaming estimator) or
            ``"windowed"`` (periodic re-solve over the sliding window).
        reads: reads consumed by the session when this estimate was made.
    """

    kind: ClassVar[str] = "position_updated"

    position: Position = ()
    source: str = "fast"
    reads: int = 0


@dataclass(frozen=True)
class TagSettled(SessionEvent):
    """The estimate stopped moving (consecutive updates within epsilon).

    Attributes:
        position: the settled estimate.
        dispersion_m: max distance of the recent updates from their mean.
    """

    kind: ClassVar[str] = "tag_settled"

    position: Position = ()
    dispersion_m: float = 0.0


@dataclass(frozen=True)
class TagDeparted(SessionEvent):
    """The session ended.

    Attributes:
        reason: ``"timeout"`` (idle sweep), ``"closed"`` (explicit
            close), or ``"drain"`` (server shutdown).
        reads: total reads the session consumed.
    """

    kind: ClassVar[str] = "tag_departed"

    reason: str = "closed"
    reads: int = 0


@dataclass(frozen=True)
class CalibrationDriftAlarm(SessionEvent):
    """Fast path and windowed re-solve disagree beyond threshold.

    The incremental RLS estimate accumulates state across the whole
    stream while the windowed re-solve sees only the recent window; a
    persistent gap between them is the streaming symptom of phase/
    calibration drift (the paper's Achilles' heel) or of a stale fast
    path, and warrants recalibration.

    Attributes:
        drift_m: distance between the two estimates.
        fast_position: the incremental estimate.
        windowed_position: the windowed re-solve estimate.
    """

    kind: ClassVar[str] = "calibration_drift_alarm"

    drift_m: float = 0.0
    fast_position: Position = ()
    windowed_position: Position = ()


#: Every concrete event kind, for subscribers and wire validation.
EVENT_KINDS: Tuple[str, ...] = (
    TagEntered.kind,
    PositionUpdated.kind,
    TagSettled.kind,
    TagDeparted.kind,
    CalibrationDriftAlarm.kind,
)

Subscriber = Callable[[SessionEvent], None]


class EventBus:
    """Thread-safe synchronous fan-out of session events.

    Subscribers run inline on the publishing thread, in subscription
    order; a raising subscriber is isolated (counted, never propagated).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: Dict[int, Tuple[Optional[frozenset[str]], Subscriber]] = {}
        self._next_token = 1
        self._published = 0
        self._subscriber_errors = 0

    def subscribe(
        self, callback: Subscriber, kinds: Optional[Iterable[str]] = None
    ) -> int:
        """Register ``callback``; returns the token for :meth:`unsubscribe`.

        Args:
            kinds: restrict delivery to these event kinds (``None`` = all).
        """
        wanted = frozenset(kinds) if kinds is not None else None
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = (wanted, callback)
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove a subscription; ``False`` when the token is unknown."""
        with self._lock:
            return self._subscribers.pop(token, None) is not None

    def publish(self, event: SessionEvent) -> None:
        """Deliver one event to every matching subscriber."""
        with self._lock:
            targets: List[Subscriber] = [
                callback
                for wanted, callback in self._subscribers.values()
                if wanted is None or event.kind in wanted
            ]
            self._published += 1
        for callback in targets:
            try:
                callback(event)
            except Exception:
                with self._lock:
                    self._subscriber_errors += 1

    def publish_all(self, events: Iterable[SessionEvent]) -> None:
        """Deliver a batch of events in order."""
        for event in events:
            self.publish(event)

    def stats(self) -> Dict[str, int]:
        """Published / subscriber-error counters and subscriber count."""
        with self._lock:
            return {
                "published": self._published,
                "subscriber_errors": self._subscriber_errors,
                "subscribers": len(self._subscribers),
            }
