"""Streaming session layer: per-tag read streams, incremental solves, events.

The one-shot request path (``locate`` → ``EstimationRequest`` →
``ServeEngine.submit`` → ``POST /v1/locate``) assumes a complete scan;
real deployments emit phase reads continuously. This package refits the
stack around that reality:

- :class:`TagSession` — a per-``(tag, antenna)`` state machine
  (warming → tracking → settled → departed) holding a bounded sliding
  window of timestamped reads, an incremental fast path
  (``lion-online`` RLS), and periodic windowed re-solves that are
  **bit-identical** to a one-shot ``locate`` over the same window
  (via :class:`repro.core.incremental.IncrementalScanAssembler`).
- :class:`SessionManager` — owns the live sessions: capacity shedding,
  per-session serialization, departure sweeps, session-aware drain, and
  re-solve routing (direct, or fused across sessions through a
  :class:`repro.serve.ServeEngine` with session-affine admission).
- typed lifecycle events (:class:`TagEntered`, :class:`PositionUpdated`,
  :class:`TagSettled`, :class:`TagDeparted`,
  :class:`CalibrationDriftAlarm`) fanned out on an :class:`EventBus`.
- offline replay (:func:`replay_stream` / :func:`replay_records`) of
  recorded scans at wall-clock or max speed — ``lion replay``.

Layering: this package may import ``repro.core`` / ``repro.pipeline`` /
``repro.serve``; only ``repro.serve.net`` and the CLI may import it back
(enforced by ``tools/check_import_hygiene.py``). The HTTP surface lives
in :mod:`repro.serve.net.sessions`; see ``docs/serving.md``.
"""

from repro.stream.config import StreamConfig
from repro.stream.errors import (
    DuplicateSessionError,
    SessionCapacityError,
    SessionClosedError,
    StreamError,
    UnknownSessionError,
)
from repro.stream.events import (
    EVENT_KINDS,
    CalibrationDriftAlarm,
    EventBus,
    PositionUpdated,
    SessionEvent,
    TagDeparted,
    TagEntered,
    TagSettled,
)
from repro.stream.manager import FeedResult, SessionManager
from repro.stream.replay import ReplayResult, replay_records, replay_stream
from repro.stream.session import SessionState, TagSession

__all__ = [
    # config
    "StreamConfig",
    # errors
    "StreamError",
    "SessionCapacityError",
    "UnknownSessionError",
    "DuplicateSessionError",
    "SessionClosedError",
    # events
    "SessionEvent",
    "TagEntered",
    "PositionUpdated",
    "TagSettled",
    "TagDeparted",
    "CalibrationDriftAlarm",
    "EventBus",
    "EVENT_KINDS",
    # sessions
    "TagSession",
    "SessionState",
    "SessionManager",
    "FeedResult",
    # replay
    "ReplayResult",
    "replay_stream",
    "replay_records",
]
