"""Metrics registry: counters, gauges, fixed-bucket histograms, exporters.

The registry is a thread-safe, label-aware map of named instruments with
two export formats — a JSON-friendly snapshot (``snapshot()`` /
``to_json()``) and Prometheus text exposition (``to_prometheus_text()``).
Snapshots from worker processes merge back into a parent registry with
:meth:`MetricsRegistry.merge`, which is how ``repro.parallel``'s process
backend reconciles child-process metrics.

Like tracing, metric recording is **off by default**: call sites guard on
:func:`metrics_enabled` so the disabled path costs one flag check.
Histograms use *fixed* bucket upper edges with Prometheus ``le``
semantics (``value <= edge``) plus an implicit ``+Inf`` bucket, so merged
histograms stay exact.

Typical use::

    from repro.obs import enable_metrics, get_registry

    enable_metrics()
    reg = get_registry()
    reg.counter("adaptive.cells_total", outcome="rejected", reason="no_pairs").inc()
    reg.histogram("solver.irls_iterations", buckets=ITERATION_BUCKETS).observe(6)
    print(reg.to_prometheus_text())
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "ITERATION_BUCKETS",
    "UNIT_BUCKETS",
    "RESIDUAL_BUCKETS_M",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "get_registry",
    "scoped_registry",
]

#: Latency buckets in seconds (sub-millisecond chunk up to slow figures).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: IRLS round-count buckets (the solver caps at 20 by default).
ITERATION_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 5, 7, 10, 15, 20)

#: Buckets for [0, 1] quantities (weight entropy, worker utilization).
UNIT_BUCKETS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Residual-norm buckets in meters-squared units of the radical system.
RESIDUAL_BUCKETS_M: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format label-value escaping.

    Backslash, double quote, and newline are the three characters the
    text format requires escaping inside a quoted label value.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative).

        Raises:
            ValueError: on a negative increment.
        """
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (value <= edge) semantics.

    ``counts[i]`` is the number of observations in bucket ``i`` (non-
    cumulative); the final slot is the implicit ``+Inf`` bucket. The
    cumulative form is produced at export time.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float]) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)


class MetricsRegistry:
    """Thread-safe, label-aware registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelsKey], Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, labels: Dict[str, Any], factory, kind: str):
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = factory()
                self._metrics[key] = instrument
            elif instrument.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"requested {kind}"
                )
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter ``name`` with the given labels."""
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge ``name`` with the given labels."""
        return self._get_or_create(name, labels, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S, **labels: Any
    ) -> Histogram:
        """Get or create the histogram ``name``; ``buckets`` applies on creation.

        Raises:
            ValueError: when the histogram exists with different bucket edges.
        """
        instrument = self._get_or_create(
            name, labels, lambda: Histogram(buckets), "histogram"
        )
        if instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}, requested {tuple(buckets)}"
            )
        return instrument

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def reset(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._metrics.clear()

    # -- export / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-serializable (and picklable) dump of every instrument."""
        with self._lock:
            items = list(self._metrics.items())
        out: Dict[str, List[Dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for (name, labels), instrument in items:
            entry: Dict[str, Any] = {"name": name, "labels": dict(labels)}
            if isinstance(instrument, Histogram):
                entry.update(
                    buckets=list(instrument.buckets),
                    counts=list(instrument.counts),
                    sum=instrument.sum,
                    count=instrument.count,
                )
                out["histograms"].append(entry)
            elif isinstance(instrument, Counter):
                entry["value"] = instrument.value
                out["counters"].append(entry)
            else:
                entry["value"] = instrument.value
                out["gauges"].append(entry)
        return out

    def merge(self, payload: Dict[str, List[Dict[str, Any]]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this registry.

        Counters and histogram counts/sums add; gauges take the incoming
        value (last write wins).

        Raises:
            ValueError: when a histogram arrives with different bucket edges.
        """
        for entry in payload.get("counters", []):
            self.counter(entry["name"], **entry["labels"]).inc(float(entry["value"]))
        for entry in payload.get("gauges", []):
            self.gauge(entry["name"], **entry["labels"]).set(float(entry["value"]))
        for entry in payload.get("histograms", []):
            histogram = self.histogram(
                entry["name"], buckets=entry["buckets"], **entry["labels"]
            )
            with histogram._lock:
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += int(count)
                histogram.sum += float(entry["sum"])

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`snapshot` as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus_text(self, namespace: str = "lion") -> str:
        """Prometheus text exposition format (one ``# TYPE`` line per name).

        Metric names are sanitized (``.`` and other invalid characters
        become ``_``) and prefixed with ``namespace_``. Histograms emit
        cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
        """
        snapshot = self.snapshot()
        lines: List[str] = []
        typed: set[str] = set()

        def full_name(raw: str) -> str:
            base = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
            return f"{namespace}_{base}" if namespace else base

        def label_text(labels: Dict[str, str], extra: Dict[str, str] | None = None) -> str:
            merged = dict(labels)
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            body = ",".join(
                f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
            )
            return "{" + body + "}"

        def emit_type(name: str, kind: str) -> None:
            if name not in typed:
                lines.append(f"# TYPE {name} {kind}")
                typed.add(name)

        for entry in snapshot["counters"]:
            # Counter names carry their own `_total` suffix by convention.
            name = full_name(entry["name"])
            emit_type(name, "counter")
            lines.append(f"{name}{label_text(entry['labels'])} {entry['value']:g}")
        for entry in snapshot["gauges"]:
            name = full_name(entry["name"])
            emit_type(name, "gauge")
            lines.append(f"{name}{label_text(entry['labels'])} {entry['value']:g}")
        for entry in snapshot["histograms"]:
            name = full_name(entry["name"])
            emit_type(name, "histogram")
            cumulative = 0
            for edge, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket{label_text(entry['labels'], {'le': f'{edge:g}'})} "
                    f"{cumulative}"
                )
            cumulative += entry["counts"][-1]
            lines.append(
                f"{name}_bucket{label_text(entry['labels'], {'le': '+Inf'})} {cumulative}"
            )
            lines.append(f"{name}_sum{label_text(entry['labels'])} {entry['sum']:g}")
            lines.append(f"{name}_count{label_text(entry['labels'])} {cumulative}")
        return "\n".join(lines) + ("\n" if lines else "")


_metrics_enabled = False
_registry = MetricsRegistry()


def enable_metrics() -> None:
    """Turn metric recording on (module-global)."""
    global _metrics_enabled
    _metrics_enabled = True


def disable_metrics() -> None:
    """Turn metric recording off; recorded values are kept."""
    global _metrics_enabled
    _metrics_enabled = False


def metrics_enabled() -> bool:
    """Whether instrumented call sites should record."""
    return _metrics_enabled


def get_registry() -> MetricsRegistry:
    """The active global registry."""
    return _registry


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Temporarily swap the global registry (NOT thread-safe).

    Used by worker processes to collect a chunk's metrics in isolation for
    merge-back, and by tests; don't call it from concurrent threads.
    """
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    try:
        yield _registry
    finally:
        _registry = previous
