"""Request identity, cross-process trace stitching, and the flight recorder.

The serving stack (:mod:`repro.serve.net`) gives every HTTP request one
``request_id`` at ingress — honoring an inbound ``X-Request-Id`` or W3C
``traceparent`` header, minting a fresh id otherwise — and threads it
through the supervisor's worker pipe protocol into the engine, where the
batcher stamps it on its spans. This module holds the pieces that are
not HTTP-specific:

- :func:`request_id_from_headers` / :func:`new_request_id` — id minting
  and header parsing (``X-Request-Id`` wins, then the trace-id field of
  a valid ``traceparent``, then a generated UUID hex).
- :func:`bind_request_id` / :func:`current_request_id` — a
  ``contextvars`` binding that structured logging
  (:mod:`repro.obs.logs`) appends to every line, so worker/batcher log
  lines correlate with traces.
- :class:`RequestSpanStore` / :func:`take_request_spans` — the stitching
  half: engine spans complete as *roots* on the batcher thread (tagged
  ``request_id=...`` for scalar dispatches, ``request_ids=[...]`` for
  fused batches — the batch span's links to every member). The store
  drains those roots and hands each request its matching subtrees, so a
  worker can ship them back on the response and the HTTP layer can graft
  them under the ingress span of one stitched, cross-process trace tree.
- :class:`FlightRecorder` — a bounded ring of the last N slow/errored
  stitched traces, served at ``GET /debug/traces`` and dumped to disk on
  SIGUSR2.

Everything here is zero-dependency and safe to import with tracing
disabled; the store is a no-op until spans actually exist.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.trace import SpanNode, drain_spans

__all__ = [
    "new_request_id",
    "parse_traceparent",
    "request_id_from_headers",
    "bind_request_id",
    "current_request_id",
    "RequestSpanStore",
    "take_request_spans",
    "ingest_request_spans",
    "reset_request_spans",
    "FlightRecorder",
]

#: ``version-traceid-spanid-flags``, lowercase hex per the W3C spec.
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: Accepted caller-supplied request ids: a sane token, bounded length.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._:/-]{1,128}$")

_bound_request_id: "ContextVar[Optional[str]]" = ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """Mint a fresh request id (32 lowercase hex chars, UUID4 entropy)."""
    return uuid.uuid4().hex


def parse_traceparent(value: str) -> Optional[str]:
    """The trace-id of a valid W3C ``traceparent`` header, else ``None``.

    The all-zero trace-id is invalid per the spec and rejected.
    """
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    trace_id = match.group(2)
    if trace_id == "0" * 32:
        return None
    return trace_id


def request_id_from_headers(headers: Mapping[str, str]) -> Tuple[str, str]:
    """Resolve one request's id from its (lowercase-keyed) headers.

    Precedence: a well-formed ``X-Request-Id`` token, then the trace-id
    of a valid ``traceparent``, then a freshly minted id. Returns
    ``(request_id, source)`` with source one of ``"x-request-id"`` /
    ``"traceparent"`` / ``"generated"``.
    """
    supplied = headers.get("x-request-id", "").strip()
    if supplied and _REQUEST_ID_RE.match(supplied):
        return supplied, "x-request-id"
    trace_id = parse_traceparent(headers.get("traceparent", ""))
    if trace_id is not None:
        return trace_id, "traceparent"
    return new_request_id(), "generated"


@contextmanager
def bind_request_id(request_id: Optional[str]) -> Iterator[None]:
    """Bind ``request_id`` to the current context for the ``with`` body.

    Structured log lines emitted inside the block carry the id (see
    :mod:`repro.obs.logs`). Binding ``None`` is a no-op, so call sites
    don't need to branch on "do I have an id".
    """
    if not request_id:
        yield
        return
    token = _bound_request_id.set(request_id)
    try:
        yield
    finally:
        _bound_request_id.reset(token)


def current_request_id() -> Optional[str]:
    """The request id bound to the current context, if any."""
    return _bound_request_id.get()


def _span_request_ids(payload: Dict[str, Any]) -> List[str]:
    """Request ids a span dict is linked to (root attributes only)."""
    attributes = payload.get("attributes", {})
    ids: List[str] = []
    single = attributes.get("request_id")
    if isinstance(single, str) and single:
        ids.append(single)
    many = attributes.get("request_ids")
    if isinstance(many, (list, tuple)):
        ids.extend(str(rid) for rid in many if rid)
    return ids


class RequestSpanStore:
    """Completed root spans, claimable by the requests they belong to.

    The engine's dispatch spans finish as trace *roots* on the batcher
    thread. ``take(request_id)`` drains those roots (via
    :func:`repro.obs.trace.drain_spans`), files each one under every
    request id it is linked to, and returns the subtrees linked to the
    given id. A fused-batch span is linked to every member, so each
    member's ``take`` returns it once; the entry is dropped after the
    last member claims it. Roots with no request links are discarded,
    and the store is bounded (oldest entries evicted), so enabling
    tracing on a long-lived worker never grows memory with traffic.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Each entry: [set of unclaimed request ids, span payload dict].
        self._entries: List[List[Any]] = []

    def ingest(self, payloads: List[Dict[str, Any]]) -> None:
        """File completed root spans under their linked request ids."""
        linked = [
            (set(ids), payload)
            for payload in payloads
            if (ids := _span_request_ids(payload))
        ]
        if not linked:
            return
        with self._lock:
            for ids, payload in linked:
                self._entries.append([ids, payload])
            overflow = len(self._entries) - self.capacity
            if overflow > 0:
                del self._entries[:overflow]

    def take(self, request_id: str) -> List[Dict[str, Any]]:
        """Drain new roots, then claim this request's span subtrees."""
        self.ingest(drain_spans())
        if not request_id:
            return []
        claimed: List[Dict[str, Any]] = []
        with self._lock:
            kept: List[List[Any]] = []
            for entry in self._entries:
                ids, payload = entry
                if request_id in ids:
                    claimed.append(payload)
                    ids.discard(request_id)
                if ids:
                    kept.append(entry)
            self._entries = kept
        return claimed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Process-global store: one per worker process (and one in the server
#: process for thread-mode workers, which all share it safely).
_store = RequestSpanStore()


def take_request_spans(request_id: str) -> List[Dict[str, Any]]:
    """Claim the global store's span subtrees for one request id."""
    return _store.take(request_id)


def ingest_request_spans() -> None:
    """Drain completed roots into the global store without claiming."""
    _store.ingest(drain_spans())


def reset_request_spans() -> None:
    """Drop everything in the global store (test hygiene)."""
    _store.clear()


class FlightRecorder:
    """Bounded ring of the last N slow/errored stitched request traces.

    ``consider`` is called once per traced request with the assembled
    ingress span tree; requests slower than ``slow_threshold_s`` or with
    an error status are retained (newest first on read). The ring is a
    plain list under a short lock — recording is one append, far off the
    request path's critical section.
    """

    def __init__(self, capacity: int = 64, slow_threshold_s: float = 0.25) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be non-negative, got {slow_threshold_s}"
            )
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._seen = 0
        self._recorded = 0

    def consider(
        self,
        trace: SpanNode,
        *,
        status: int,
        request_id: str,
        route: str,
    ) -> bool:
        """Record the trace when it is slow or errored; returns whether."""
        duration_s = trace.wall_s
        with self._lock:
            self._seen += 1
            if status < 400 and duration_s < self.slow_threshold_s:
                return False
            self._entries.append(
                {
                    "request_id": request_id,
                    "route": route,
                    "status": status,
                    "duration_ms": round(duration_s * 1e3, 3),
                    "recorded_at": time.time(),
                    "trace": trace.to_dict(),
                }
            )
            self._recorded += 1
            overflow = len(self._entries) - self.capacity
            if overflow > 0:
                del self._entries[:overflow]
        return True

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained traces, newest first (optionally capped at ``limit``)."""
        with self._lock:
            entries = list(reversed(self._entries))
        if limit is not None and limit >= 0:
            entries = entries[:limit]
        return entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "considered": self._seen,
                "recorded": self._recorded,
                "retained": len(self._entries),
                "capacity": self.capacity,
            }

    def dump(self, path: str) -> int:
        """Write the retained traces to ``path`` as JSON; returns the count."""
        entries = self.snapshot()
        payload = {"dumped_at": time.time(), "traces": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        return len(entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
