"""Declarative SLOs evaluated as multi-window burn rates over history.

An objective declares the *good fraction* of requests it targets —
``p99 <= 250 ms`` is "99% of requests at or under 250 ms", an error-rate
bound of 1% is "99% of requests succeed". The error *budget* is the
allowed bad fraction (``1 - target``), and the **burn rate** over a
window is ``bad_fraction / budget``: burn 1.0 consumes the budget
exactly as fast as allowed, burn 14.4 exhausts a 30-day budget in ~2
days. Evaluating the same objective over several windows with paired
burn thresholds (the multiwindow alert pattern from the Google SRE
workbook, scaled down to serving-test horizons) distinguishes a sharp
regression (short window burning hot) from slow leakage (long window
burning above 1).

Latency objectives are evaluated from the request-latency histogram's
bucket deltas, so the threshold snaps to the nearest bucket edge >= the
requested value (the snap is reported in the evaluation payload). Error
objectives count 5xx responses against total responses.

:class:`SloTracker` binds objectives to a
:class:`repro.obs.history.MetricsHistory`, evaluates on demand
(``GET /slo``) or per sampler tick, and emits one structured log event
per ok->burning transition (and the recovery), so a burning budget is
visible in the log stream even when nothing polls the endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.history import (
    Labels,
    MetricsHistory,
    count_le,
    counter_delta,
    histogram_delta,
)
from repro.obs.logs import get_logger

__all__ = [
    "SloObjective",
    "latency_slo",
    "error_rate_slo",
    "DEFAULT_BURN_WINDOWS",
    "SloTracker",
]

#: ``(window_seconds, burn_threshold)`` pairs — short/fast, mid, long/slow.
DEFAULT_BURN_WINDOWS: Tuple[Tuple[float, float], ...] = (
    (30.0, 14.4),
    (120.0, 6.0),
    (300.0, 1.0),
)


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective.

    Attributes:
        name: stable identifier surfaced in ``/slo`` and log events.
        kind: ``"latency"`` or ``"error_rate"``.
        target: good fraction of requests (e.g. ``0.99``); the error
            budget is ``1 - target``.
        threshold_s: latency objectives only — a request is *good* when
            at or under this many seconds.
    """

    name: str
    kind: str
    target: float
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"kind must be 'latency' or 'error_rate', got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and (self.threshold_s is None or self.threshold_s <= 0):
            raise ValueError(f"latency objectives need threshold_s > 0, got {self.threshold_s}")


def latency_slo(
    threshold_ms: float, quantile: float = 0.99, name: Optional[str] = None
) -> SloObjective:
    """``p<quantile> <= threshold_ms``: that fraction must be at/under it."""
    label = name or f"latency_p{quantile * 100:g}_le_{threshold_ms:g}ms"
    return SloObjective(
        name=label, kind="latency", target=quantile, threshold_s=threshold_ms / 1e3
    )


def error_rate_slo(max_error_rate: float, name: Optional[str] = None) -> SloObjective:
    """At most ``max_error_rate`` of responses may be 5xx."""
    label = name or f"error_rate_le_{max_error_rate * 100:g}pct"
    return SloObjective(name=label, kind="error_rate", target=1.0 - max_error_rate)


def _is_error_status(labels: Labels) -> bool:
    return labels.get("status", "").startswith("5")


class SloTracker:
    """Evaluates objectives over burn-rate windows from the ring buffer."""

    def __init__(
        self,
        history: MetricsHistory,
        objectives: List[SloObjective],
        *,
        windows: Tuple[Tuple[float, float], ...] = DEFAULT_BURN_WINDOWS,
        latency_metric: str = "serve.net.request_seconds",
        requests_metric: str = "serve.net.requests_total",
        route: str = "/v1/locate",
    ) -> None:
        if not windows:
            raise ValueError("at least one (window_s, burn_threshold) pair is required")
        self.objectives = list(objectives)
        self.windows = tuple(sorted(windows))
        self._history = history
        self._latency_metric = latency_metric
        self._requests_metric = requests_metric
        self._route = route
        self._logger = get_logger("obs.slo")
        self._burning: Dict[str, bool] = {}

    def _on_route(self, labels: Labels) -> bool:
        return labels.get("route") == self._route

    def _window_stats(
        self, objective: SloObjective, window_s: float, now: Optional[float]
    ) -> Tuple[float, float, Optional[float]]:
        """``(total, bad, snapped_threshold_s)`` over one trailing window."""
        samples = self._history.window(window_s, now)
        if objective.kind == "latency":
            merged = histogram_delta(samples, self._latency_metric, self._on_route)
            if merged is None or merged.count == 0:
                return 0.0, 0.0, objective.threshold_s
            assert objective.threshold_s is not None
            good = count_le(merged, objective.threshold_s)
            assert good is not None
            good_count, snapped = good
            return float(merged.count), float(merged.count - good_count), snapped
        total = counter_delta(samples, self._requests_metric, self._on_route)
        bad = counter_delta(
            samples,
            self._requests_metric,
            lambda labels: self._on_route(labels) and _is_error_status(labels),
        )
        return total, bad, None

    def evaluate(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One evaluation pass; logs budget-burn transitions as a side effect."""
        payload: Dict[str, Any] = {"route": self._route, "objectives": []}
        worst = "idle"
        for objective in self.objectives:
            budget = 1.0 - objective.target
            windows: List[Dict[str, Any]] = []
            burning = False
            saw_traffic = False
            long_burn = 0.0
            for window_s, burn_threshold in self.windows:
                total, bad, snapped = self._window_stats(objective, window_s, now)
                bad_fraction = bad / total if total > 0 else 0.0
                burn = bad_fraction / budget if budget > 0 else 0.0
                window_burning = total > 0 and burn >= burn_threshold
                burning = burning or window_burning
                saw_traffic = saw_traffic or total > 0
                long_burn = burn  # windows are sorted; the last is longest
                windows.append(
                    {
                        "window_s": window_s,
                        "burn_threshold": burn_threshold,
                        "total": total,
                        "bad": bad,
                        "bad_fraction": round(bad_fraction, 6),
                        "burn_rate": round(burn, 4),
                        "burning": window_burning,
                    }
                )
            state = "burning" if burning else ("ok" if saw_traffic else "idle")
            entry: Dict[str, Any] = {
                "name": objective.name,
                "kind": objective.kind,
                "target": objective.target,
                "budget": budget,
                "state": state,
                "windows": windows,
                # Budget fraction left over the longest window (burn 1.0
                # means exactly exhausted over that window).
                "budget_remaining": round(max(1.0 - long_burn, 0.0), 4),
            }
            if objective.kind == "latency" and objective.threshold_s is not None:
                entry["threshold_ms"] = objective.threshold_s * 1e3
            payload["objectives"].append(entry)
            self._log_transition(objective.name, burning, entry)
            if state == "burning":
                worst = "burning"
            elif state == "ok" and worst != "burning":
                worst = "ok"
        payload["state"] = worst
        return payload

    def _log_transition(self, name: str, burning: bool, entry: Dict[str, Any]) -> None:
        was = self._burning.get(name, False)
        if burning and not was:
            hot = [w for w in entry["windows"] if w["burning"]]
            self._logger.warning(
                "SLO budget burning: objective=%s burn_rate=%s window_s=%s "
                "budget_remaining=%s",
                name,
                hot[0]["burn_rate"] if hot else None,
                hot[0]["window_s"] if hot else None,
                entry["budget_remaining"],
            )
        elif was and not burning:
            self._logger.info("SLO budget recovered: objective=%s", name)
        self._burning[name] = burning
