"""Structured logging on the ``repro.*`` logger hierarchy.

Every module logs through :func:`get_logger`, which returns a child of
the ``repro`` root logger; :func:`configure_logging` installs one
stream handler with a structured single-line format::

    2026-08-05T12:34:56 WARNING repro.cli unknown figure 'fig99'

The handler is tagged so repeated configuration (each CLI invocation,
each test) replaces it instead of stacking duplicates, and the ``repro``
logger does not propagate to the root logger, so library users keep
full control of their own logging tree.

When a request id is bound (:func:`repro.obs.request.bind_request_id`,
which the serving stack does around every dispatch) — or passed
explicitly via ``extra={"request_id": ...}`` — the formatter appends
``request_id=<id>`` to the line, so worker and batcher log output
correlates with the request's stitched trace::

    2026-08-05T12:34:56 WARNING repro.serve.net locate request failed:
    status=422 kind=estimation_failed request_id=5f2f64f0...
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_LOGGER_NAME", "LOG_FORMAT", "get_logger", "configure_logging"]

ROOT_LOGGER_NAME = "repro"

LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"

#: Attribute marking handlers installed by :func:`configure_logging`.
_HANDLER_TAG = "_repro_obs_handler"


class _RequestIdFormatter(logging.Formatter):
    """Structured formatter appending the bound (or explicit) request id.

    Lines without a request context are formatted exactly as before, so
    CLI output stays unchanged and the field only appears where it
    carries information.
    """

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        request_id = getattr(record, "request_id", None)
        if not request_id:
            from repro.obs.request import current_request_id

            request_id = current_request_id()
        if request_id:
            return f"{base} request_id={request_id}"
        return base


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger in the ``repro.*`` hierarchy.

    ``get_logger()`` returns the ``repro`` root; ``get_logger("cli")``
    and ``get_logger("repro.cli")`` both return ``repro.cli``.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: int | str = "WARNING", stream: IO[str] | None = None
) -> logging.Logger:
    """Install (or replace) the structured stderr handler on ``repro``.

    Args:
        level: numeric level or case-insensitive name (``"info"``).
        stream: destination; defaults to the *current* ``sys.stderr``.

    Raises:
        ValueError: on an unknown level name.

    Returns:
        The configured ``repro`` root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_RequestIdFormatter(LOG_FORMAT, datefmt=DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
