"""Telemetry history: a ring buffer of per-interval metric deltas.

``GET /metrics`` is a point-in-time snapshot — a p99 spike that ended
thirty seconds ago is invisible. :class:`MetricsHistory` turns the
registry into a time series: feed it a :meth:`MetricsRegistry.snapshot`
at a fixed cadence (:class:`HistorySampler` owns the thread) and it
stores one :class:`Sample` per interval holding the *deltas* since the
previous snapshot — counter increments, histogram bucket increments,
gauge values — keyed by metric name with full label detail. Derived
views (request rates, bucket-quantile latency, SLO burn rates) are
computed from the deltas by the helpers below; the buffer itself is a
bounded ``deque`` under a short lock, so sampling stays cheap no matter
how long the server runs.

Counter/histogram deltas follow Prometheus ``rate()`` reset semantics:
a value that went *down* since the last sample means the source process
restarted, so the current value is taken as the whole delta instead of
producing a negative rate.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "HistDelta",
    "Sample",
    "MetricsHistory",
    "HistorySampler",
    "counter_delta",
    "gauge_values",
    "histogram_delta",
    "merge_hist_deltas",
    "quantile",
    "count_le",
]

Labels = Dict[str, str]
LabelPredicate = Callable[[Labels], bool]


@dataclass(frozen=True)
class HistDelta:
    """Histogram increments over one interval (or a merged window).

    ``counts[i]`` is the non-cumulative increment of bucket ``i``; the
    final slot is the implicit ``+Inf`` bucket, mirroring
    :class:`repro.obs.metrics.Histogram`.
    """

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float

    @property
    def count(self) -> int:
        return sum(self.counts)


@dataclass(frozen=True)
class Sample:
    """Metric deltas (and gauge values) for one sampling interval."""

    t: float
    dt: float
    counters: Dict[str, List[Tuple[Labels, float]]]
    gauges: Dict[str, List[Tuple[Labels, float]]]
    histograms: Dict[str, List[Tuple[Labels, HistDelta]]]


def _series_key(entry: Dict[str, Any]) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return entry["name"], tuple(sorted(entry.get("labels", {}).items()))


def _delta(current: float, previous: Optional[float]) -> float:
    """Monotonic delta with Prometheus reset semantics."""
    if previous is None or current < previous:
        return current
    return current - previous


class MetricsHistory:
    """Bounded ring of :class:`Sample` records built from raw snapshots."""

    def __init__(self, capacity: int = 600) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._samples: Deque[Sample] = deque(maxlen=capacity)
        self._prev: Optional[Dict[str, Any]] = None
        self._prev_t: Optional[float] = None

    def observe(
        self, snapshot: Dict[str, List[Dict[str, Any]]], now: Optional[float] = None
    ) -> Optional[Sample]:
        """Fold one registry snapshot in; returns the new sample.

        The first observation only establishes the baseline and returns
        ``None`` (there is no interval to delta over yet).
        """
        t = time.time() if now is None else now
        with self._lock:
            prev, prev_t = self._prev, self._prev_t
            self._prev, self._prev_t = snapshot, t
            if prev is None or prev_t is None:
                return None
            sample = _build_sample(prev, snapshot, t, max(t - prev_t, 0.0))
            self._samples.append(sample)
            return sample

    def window(self, seconds: float, now: Optional[float] = None) -> List[Sample]:
        """Samples whose timestamp falls within the trailing window."""
        cutoff = (time.time() if now is None else now) - seconds
        with self._lock:
            return [sample for sample in self._samples if sample.t >= cutoff]

    def latest(self) -> Optional[Sample]:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._prev = None
            self._prev_t = None


def _build_sample(
    prev: Dict[str, Any], curr: Dict[str, Any], t: float, dt: float
) -> Sample:
    prev_counters = {_series_key(e): float(e["value"]) for e in prev.get("counters", [])}
    counters: Dict[str, List[Tuple[Labels, float]]] = {}
    for entry in curr.get("counters", []):
        delta = _delta(float(entry["value"]), prev_counters.get(_series_key(entry)))
        counters.setdefault(entry["name"], []).append(
            (dict(entry.get("labels", {})), delta)
        )

    gauges: Dict[str, List[Tuple[Labels, float]]] = {}
    for entry in curr.get("gauges", []):
        gauges.setdefault(entry["name"], []).append(
            (dict(entry.get("labels", {})), float(entry["value"]))
        )

    prev_hists = {
        _series_key(e): (list(e["counts"]), float(e["sum"]))
        for e in prev.get("histograms", [])
    }
    histograms: Dict[str, List[Tuple[Labels, HistDelta]]] = {}
    for entry in curr.get("histograms", []):
        before = prev_hists.get(_series_key(entry))
        counts = [int(c) for c in entry["counts"]]
        total = float(entry["sum"])
        if before is not None and len(before[0]) == len(counts):
            prev_counts, prev_sum = before
            if all(c >= p for c, p in zip(counts, prev_counts)):
                counts = [c - p for c, p in zip(counts, prev_counts)]
                total = max(total - prev_sum, 0.0)
        histograms.setdefault(entry["name"], []).append(
            (
                dict(entry.get("labels", {})),
                HistDelta(
                    buckets=tuple(float(b) for b in entry["buckets"]),
                    counts=tuple(counts),
                    sum=total,
                ),
            )
        )
    return Sample(t=t, dt=dt, counters=counters, gauges=gauges, histograms=histograms)


# ----------------------------------------------------------------------
# derived views
# ----------------------------------------------------------------------
def counter_delta(
    samples: "Sample | List[Sample]",
    name: str,
    where: Optional[LabelPredicate] = None,
) -> float:
    """Summed counter increments for ``name`` over one or more samples."""
    total = 0.0
    for sample in [samples] if isinstance(samples, Sample) else samples:
        for labels, delta in sample.counters.get(name, []):
            if where is None or where(labels):
                total += delta
    return total


def gauge_values(sample: Sample, name: str) -> List[Tuple[Labels, float]]:
    """The gauge series for ``name`` in one sample (labels, value)."""
    return list(sample.gauges.get(name, []))


def merge_hist_deltas(deltas: List[HistDelta]) -> Optional[HistDelta]:
    """Sum histogram deltas sharing one bucket ladder (others skipped)."""
    if not deltas:
        return None
    buckets = deltas[0].buckets
    counts = [0] * (len(buckets) + 1)
    total = 0.0
    for delta in deltas:
        if delta.buckets != buckets:
            continue
        for index, count in enumerate(delta.counts):
            counts[index] += count
        total += delta.sum
    return HistDelta(buckets=buckets, counts=tuple(counts), sum=total)


def histogram_delta(
    samples: "Sample | List[Sample]",
    name: str,
    where: Optional[LabelPredicate] = None,
) -> Optional[HistDelta]:
    """Merged histogram increments for ``name`` over one or more samples."""
    deltas: List[HistDelta] = []
    for sample in [samples] if isinstance(samples, Sample) else samples:
        for labels, delta in sample.histograms.get(name, []):
            if where is None or where(labels):
                deltas.append(delta)
    return merge_hist_deltas(deltas)


def quantile(delta: Optional[HistDelta], q: float) -> Optional[float]:
    """Bucket-interpolated quantile of one delta, ``None`` when empty.

    Standard Prometheus ``histogram_quantile`` estimation: find the
    bucket containing the target rank and interpolate linearly inside
    it. Observations in the ``+Inf`` bucket clamp to the last finite
    edge.
    """
    if delta is None or delta.count == 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    target = q * delta.count
    cumulative = 0
    for index, count in enumerate(delta.counts[:-1]):
        previous = cumulative
        cumulative += count
        if cumulative >= target and count > 0:
            low = delta.buckets[index - 1] if index > 0 else 0.0
            high = delta.buckets[index]
            fraction = (target - previous) / count
            return low + (high - low) * min(max(fraction, 0.0), 1.0)
    return delta.buckets[-1]


def count_le(delta: Optional[HistDelta], threshold: float) -> Optional[Tuple[int, float]]:
    """Observations at or below ``threshold``, snapped to a bucket edge.

    Returns ``(count, snapped_edge)`` using the smallest edge >=
    ``threshold`` (exact Prometheus ``le`` semantics need an edge; the
    snap is reported so callers can surface it). A threshold beyond the
    last edge counts everything (``+Inf``). ``None`` for an empty delta.
    """
    if delta is None or delta.count == 0:
        return None
    index = bisect.bisect_left(delta.buckets, threshold)
    if index >= len(delta.buckets):
        return delta.count, float("inf")
    return sum(delta.counts[: index + 1]), delta.buckets[index]


class HistorySampler:
    """Daemon thread feeding a :class:`MetricsHistory` at a fixed cadence.

    ``source`` returns one registry snapshot (e.g.
    ``supervisor.merged_metrics().snapshot``); ``on_sample`` (optional)
    runs after each successful observation — the serving stack hangs SLO
    evaluation there so budget-burn transitions are logged even when
    nobody polls ``/slo``. Exceptions from either callback are swallowed
    after the first (logged) occurrence rather than killing the thread.
    """

    def __init__(
        self,
        source: Callable[[], Dict[str, List[Dict[str, Any]]]],
        history: MetricsHistory,
        cadence_s: float = 1.0,
        on_sample: Optional[Callable[[], None]] = None,
    ) -> None:
        if cadence_s <= 0:
            raise ValueError(f"cadence_s must be positive, got {cadence_s}")
        self._source = source
        self._history = history
        self._cadence_s = cadence_s
        self._on_sample = on_sample
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._failed = False

    def start(self) -> None:
        if self._thread is not None:
            return
        # Baseline immediately: traffic between start and the first tick
        # would otherwise fold into the baseline and be unattributable.
        self.sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-history-sampler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._cadence_s):
            self.sample_once()

    def sample_once(self) -> Optional[Sample]:
        """One synchronous sampling step (tests drive this directly)."""
        try:
            sample = self._history.observe(self._source())
            if self._on_sample is not None:
                self._on_sample()
            return sample
        except Exception:
            if not self._failed:
                self._failed = True
                from repro.obs.logs import get_logger

                get_logger("obs.history").exception("telemetry sampling failed")
            return None
