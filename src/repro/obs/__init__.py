"""Observability layer: tracing spans, metrics, run manifests, logging.

Zero-dependency instrumentation for the solver/sweep/parallel stack:

- :mod:`repro.obs.trace` — nestable ``span()`` context managers recording
  wall/CPU time into a thread-safe, process-mergeable trace tree.
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with JSON and Prometheus-text exporters.
- :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  (git SHA, seed, jobs, config hash, package versions).
- :mod:`repro.obs.logs` — structured logging on the ``repro.*`` logger
  hierarchy, with a bound per-request id field.
- :mod:`repro.obs.request` — request ids (``X-Request-Id`` /
  ``traceparent``), the cross-process span store that stitches worker
  spans into per-request traces, and the slow/errored-request flight
  recorder.
- :mod:`repro.obs.history` — ring-buffer telemetry history built from
  registry snapshots at a fixed cadence, with rate/quantile helpers.
- :mod:`repro.obs.slo` — declarative latency/error objectives evaluated
  as multi-window burn rates over the history buffer.

Both tracing and metrics are off by default; instrumented hot paths guard
on :func:`obs_enabled` (one flag check) so the disabled-mode overhead is
negligible (see ``benchmarks/bench_obs_overhead.py``). The CLI surfaces
the layer via ``--trace``, ``--metrics-out PATH``, and ``--log-level``;
conventions are documented in ``docs/observability.md``.
"""

from repro.obs.history import (
    HistDelta,
    HistorySampler,
    MetricsHistory,
    Sample,
    count_le,
    counter_delta,
    gauge_values,
    histogram_delta,
    merge_hist_deltas,
    quantile,
)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import RunManifest, collect_manifest, config_fingerprint
from repro.obs.metrics import (
    ITERATION_BUCKETS,
    LATENCY_BUCKETS_S,
    RESIDUAL_BUCKETS_M,
    UNIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    scoped_registry,
)
from repro.obs.request import (
    FlightRecorder,
    RequestSpanStore,
    bind_request_id,
    current_request_id,
    ingest_request_spans,
    new_request_id,
    parse_traceparent,
    request_id_from_headers,
    reset_request_spans,
    take_request_spans,
)
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SloObjective,
    SloTracker,
    error_rate_slo,
    latency_slo,
)
from repro.obs.trace import (
    NULL_SPAN,
    SpanNode,
    attach_spans,
    current_span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    get_trace,
    render_trace,
    reset_tracing,
    span,
    trace_depth,
    tracing_enabled,
)


def obs_enabled() -> bool:
    """Whether any observability sink (tracing or metrics) is active.

    Hot paths read this once per call and skip all instrumentation when it
    is False — the single-flag-check guarantee.
    """
    return tracing_enabled() or metrics_enabled()


__all__ = [
    "obs_enabled",
    # trace
    "SpanNode",
    "NULL_SPAN",
    "span",
    "current_span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_trace",
    "reset_tracing",
    "drain_spans",
    "attach_spans",
    "trace_depth",
    "render_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "get_registry",
    "scoped_registry",
    "LATENCY_BUCKETS_S",
    "ITERATION_BUCKETS",
    "UNIT_BUCKETS",
    "RESIDUAL_BUCKETS_M",
    # manifest
    "RunManifest",
    "collect_manifest",
    "config_fingerprint",
    # logging
    "get_logger",
    "configure_logging",
    # request identity / stitching
    "new_request_id",
    "parse_traceparent",
    "request_id_from_headers",
    "bind_request_id",
    "current_request_id",
    "RequestSpanStore",
    "take_request_spans",
    "ingest_request_spans",
    "reset_request_spans",
    "FlightRecorder",
    # telemetry history
    "MetricsHistory",
    "HistorySampler",
    "Sample",
    "HistDelta",
    "counter_delta",
    "gauge_values",
    "histogram_delta",
    "merge_hist_deltas",
    "quantile",
    "count_le",
    # SLOs
    "SloObjective",
    "SloTracker",
    "latency_slo",
    "error_rate_slo",
    "DEFAULT_BURN_WINDOWS",
]
