"""Nestable tracing spans with a thread-safe, process-mergeable trace tree.

A *span* brackets one unit of work — a figure regeneration, a Monte-Carlo
trial, one IRLS solve — and records its wall-clock and CPU time plus
free-form attributes and per-iteration events. Spans nest through ordinary
``with`` blocks; each thread keeps its own stack, and completed top-level
spans accumulate in a module-global list of roots.

Tracing is **off by default** and the disabled path is a no-op: ``span()``
checks a single module flag and hands back a shared null span whose
``__enter__``/``__exit__``/``add_event`` do nothing, so instrumented hot
paths cost one boolean check when tracing is disabled (verified by
``benchmarks/bench_obs_overhead.py``).

Process merging: a worker process drains its finished spans with
:func:`drain_spans` (plain dicts, picklable) and the parent grafts them
under its current span with :func:`attach_spans` — this is how
``repro.parallel``'s process backend ships worker trace trees home.

Typical use::

    from repro.obs import enable_tracing, span, get_trace, render_trace

    enable_tracing()
    with span("figure", figure="fig13a"):
        with span("solve", solver="scalar") as sp:
            sp.add_event(iteration=1, residual_norm=0.02)
    print(render_trace())
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "SpanNode",
    "NULL_SPAN",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "span",
    "current_span",
    "get_trace",
    "reset_tracing",
    "drain_spans",
    "attach_spans",
    "trace_depth",
    "render_trace",
]

_enabled = False
_roots_lock = threading.Lock()
_roots: List["SpanNode"] = []
_local = threading.local()


def _stack() -> List["SpanNode"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@dataclass
class SpanNode:
    """One completed (or in-flight) span of the trace tree.

    Attributes:
        name: span name, dot-separated by convention (``"solve.irls"``).
        attributes: free-form key/value pairs set at creation or via
            :meth:`set_attribute`.
        start_s / end_s: ``time.perf_counter`` timestamps.
        cpu_s: process CPU seconds consumed between enter and exit.
        pid: OS process id that ran the span (distinguishes grafted
            worker subtrees from the parent's own spans).
        children: nested spans, in completion order.
        events: timestamped payloads appended via :meth:`add_event`
            (e.g. one per IRLS iteration).
    """

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    children: List["SpanNode"] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds."""
        return max(self.end_s - self.start_s, 0.0)

    def add_event(self, **fields: Any) -> None:
        """Append one event payload (e.g. per-iteration diagnostics)."""
        self.events.append(fields)

    def set_attribute(self, key: str, value: Any) -> None:
        """Set or overwrite one attribute."""
        self.attributes[key] = value

    def depth(self) -> int:
        """Number of levels in this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        """Picklable/JSON-serializable representation (recursive)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "children": [child.to_dict() for child in self.children],
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanNode":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            attributes=dict(payload.get("attributes", {})),
            start_s=float(payload.get("start_s", 0.0)),
            end_s=float(payload.get("end_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
            pid=int(payload.get("pid", 0)),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
            events=[dict(e) for e in payload.get("events", [])],
        )


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add_event(self, **fields: Any) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """Context manager that records one :class:`SpanNode`."""

    __slots__ = ("node", "_cpu_start")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.node = SpanNode(name=name, attributes=attributes, pid=os.getpid())
        self._cpu_start = 0.0

    def __enter__(self) -> SpanNode:
        self.node.start_s = time.perf_counter()
        self._cpu_start = time.process_time()
        _stack().append(self.node)
        return self.node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self.node
        node.end_s = time.perf_counter()
        node.cpu_s = time.process_time() - self._cpu_start
        if exc_type is not None:
            node.attributes.setdefault("error", exc_type.__name__)
        stack = _stack()
        if stack and stack[-1] is node:
            stack.pop()
        elif node in stack:  # mis-nested exit; recover best-effort
            stack.remove(node)
        if stack:
            stack[-1].children.append(node)
        else:
            with _roots_lock:
                _roots.append(node)
        return False


def enable_tracing() -> None:
    """Turn span recording on (module-global)."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Turn span recording off; already-recorded spans are kept."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    """Whether :func:`span` currently records."""
    return _enabled


def span(name: str, **attributes: Any):
    """Open a span; use as ``with span("name", key=value) as sp:``.

    When tracing is disabled this returns the shared :data:`NULL_SPAN`
    after a single flag check — the disabled-mode cost of an instrumented
    call site.
    """
    if not _enabled:
        return NULL_SPAN
    return _Span(name, attributes)


def current_span() -> SpanNode | None:
    """The innermost open span of the calling thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def get_trace() -> List[SpanNode]:
    """Completed top-level spans, in completion order (shared list copy)."""
    with _roots_lock:
        return list(_roots)


def reset_tracing() -> None:
    """Drop all recorded spans (the enabled flag is left unchanged)."""
    with _roots_lock:
        _roots.clear()
    _local.stack = []


def drain_spans() -> List[Dict[str, Any]]:
    """Pop all completed root spans as picklable dicts (for merge-back)."""
    with _roots_lock:
        drained = [node.to_dict() for node in _roots]
        _roots.clear()
    return drained


def attach_spans(payloads: List[Dict[str, Any]]) -> None:
    """Graft serialized spans under the current span (or as new roots).

    The receiving half of process merge-back: the parent calls this with
    what a worker's :func:`drain_spans` returned.
    """
    nodes = [SpanNode.from_dict(payload) for payload in payloads]
    parent = current_span()
    if parent is not None:
        parent.children.extend(nodes)
    else:
        with _roots_lock:
            _roots.extend(nodes)


def trace_depth() -> int:
    """Deepest nesting level across all recorded root spans."""
    roots = get_trace()
    if not roots:
        return 0
    return max(root.depth() for root in roots)


def render_trace(roots: List[SpanNode] | None = None) -> str:
    """ASCII rendering of the trace tree with wall/CPU milliseconds."""
    roots = get_trace() if roots is None else roots
    if not roots:
        return "(empty trace)"
    lines: List[str] = []

    def walk(node: SpanNode, indent: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in node.attributes.items())
        suffix = f"  [{attrs}]" if attrs else ""
        events = f"  ({len(node.events)} events)" if node.events else ""
        lines.append(
            f"{'  ' * indent}- {node.name}  wall={node.wall_s * 1000:.2f}ms "
            f"cpu={node.cpu_s * 1000:.2f}ms{suffix}{events}"
        )
        for child in node.children:
            walk(child, indent + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
