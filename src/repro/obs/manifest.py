"""Run provenance: the :class:`RunManifest` attached to every heavy run.

A manifest pins down *what produced a number*: git revision (and whether
the tree was dirty), the seed and worker count, a stable hash of the run
configuration, and the versions of the interpreter and the numeric stack.
Benchmark reports (``BENCH_*.json``), ``--metrics-out`` dumps, and
:class:`repro.experiments.montecarlo.MonteCarloResult` all embed one, so
results stay comparable across PRs and machines.

Git state is read once per process (cached) via subprocess; everything
degrades to ``None`` outside a git checkout or without a ``git`` binary.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

__all__ = ["RunManifest", "collect_manifest", "config_fingerprint"]


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Stable short hash of a configuration dict (sha256 of canonical JSON).

    Key order does not matter; non-JSON values are stringified.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def _git_state() -> tuple[str | None, bool | None]:
    """(commit sha, dirty?) of the checkout containing this package, cached."""
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5.0, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5.0, check=True,
        ).stdout
        return sha, bool(status.strip())
    except (OSError, subprocess.SubprocessError):
        return None, None


@functools.lru_cache(maxsize=1)
def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        import scipy

        versions["scipy"] = scipy.__version__
    except Exception:
        pass
    try:
        from repro import __version__ as repro_version

        versions["repro"] = repro_version
    except Exception:  # pragma: no cover - circular-import safety
        pass
    return versions


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one run.

    Attributes:
        created_unix: POSIX timestamp when the manifest was collected.
        git_sha / git_dirty: checkout state, ``None`` outside a repo.
        seed: base random seed of the run, when seeded.
        jobs: resolved worker count, when parallelism applies.
        config: the run configuration that was hashed (JSON-safe values).
        config_hash: :func:`config_fingerprint` of ``config``.
        packages: interpreter and numeric-stack versions.
        platform: ``platform.platform()`` of the host.
        argv: command-line arguments, when invoked from the CLI.
    """

    created_unix: float
    git_sha: str | None = None
    git_dirty: bool | None = None
    seed: int | None = None
    jobs: int | None = None
    config: Dict[str, Any] | None = None
    config_hash: str | None = None
    packages: Dict[str, str] = field(default_factory=dict)
    platform: str = ""
    argv: List[str] | None = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(**payload)


def collect_manifest(
    seed: int | None = None,
    jobs: int | None = None,
    config: Dict[str, Any] | None = None,
    argv: List[str] | None = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current process and inputs.

    Git and package lookups are cached process-wide, so calling this per
    run (e.g. once per Monte-Carlo study) is cheap after the first call.
    """
    sha, dirty = _git_state()
    return RunManifest(
        created_unix=time.time(),
        git_sha=sha,
        git_dirty=dirty,
        seed=seed,
        jobs=jobs,
        config=config,
        config_hash=config_fingerprint(config) if config is not None else None,
        packages=dict(_package_versions()),
        platform=platform.platform(),
        argv=list(argv) if argv is not None else list(sys.argv[1:]),
    )
