"""Baseline localization methods the paper compares against.

* :mod:`repro.baselines.hologram` — Tagoram's Differential Augmented
  Hologram (DAH) [2], the paper's principal accuracy/time comparator:
  grid search over a likelihood image built from phase differences.
* :mod:`repro.baselines.hyperbola` — hyperbola/TDoA model solved by
  nonlinear least squares [6, 14-19]: accurate but requires iterating on
  quadratic equations.
* :mod:`repro.baselines.parabola` — the parabola-fit method [8]: 2D only,
  linear scanning only.
* :mod:`repro.baselines.angle` — a Tagspin-style [7] rotating-tag AoA
  method: circular scanning only.

Each baseline exposes a ``locate*`` function taking the same
``(positions, wrapped phases)`` data LION consumes, so experiment runners
can swap methods freely.
"""

from repro.baselines.hologram import (
    DifferentialHologram,
    HologramResult,
    hologram_likelihood,
)
from repro.baselines.hyperbola import HyperbolaResult, locate_hyperbola
from repro.baselines.parabola import ParabolaResult, locate_parabola_2d
from repro.baselines.angle import RotatingTagResult, locate_rotating_tag

__all__ = [
    "DifferentialHologram",
    "HologramResult",
    "hologram_likelihood",
    "HyperbolaResult",
    "locate_hyperbola",
    "ParabolaResult",
    "locate_parabola_2d",
    "RotatingTagResult",
    "locate_rotating_tag",
]
