"""Tagoram-style Differential Augmented Hologram (DAH) [2].

The surveillance area is cut into grid cells; each cell's *likelihood* of
being the target position is the coherence between measured and predicted
phase differences::

    L(p) = | sum_k w_k exp( j [ (theta_k - theta_ref)
                                - (theta_hat_k(p) - theta_hat_ref(p)) ] ) | / sum_k w_k

where ``theta_hat_k(p) = (4*pi/lambda) |p - p_k|`` is the phase a target at
``p`` would produce at scan position ``p_k``. Differencing against a
reference read cancels the unknown hardware offsets — each term is 1 when
the cell is consistent with a measurement pair, so cells on the hyperbola
of every pair score high and the target sits at the hyperbolas' common
intersection (paper Fig. 4).

The *augmentation* re-weights measurements by their coherence with the
current peak and rebuilds, damping multipath-corrupted reads (the weight
effect shown in Fig. 4(b)).

Cost scales with (area / grid^dim) x reads — the paper's Sec. II-C
observation that a 1-2 m^2 hologram at 1 mm takes tens of seconds, and the
reason Fig. 13(b) shows LION ahead by orders of magnitude in 3D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI

Bounds = Tuple[float, float]


@dataclass(frozen=True)
class HologramResult:
    """Output of a hologram localization.

    Attributes:
        position: grid cell with the highest likelihood, shape ``(dim,)``.
        likelihood: the winning likelihood in ``[0, 1]``.
        grid_shape: cells per axis.
        hologram: the full likelihood image (axes ordered x, y[, z]);
            ``None`` when ``keep_hologram`` was False.
        axes: the grid coordinate vectors per axis.
        cell_count: total number of evaluated cells.
    """

    position: np.ndarray
    likelihood: float
    grid_shape: Tuple[int, ...]
    hologram: np.ndarray | None
    axes: Tuple[np.ndarray, ...]
    cell_count: int


def _grid_axes(bounds: Sequence[Bounds], grid_size_m: float) -> Tuple[np.ndarray, ...]:
    axes = []
    for low, high in bounds:
        if high <= low:
            raise ValueError(f"invalid bounds ({low}, {high})")
        count = max(int(round((high - low) / grid_size_m)) + 1, 2)
        axes.append(np.linspace(low, high, count))
    return tuple(axes)


def hologram_likelihood(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    cells: np.ndarray,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    weights: np.ndarray | None = None,
    reference_index: int = 0,
    chunk_cells: int = 200_000,
) -> np.ndarray:
    """Likelihood of each candidate cell (vector form of the DAH kernel).

    Args:
        positions: scan positions, shape ``(n, dim)``.
        wrapped_phase_rad: measured wrapped phases, shape ``(n,)``.
        cells: candidate target positions, shape ``(m, dim)``.
        wavelength_m: carrier wavelength.
        weights: per-measurement weights, shape ``(n,)``; default uniform.
        reference_index: measurement used as the phase-difference reference.
        chunk_cells: cells per evaluation chunk (memory control).

    Returns:
        Likelihood per cell, shape ``(m,)``, each in ``[0, 1]``.

    Raises:
        ValueError: on shape mismatches or empty inputs.
    """
    points = np.asarray(positions, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    grid = np.asarray(cells, dtype=float)
    if points.ndim != 2 or grid.ndim != 2 or points.shape[1] != grid.shape[1]:
        raise ValueError("positions and cells must be matrices of equal width")
    n = points.shape[0]
    if phases.shape != (n,) or n < 2:
        raise ValueError("need at least two measurements with matching phases")
    if not 0 <= reference_index < n:
        raise ValueError("reference index out of range")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
    weight_total = float(np.sum(weights))
    if weight_total <= 0.0:
        raise ValueError("weights must not sum to zero")

    k = 2.0 * TWO_PI / wavelength_m
    measured = phases - phases[reference_index]
    likelihood = np.empty(grid.shape[0], dtype=float)
    reference_point = points[reference_index]
    for start in range(0, grid.shape[0], chunk_cells):
        block = grid[start : start + chunk_cells]
        # (m_chunk, n) distances from each cell to each scan position.
        distances = np.linalg.norm(
            block[:, np.newaxis, :] - points[np.newaxis, :, :], axis=2
        )
        reference_distance = np.linalg.norm(block - reference_point, axis=1)
        predicted = k * (distances - reference_distance[:, np.newaxis])
        coherence = np.abs(
            np.sum(weights * np.exp(1j * (measured - predicted)), axis=1)
        )
        likelihood[start : start + block.shape[0]] = coherence / weight_total
    return likelihood


@dataclass
class DifferentialHologram:
    """Configurable DAH localizer.

    Attributes:
        wavelength_m: carrier wavelength.
        grid_size_m: cell edge length (paper: 1 mm).
        augmentation_rounds: re-weighting rounds after the first build
            (0 = plain differential hologram; 1 = DAH as evaluated here).
        chunk_cells: cells per evaluation chunk.
    """

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    grid_size_m: float = 0.001
    augmentation_rounds: int = 1
    chunk_cells: int = 200_000

    def __post_init__(self) -> None:
        if self.wavelength_m <= 0.0:
            raise ValueError("wavelength must be positive")
        if self.grid_size_m <= 0.0:
            raise ValueError("grid size must be positive")
        if self.augmentation_rounds < 0:
            raise ValueError("augmentation rounds must be >= 0")

    def locate(
        self,
        positions: np.ndarray,
        wrapped_phase_rad: np.ndarray,
        bounds: Sequence[Bounds],
        keep_hologram: bool = False,
        reference_index: int = 0,
    ) -> HologramResult:
        """Grid-search the area for the maximum-likelihood cell.

        Args:
            positions: scan positions, shape ``(n, dim)`` with dim = 2 or 3
                matching ``len(bounds)``.
            wrapped_phase_rad: measured wrapped phases, shape ``(n,)``.
            bounds: per-axis ``(low, high)`` search bounds.
            keep_hologram: retain the full likelihood image (memory!).
            reference_index: phase-difference reference measurement.

        Raises:
            ValueError: on inconsistent dimensions.
        """
        points = np.asarray(positions, dtype=float)
        dim = len(bounds)
        if dim not in (2, 3):
            raise ValueError(f"bounds must cover 2 or 3 axes, got {dim}")
        if points.shape[1] < dim:
            raise ValueError(
                f"positions have {points.shape[1]} axes but bounds cover {dim}"
            )
        points = points[:, :dim]

        axes = _grid_axes(bounds, self.grid_size_m)
        mesh = np.meshgrid(*axes, indexing="ij")
        cells = np.stack([m.ravel() for m in mesh], axis=1)

        weights = np.ones(points.shape[0])
        likelihood = hologram_likelihood(
            points,
            wrapped_phase_rad,
            cells,
            wavelength_m=self.wavelength_m,
            weights=weights,
            reference_index=reference_index,
            chunk_cells=self.chunk_cells,
        )
        for _ in range(self.augmentation_rounds):
            peak = cells[int(np.argmax(likelihood))]
            weights = self._augmented_weights(
                points, wrapped_phase_rad, peak, reference_index
            )
            likelihood = hologram_likelihood(
                points,
                wrapped_phase_rad,
                cells,
                wavelength_m=self.wavelength_m,
                weights=weights,
                reference_index=reference_index,
                chunk_cells=self.chunk_cells,
            )

        best = int(np.argmax(likelihood))
        grid_shape = tuple(axis.size for axis in axes)
        image = likelihood.reshape(grid_shape) if keep_hologram else None
        return HologramResult(
            position=cells[best].copy(),
            likelihood=float(likelihood[best]),
            grid_shape=grid_shape,
            hologram=image,
            axes=axes,
            cell_count=cells.shape[0],
        )

    def _augmented_weights(
        self,
        points: np.ndarray,
        wrapped_phase_rad: np.ndarray,
        peak: np.ndarray,
        reference_index: int,
    ) -> np.ndarray:
        """Per-measurement coherence with the current peak, floored at 0.

        Measurements whose phase difference disagrees with the peak cell's
        prediction (multipath, noise bursts) receive low weight.
        """
        phases = np.asarray(wrapped_phase_rad, dtype=float)
        k = 2.0 * TWO_PI / self.wavelength_m
        distances = np.linalg.norm(points - peak[np.newaxis, :], axis=1)
        predicted = k * (distances - distances[reference_index])
        measured = phases - phases[reference_index]
        agreement = np.cos(measured - predicted)
        return np.clip(agreement, 0.0, None) + 1e-6
