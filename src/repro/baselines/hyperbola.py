"""Hyperbola (TDoA) baseline [6, 14-19].

A phase difference between two scan positions constrains the target to a
hyperbola (2D) / hyperboloid (3D) of constant distance difference::

    |p - p_i| - |p - p_j| = delta_d_i - delta_d_j

Solving many such quadratic constraints needs iterative nonlinear least
squares — the computation the paper's radical-line trick linearises away.
This implementation uses ``scipy.optimize.least_squares`` with analytic
residuals; it is accurate but 10-100x slower than LION's single linear
solve, which is exactly its role in the comparison.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.pairing import lag_pairs
from repro.core.system import delta_distances
from repro.signalproc.unwrap import unwrap_phase


@dataclass(frozen=True)
class HyperbolaResult:
    """Output of the hyperbola solve.

    Attributes:
        position: estimated target position, shape ``(dim,)``.
        cost: final sum of squared residuals.
        iterations: function evaluations used by the optimizer.
        converged: optimizer success flag.
    """

    position: np.ndarray
    cost: float
    iterations: int
    converged: bool


def _locate_hyperbola_impl(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    initial_guess: np.ndarray | None = None,
    pairs: Sequence[Tuple[int, int]] | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    dim: int | None = None,
) -> HyperbolaResult:
    """Locate the target by fitting distance-difference hyperbolas.

    Args:
        positions: scan positions, shape ``(n, 2)`` or ``(n, 3)``.
        wrapped_phase_rad: reported wrapped phases (continuous scan).
        initial_guess: optimizer start; defaults to one meter boresight of
            the scan centroid (a deliberately generic prior).
        pairs: measurement pairs; defaults to quarter-scan lag pairs.
        wavelength_m: carrier wavelength.
        dim: answer dimension; inferred from positions when omitted.

    Raises:
        ValueError: on shape errors or too few reads.
    """
    points = np.asarray(positions, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if dim is None:
        dim = points.shape[1]
    if dim == 2 and points.shape[1] == 3:
        points = points[:, :2]
    if phases.shape != (points.shape[0],):
        raise ValueError("phases must match positions")
    if points.shape[0] < 3:
        raise ValueError("need at least three reads")

    profile = unwrap_phase(phases)
    deltas = delta_distances(profile, 0, wavelength_m)
    if pairs is None:
        lag = max(points.shape[0] // 4, 1)
        pairs = lag_pairs(points.shape[0], lag)
    index = np.asarray(pairs, dtype=int)
    pi = points[index[:, 0]]
    pj = points[index[:, 1]]
    difference = deltas[index[:, 0]] - deltas[index[:, 1]]

    if initial_guess is None:
        guess = points.mean(axis=0).copy()
        guess[-1] += 1.0
    else:
        guess = np.asarray(initial_guess, dtype=float).copy()
        if guess.shape != (dim,):
            raise ValueError(f"initial guess must have shape ({dim},)")

    def residuals(candidate: np.ndarray) -> np.ndarray:
        di = np.linalg.norm(pi - candidate[np.newaxis, :], axis=1)
        dj = np.linalg.norm(pj - candidate[np.newaxis, :], axis=1)
        return (di - dj) - difference

    fit = least_squares(residuals, guess, method="lm")
    return HyperbolaResult(
        position=fit.x.copy(),
        cost=float(2.0 * fit.cost),
        iterations=int(fit.nfev),
        converged=bool(fit.success),
    )


def locate_hyperbola(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    initial_guess: np.ndarray | None = None,
    pairs: Sequence[Tuple[int, int]] | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    dim: int | None = None,
) -> HyperbolaResult:
    """Deprecated entry point for the hyperbola baseline.

    Use the ``"hyperbola"`` estimator from :mod:`repro.pipeline` instead;
    this shim forwards through the registry (identical results) and will
    be removed once downstream callers have migrated. Calls with an
    explicit ``pairs`` override — a knob the registry config does not
    carry — go straight to the implementation. See
    :func:`_locate_hyperbola_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "locate_hyperbola() is deprecated; use "
        "repro.pipeline.estimate('hyperbola', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if pairs is not None:
        return _locate_hyperbola_impl(
            positions,
            wrapped_phase_rad,
            initial_guess=initial_guess,
            pairs=pairs,
            wavelength_m=wavelength_m,
            dim=dim,
        )
    from repro import pipeline

    config = pipeline.HyperbolaConfig(wavelength_m=wavelength_m, dim=dim)
    request = pipeline.EstimationRequest(
        positions=positions, phases_rad=wrapped_phase_rad, initial_guess=initial_guess
    )
    return pipeline.estimate("hyperbola", request, config).raw
