"""Parabola-fit baseline [8]: 2D localization from a linear scan.

Near the perpendicular foot of a straight trajectory, the distance profile
``d(x) = sqrt((x - x0)^2 + y0^2)`` is well approximated by the parabola
``y0 + (x - x0)^2 / (2 y0)``, so the unwrapped phase profile is
approximately quadratic in the scan coordinate::

    theta(x) ~ (4*pi/lambda) * (y0 + (x - x0)^2 / (2 y0))

Fitting ``a x^2 + b x + c`` yields the target's along-track position
``x0 = -b / (2a)`` and depth ``y0 = 2*pi / (a * lambda)``. The method is
restricted to 2D and to linear scanning — the limitation the paper cites —
but is extremely cheap and a useful sanity baseline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.signalproc.unwrap import unwrap_phase


@dataclass(frozen=True)
class ParabolaResult:
    """Output of the parabola fit.

    Attributes:
        position: estimated ``(x0, y0)`` in the scan frame (first axis =
            scan direction, second = depth; the depth sign follows the
            caller's ``positive_side``).
        curvature: the fitted quadratic coefficient ``a`` (rad/m^2).
        rms_residual_rad: fit quality.
    """

    position: np.ndarray
    curvature: float
    rms_residual_rad: float


def _locate_parabola_2d_impl(
    scan_coordinate_m: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    positive_side: bool = True,
) -> ParabolaResult:
    """Fit the quadratic phase profile of a linear scan.

    Args:
        scan_coordinate_m: positions along the (straight) trajectory.
        wrapped_phase_rad: reported wrapped phases, same length.
        wavelength_m: carrier wavelength.
        positive_side: whether the target lies on the positive depth side.

    Raises:
        ValueError: on shape errors, fewer than three reads, or a
            non-convex fitted profile (target not bracketed by the scan).
    """
    x = np.asarray(scan_coordinate_m, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    if x.ndim != 1 or x.shape != phases.shape:
        raise ValueError("scan coordinates and phases must be equal-length vectors")
    if x.size < 3:
        raise ValueError("need at least three reads for a quadratic fit")

    profile = unwrap_phase(phases)
    coefficients = np.polyfit(x, profile, deg=2)
    a, b, _ = (float(v) for v in coefficients)
    if a <= 0.0:
        raise ValueError(
            "phase profile is not convex; the perpendicular foot is outside the scan"
        )
    x0 = -b / (2.0 * a)
    y0 = TWO_PI / (a * wavelength_m)
    fitted = np.polyval(coefficients, x)
    rms = float(np.sqrt(np.mean((profile - fitted) ** 2)))
    depth = y0 if positive_side else -y0
    return ParabolaResult(
        position=np.array([x0, depth]),
        curvature=a,
        rms_residual_rad=rms,
    )


def locate_parabola_2d(
    scan_coordinate_m: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    positive_side: bool = True,
) -> ParabolaResult:
    """Deprecated entry point for the parabola baseline.

    Use the ``"parabola"`` estimator from :mod:`repro.pipeline` instead;
    this shim forwards through the registry (identical results) and will
    be removed once downstream callers have migrated. See
    :func:`_locate_parabola_2d_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "locate_parabola_2d() is deprecated; use "
        "repro.pipeline.estimate('parabola', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import pipeline

    x = np.asarray(scan_coordinate_m, dtype=float)
    config = pipeline.ParabolaConfig(
        wavelength_m=wavelength_m, positive_side=positive_side
    )
    request = pipeline.EstimationRequest(
        positions=np.column_stack([x, np.zeros_like(x)]),
        phases_rad=wrapped_phase_rad,
    )
    return pipeline.estimate("parabola", request, config).raw
