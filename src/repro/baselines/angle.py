"""Tagspin-style rotating-tag baseline [7].

A tag spinning on a turntable of radius ``r`` around center ``c`` sees its
distance to a static antenna modulate as::

    d(alpha) = sqrt(d0^2 + r^2 - 2 d0 r cos(alpha - phi))

where ``d0`` is the center-to-antenna distance and ``phi`` the antenna's
azimuth from the center. For ``d0 >> r`` this is approximately
``d0 - r cos(alpha - phi)``: a sinusoid whose *phase* encodes the angle of
arrival and whose amplitude encodes nothing new — which is why Tagspin is
an AoA method. We implement both the quick sinusoid AoA fit and a full
nonlinear refinement that also recovers ``d0``, giving a position.

Limitation (the paper's point): the trajectory *must* be circular.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.system import delta_distances
from repro.signalproc.unwrap import unwrap_phase


@dataclass(frozen=True)
class RotatingTagResult:
    """Output of the rotating-tag solve.

    Attributes:
        azimuth_rad: estimated antenna azimuth from the turntable center.
        center_distance_m: estimated center-to-antenna distance ``d0``.
        position: estimated 2D position in the turntable plane frame
            (center at origin, azimuth measured from the first basis axis).
        converged: optimizer success flag.
    """

    azimuth_rad: float
    center_distance_m: float
    position: np.ndarray
    converged: bool


def _locate_rotating_tag_impl(
    angles_rad: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    radius_m: float,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    initial_distance_m: float = 1.0,
) -> RotatingTagResult:
    """Locate a static antenna from one revolution of a spinning tag.

    Args:
        angles_rad: turntable angle per read (monotone over the scan).
        wrapped_phase_rad: reported wrapped phases, same length.
        radius_m: tag rotation radius.
        wavelength_m: carrier wavelength.
        initial_distance_m: starting guess for ``d0``.

    Raises:
        ValueError: on shape errors, too few reads, or a non-positive
            radius.
    """
    alpha = np.asarray(angles_rad, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    if alpha.ndim != 1 or alpha.shape != phases.shape:
        raise ValueError("angles and phases must be equal-length vectors")
    if alpha.size < 8:
        raise ValueError("need at least eight reads around the circle")
    if radius_m <= 0.0:
        raise ValueError(f"radius must be positive, got {radius_m}")

    profile = unwrap_phase(phases)
    deltas = delta_distances(profile, 0, wavelength_m)

    # Quick AoA: the far-field distance profile is d0 - r cos(alpha - phi),
    # so delta_d correlates with -cos(alpha - phi); a single complex
    # projection recovers phi.
    projection = np.sum(deltas * np.exp(1j * alpha))
    azimuth_guess = float(np.mod(np.angle(-projection), 2.0 * np.pi))

    def residuals(params: np.ndarray) -> np.ndarray:
        d0, phi, offset = params
        model = np.sqrt(
            np.maximum(d0**2 + radius_m**2 - 2.0 * d0 * radius_m * np.cos(alpha - phi), 1e-12)
        )
        return (model - model[0]) + offset - deltas

    fit = least_squares(
        residuals,
        np.array([initial_distance_m, azimuth_guess, 0.0]),
        bounds=([radius_m * 1.01, -np.inf, -np.inf], [np.inf, np.inf, np.inf]),
    )
    d0, phi, _ = (float(v) for v in fit.x)
    phi = float(np.mod(phi, 2.0 * np.pi))
    position = np.array([d0 * np.cos(phi), d0 * np.sin(phi)])
    return RotatingTagResult(
        azimuth_rad=phi,
        center_distance_m=d0,
        position=position,
        converged=bool(fit.success),
    )


def locate_rotating_tag(
    angles_rad: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    radius_m: float,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    initial_distance_m: float = 1.0,
) -> RotatingTagResult:
    """Deprecated entry point for the rotating-tag baseline.

    Use the ``"angle"`` estimator from :mod:`repro.pipeline` instead;
    this shim forwards through the registry (identical results) and will
    be removed once downstream callers have migrated. See
    :func:`_locate_rotating_tag_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "locate_rotating_tag() is deprecated; use "
        "repro.pipeline.estimate('angle', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import pipeline

    config = pipeline.AngleConfig(
        wavelength_m=wavelength_m, initial_distance_m=initial_distance_m
    )
    request = pipeline.EstimationRequest(
        angles_rad=angles_rad, phases_rad=wrapped_phase_rad, radius_m=radius_m
    )
    return pipeline.estimate("angle", request, config).raw
