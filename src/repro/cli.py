"""Command-line interface.

Figure regeneration::

    lion list                      # show available figure ids
    lion run fig13a                # regenerate one figure
    lion run all --fast --seed 3   # everything, CI-sized
    lion --jobs 4 run all --fast   # same, fanned out over 4 processes

Data tooling (CSV read-record workflow, see repro.datasets.io)::

    lion simulate --scenario conveyor --out scan.csv --seed 5
    lion locate scan.csv --dim 2
    lion locate scan.csv --estimator hologram --estimator-config '{"grid_size_m": 0.005}'
    lion estimators                # list registered estimation methods
    lion calibrate scan.csv --physical-center 0,0.8,0 --scenario three-line

Streaming sessions (repro.stream, docs/serving.md)::

    lion replay scan.csv                   # replay at max speed + verify
    lion replay scan.csv --speed 2 --events  # 2x wall clock, print events

Serving (docs/serving.md)::

    lion serve --port 8321 --shards 4              # networked sharded front end
    lion serve --calibration-store fleet/          # + /v1/calibrations surface
    lion serve-bench --quick                       # engine load test, CI sizing
    lion serve-bench --batch-sizes 1,8,32 --out BENCH_serve.json

Fleet calibration registry (docs/calibration.md)::

    lion calib init fleet/ --size 10 --seed 0      # seed-calibrate a fleet
    lion calib status fleet/                       # fleet health (age + drift)
    lion calib recalibrate fleet/ --drift-hours 6  # drift, detect, recalibrate
    lion calib history fleet/ ant-003              # version history

Observability (docs/observability.md)::

    lion run fig13a --trace                     # print the span tree
    lion run fig13a --metrics-out metrics.json  # metrics + RunManifest
    lion run all --fast --log-level info        # structured repro.* logs
    lion top http://127.0.0.1:8321              # live serving telemetry + SLOs

``python -m repro ...`` is equivalent to ``lion ...``.
"""

from __future__ import annotations

import argparse
from typing import Sequence

import numpy as np

from repro.experiments.figures import FIGURE_RUNNERS, run_figure
from repro.obs import configure_logging, get_logger

_logger = get_logger("repro.cli")


def _obs_parent_parser() -> argparse.ArgumentParser:
    """Observability flags, attachable to the main parser and every subcommand.

    Registering the flags on both levels lets them appear before or after
    the subcommand (``lion --trace run fig13a`` / ``lion run fig13a
    --trace``).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        action="store_true",
        help="record tracing spans and print the trace tree after the command",
    )
    parent.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="record metrics and write them (with a RunManifest) as JSON to PATH",
    )
    parent.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="log level for the repro.* logger hierarchy (debug/info/warning/error)",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    obs_parent = _obs_parent_parser()
    parser = argparse.ArgumentParser(
        prog="lion",
        parents=[obs_parent],
        description=(
            "LION (ICDCS 2022) reproduction: regenerate evaluation figures "
            "and run the localization/calibration pipeline on CSV scans."
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "worker count for parallel work (figure fan-out, Monte-Carlo "
            "studies); defaults to $LION_JOBS or the CPU count"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available figure ids", parents=[obs_parent])

    run_parser = subparsers.add_parser(
        "run", help="run one figure (or 'all')", parents=[obs_parent]
    )
    run_parser.add_argument(
        "figure", help=f"figure id ({', '.join(sorted(FIGURE_RUNNERS))}) or 'all'"
    )
    run_parser.add_argument("--seed", type=int, default=0, help="random seed")
    run_parser.add_argument(
        "--fast",
        action="store_true",
        help="CI-sized run: fewer repetitions, coarser hologram grids",
    )
    run_parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII plot of each figure's numeric series",
    )
    run_parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the result(s) as JSON (one object, or a list for 'all')",
    )

    simulate_parser = subparsers.add_parser(
        "simulate",
        help="simulate a scan and write it as a read-record CSV",
        parents=[obs_parent],
    )
    simulate_parser.add_argument(
        "--scenario",
        choices=("conveyor", "three-line", "turntable"),
        default="conveyor",
        help="scan geometry (default: conveyor)",
    )
    simulate_parser.add_argument("--out", required=True, help="output CSV path")
    simulate_parser.add_argument("--seed", type=int, default=0, help="random seed")
    simulate_parser.add_argument(
        "--depth", type=float, default=0.8, help="antenna depth in meters"
    )
    simulate_parser.add_argument(
        "--noise", type=float, default=0.08, help="base phase-noise sigma (rad)"
    )

    locate_parser = subparsers.add_parser(
        "locate",
        help="locate the antenna from a read-record CSV",
        parents=[obs_parent],
    )
    locate_parser.add_argument("csv", help="input CSV (from 'lion simulate' or a logger)")
    locate_parser.add_argument(
        "--estimator",
        default="lion",
        metavar="NAME",
        help="registered estimation method (see 'lion estimators'; default: lion)",
    )
    locate_parser.add_argument(
        "--estimator-config",
        metavar="JSON",
        help=(
            "JSON object of config overrides for the estimator "
            "(keys follow its typed config, e.g. '{\"interval_m\": 0.2}')"
        ),
    )
    locate_parser.add_argument("--dim", type=int, choices=(2, 3), default=2)
    locate_parser.add_argument(
        "--interval", type=float, default=0.25, help="scanning interval (m)"
    )
    locate_parser.add_argument(
        "--method", choices=("wls", "ls"), default="wls", help="solver"
    )

    subparsers.add_parser(
        "estimators",
        help="list registered estimation methods and their config keys",
        parents=[obs_parent],
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="networked sharded serving front end (docs/serving.md)",
        parents=[obs_parent],
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="listen address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321, help="listen port; 0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker count; requests route by (estimator, config_hash)",
    )
    serve_parser.add_argument(
        "--worker-mode",
        choices=("process", "thread"),
        default="process",
        help="worker hosting mode (thread is for tests/debugging)",
    )
    serve_parser.add_argument(
        "--max-batch-size", type=int, default=32, help="per-shard fused batch bound"
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="per-shard batching window in milliseconds (default: 2.0)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="per-shard load-shedding bound; beyond it requests get 429",
    )
    serve_parser.add_argument(
        "--drain-grace-s",
        type=float,
        default=0.0,
        help="seconds /readyz reports draining before the listener closes",
    )
    serve_parser.add_argument(
        "--calibration-store",
        metavar="DIR",
        help=(
            "calibration store directory; enables /v1/calibrations, fleet "
            "health in /statz, and 'antennas' resolution on /v1/locate"
        ),
    )
    serve_parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the /metrics exporter and per-shard instrumentation",
    )
    serve_parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing (stitched traces, /debug/traces)",
    )
    serve_parser.add_argument(
        "--trace-slow-ms",
        type=float,
        default=250.0,
        help=(
            "flight-recorder slow threshold in milliseconds; successful "
            "requests at least this slow are retained (0 records all)"
        ),
    )
    serve_parser.add_argument(
        "--slo-p99-ms",
        type=float,
        default=250.0,
        help="latency SLO: p99 of /v1/locate must stay at or under this (ms)",
    )
    serve_parser.add_argument(
        "--slo-error-rate",
        type=float,
        default=0.01,
        help="error SLO: max allowed 5xx fraction of /v1/locate responses",
    )

    top_parser = subparsers.add_parser(
        "top",
        help="live serving telemetry: poll /debug/timeseries and /slo",
        parents=[obs_parent],
    )
    top_parser.add_argument(
        "url", help="server base URL, e.g. http://127.0.0.1:8321"
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0, help="poll interval in seconds"
    )
    top_parser.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="trailing history window to render (seconds)",
    )
    top_parser.add_argument(
        "--once", action="store_true", help="print one snapshot and exit (no loop)"
    )

    serve_bench_parser = subparsers.add_parser(
        "serve-bench",
        help="load-test the micro-batching serving engine (docs/serving.md)",
        parents=[obs_parent],
    )
    serve_bench_parser.add_argument(
        "--requests", type=int, default=256, help="requests per batch-size replay"
    )
    serve_bench_parser.add_argument(
        "--reads", type=int, default=400, help="reads per scan (paper scale: 400)"
    )
    serve_bench_parser.add_argument(
        "--batch-sizes",
        default="1,8,32",
        metavar="N,N,...",
        help="max_batch_size settings to measure (default: 1,8,32)",
    )
    serve_bench_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="batching window in milliseconds (default: 2.0)",
    )
    serve_bench_parser.add_argument("--seed", type=int, default=0, help="random seed")
    serve_bench_parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizing (64 requests)"
    )
    serve_bench_parser.add_argument(
        "--out", metavar="PATH", help="also write the payload as JSON to PATH"
    )

    replay_parser = subparsers.add_parser(
        "replay",
        help="replay a recorded CSV through the streaming session layer",
        parents=[obs_parent],
    )
    replay_parser.add_argument("csv", help="input CSV (from 'lion simulate' or a logger)")
    replay_parser.add_argument(
        "--speed",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "replay at wall clock scaled by FACTOR (1.0 = real time, 2 = twice "
            "as fast); omitted replays at max speed"
        ),
    )
    replay_parser.add_argument(
        "--estimator",
        default="lion",
        metavar="NAME",
        help="estimation method per session (see 'lion estimators'; default: lion)",
    )
    replay_parser.add_argument(
        "--estimator-config",
        metavar="JSON",
        help="JSON object of config overrides for the estimator",
    )
    replay_parser.add_argument("--dim", type=int, choices=(2, 3), default=2)
    replay_parser.add_argument(
        "--chunk", type=int, default=32, help="reads per feed chunk (default: 32)"
    )
    replay_parser.add_argument(
        "--events", action="store_true", help="print every lifecycle event"
    )
    replay_parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity check against a one-shot solve",
    )

    calib_parser = subparsers.add_parser(
        "calib",
        help="fleet calibration registry (docs/calibration.md)",
        parents=[obs_parent],
    )
    calib_sub = calib_parser.add_subparsers(dest="calib_command", required=True)

    calib_init = calib_sub.add_parser(
        "init",
        help="create a store and seed-calibrate a simulated fleet",
        parents=[obs_parent],
    )
    calib_init.add_argument("store", help="calibration store directory (created)")
    calib_init.add_argument(
        "--size", type=int, default=10, help="fleet size (default: 10)"
    )
    calib_init.add_argument("--seed", type=int, default=0, help="fleet random seed")
    calib_init.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="process",
        help="how calibration scans fan out (default: process)",
    )

    calib_status = calib_sub.add_parser(
        "status",
        help="fleet health: versions, age, staleness verdicts",
        parents=[obs_parent],
    )
    calib_status.add_argument("store", help="calibration store directory")
    calib_status.add_argument(
        "--max-age-s",
        type=float,
        default=24.0 * 3600.0,
        help="staleness age budget in seconds (default: 86400)",
    )
    calib_status.add_argument(
        "--json", action="store_true", help="print the health payload as JSON"
    )

    calib_recal = calib_sub.add_parser(
        "recalibrate",
        help="advance the simulated fleet drift and recalibrate stale antennas",
        parents=[obs_parent],
    )
    calib_recal.add_argument("store", help="calibration store directory")
    calib_recal.add_argument(
        "--drift-hours",
        type=float,
        default=0.0,
        help="simulated drift to apply before recalibrating (hours)",
    )
    calib_recal.add_argument(
        "--antennas",
        metavar="NAME,NAME,...",
        help="recalibrate only these antennas (default: all)",
    )
    calib_recal.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="process",
        help="how calibration scans fan out (default: process)",
    )

    calib_history = calib_sub.add_parser(
        "history",
        help="print every committed version of one antenna",
        parents=[obs_parent],
    )
    calib_history.add_argument("store", help="calibration store directory")
    calib_history.add_argument("antenna", help="antenna name, e.g. ant-003")

    calibrate_parser = subparsers.add_parser(
        "calibrate",
        help="full phase calibration from a read-record CSV",
        parents=[obs_parent],
    )
    calibrate_parser.add_argument("csv", help="input CSV of a three-line scan")
    calibrate_parser.add_argument(
        "--physical-center",
        required=True,
        help="manually measured center as 'x,y,z' (meters)",
    )
    calibrate_parser.add_argument(
        "--scenario",
        choices=("three-line",),
        default="three-line",
        help="scan geometry used to rebuild segment structure",
    )
    return parser


def _parse_center(text: str) -> np.ndarray:
    parts = text.split(",")
    if len(parts) != 3:
        raise SystemExit(f"--physical-center must be 'x,y,z', got {text!r}")
    try:
        return np.array([float(p) for p in parts])
    except ValueError as error:
        raise SystemExit(f"bad --physical-center {text!r}: {error}") from error


def _plot_result(result) -> None:
    """Best-effort ASCII plot of a figure's first numeric x/y columns."""
    from repro.viz import line_plot, sparkline

    numeric_columns = [
        name
        for name in result.columns
        if all(isinstance(row.get(name), (int, float)) for row in result.rows)
        and len(result.rows) > 1
    ]
    if len(numeric_columns) >= 2:
        x_name, y_name = numeric_columns[0], numeric_columns[1]
        x = [float(row[x_name]) for row in result.rows]
        y = [float(row[y_name]) for row in result.rows]
        print(line_plot(x, y, title=f"{y_name} vs {x_name}"))
    elif len(numeric_columns) == 1:
        name = numeric_columns[0]
        values = [float(row[name]) for row in result.rows]
        print(f"{name}: {sparkline(values)}")


def _command_run(args: argparse.Namespace) -> int:
    import functools

    from repro.parallel import get_executor, resolve_jobs

    figure_ids = sorted(FIGURE_RUNNERS) if args.figure == "all" else [args.figure]
    unknown = [figure_id for figure_id in figure_ids if figure_id not in FIGURE_RUNNERS]
    if unknown:
        _logger.error("unknown figure %r; try 'lion list'", unknown[0])
        return 2
    # Figures are independent; with more than one figure and more than one
    # worker, fan them out over a process pool. Each runner is seeded
    # independently, so the results match the serial run exactly.
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        _logger.error("cannot resolve worker count: %s", error)
        return 2
    backend = "process" if len(figure_ids) > 1 and jobs > 1 else "serial"
    runner = functools.partial(run_figure, seed=args.seed, fast=args.fast)
    results = get_executor(backend, jobs=jobs).map(runner, figure_ids)
    for result in results:
        print(result.format_table())
        if getattr(args, "plot", False):
            _plot_result(result)
        print()
    if getattr(args, "json", None):
        import json
        from pathlib import Path

        payload = (
            results[0].to_dict() if len(results) == 1 else [r.to_dict() for r in results]
        )
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote JSON to {args.json}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from repro.datasets.io import write_records_csv
    from repro.datasets.synthetic import default_antenna, simulate_scan
    from repro.rf.noise import SnrScaledPhaseNoise
    from repro.trajectory.circular import CircularTrajectory
    from repro.trajectory.linear import LinearTrajectory
    from repro.trajectory.multiline import ThreeLineScan

    rng = np.random.default_rng(args.seed)
    antenna = default_antenna((0.0, args.depth, 0.0), rng, name="cli-antenna")
    if args.scenario == "conveyor":
        trajectory = LinearTrajectory((-0.6, 0.0, 0.0), (0.6, 0.0, 0.0))
    elif args.scenario == "three-line":
        trajectory = ThreeLineScan(-0.55, 0.55)
    else:
        trajectory = CircularTrajectory((0.0, 0.0, 0.0), radius=0.2)
    scan = simulate_scan(
        trajectory,
        antenna,
        rng=rng,
        noise=SnrScaledPhaseNoise(
            base_std_rad=args.noise, reference_distance_m=args.depth
        ),
    )
    write_records_csv(scan.records, args.out)
    print(f"wrote {len(scan.records)} reads to {args.out}")
    print(f"scenario: {args.scenario}; antenna physical center (0, {args.depth}, 0)")
    print(
        "hidden truth: phase center "
        f"{np.round(antenna.phase_center, 4).tolist()}, "
        f"offset {antenna.phase_offset_rad:.3f} rad"
    )
    return 0


def _locate_config(args: argparse.Namespace) -> dict:
    """Merge the locate flags with any ``--estimator-config`` JSON.

    The convenience flags (``--dim``/``--interval``/``--method``) only
    apply when the chosen method's config actually has those knobs, so
    ``--estimator hologram`` works without fighting LION-specific flags.
    Explicit JSON keys always win over the flags.
    """
    import dataclasses
    import json

    from repro import pipeline

    field_names = {
        field.name for field in dataclasses.fields(pipeline.get_spec(args.estimator).config_cls)
    }
    flag_values = {"dim": args.dim, "interval_m": args.interval, "method": args.method}
    config = {key: value for key, value in flag_values.items() if key in field_names}
    if args.estimator_config:
        overrides = json.loads(args.estimator_config)
        if not isinstance(overrides, dict):
            raise ValueError("--estimator-config must be a JSON object")
        config.update(overrides)
    return config


def _command_locate(args: argparse.Namespace) -> int:
    from repro import pipeline
    from repro.datasets.io import read_records_csv

    records = read_records_csv(args.csv)
    positions = np.array([r.tag_position for r in records])
    phases = np.array([r.phase_rad for r in records])
    try:
        config = _locate_config(args)
        report = pipeline.estimate(
            args.estimator,
            pipeline.EstimationRequest(positions=positions, phases_rad=phases),
            config,
        )
    except (KeyError, ValueError) as error:
        _logger.error("localization failed: %s", error)
        return 1
    print(f"reads: {len(records)} from antenna {records[0].antenna!r}")
    print(f"estimator: {report.estimator} (config hash {report.config_hash[:12]})")
    print(f"estimated position: {np.round(report.position, 4).tolist()}")
    if report.reference_distance_m is not None:
        print(f"reference distance: {report.reference_distance_m:.4f} m")
    recovered_axis = report.diagnostics.get("recovered_axis")
    if recovered_axis is not None:
        print(f"axis {recovered_axis} recovered from d_r (lower-dimension)")
    mean_abs = report.diagnostics.get("mean_abs_residual")
    if mean_abs is not None:
        print(f"mean |residual|: {mean_abs * 1000:.3f} mm")
    return 0


def _command_estimators() -> int:
    import dataclasses

    from repro import pipeline

    for name, summary in pipeline.list_estimators().items():
        keys = ", ".join(
            field.name for field in dataclasses.fields(pipeline.get_spec(name).config_cls)
        )
        print(f"{name:20s} {summary}")
        print(f"{'':20s}   config keys: {keys}")
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.serve.bench import run_load

    try:
        batch_sizes = tuple(int(part) for part in args.batch_sizes.split(",") if part)
    except ValueError:
        _logger.error("--batch-sizes must be comma-separated integers, got %r", args.batch_sizes)
        return 2
    if not batch_sizes or any(size <= 0 for size in batch_sizes):
        _logger.error("--batch-sizes must be positive integers, got %r", args.batch_sizes)
        return 2
    requests = 64 if args.quick else args.requests
    payload = run_load(
        requests=requests,
        reads=args.reads,
        batch_sizes=batch_sizes,
        seed=args.seed,
        max_wait_s=args.max_wait_ms / 1e3,
    )
    print(f"== serve-bench: {requests} requests x {args.reads} reads ==")
    for size in batch_sizes:
        stats = payload["batch"][str(size)]
        print(
            f"  batch {size:>3}: {stats['requests_per_sec']:9.1f} req/s   "
            f"p50 {stats['p50_ms']:8.2f} ms   p99 {stats['p99_ms']:8.2f} ms"
        )
    for key, value in sorted(payload.items()):
        if key.startswith("speedup_"):
            print(f"  {key}: {value:.2f}x")
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.engine import ServeConfig
    from repro.serve.net import NetServeConfig, run_server

    try:
        config = NetServeConfig(
            host=args.host,
            port=args.port,
            shards=args.shards,
            engine=ServeConfig(
                max_batch_size=args.max_batch_size,
                max_wait_s=args.max_wait_ms / 1e3,
            ),
            worker_mode=args.worker_mode,
            max_inflight_per_shard=args.max_inflight,
            drain_grace_s=args.drain_grace_s,
            metrics=not args.no_metrics,
            tracing=not args.no_tracing,
            recorder_slow_ms=args.trace_slow_ms,
            slo_p99_ms=args.slo_p99_ms,
            slo_error_rate=args.slo_error_rate,
            calibration_store=args.calibration_store,
        )
    except ValueError as error:
        _logger.error("bad serve configuration: %s", error)
        return 2
    return run_server(config)


def _fetch_json(url: str, timeout: float = 5.0) -> dict:
    import json as json_module
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json_module.loads(response.read())


def _render_top(
    url: str, timeseries: dict, slo: dict, window_s: float
) -> str:
    """One ``lion top`` frame from /debug/timeseries and /slo payloads."""
    from repro.viz import sparkline

    samples = timeseries.get("samples", [])
    lines = [
        f"lion top — {url}  window={window_s:g}s  "
        f"samples={len(samples)}  slo={slo.get('state', '?')}"
    ]
    latest = samples[-1] if samples else {}

    def series(key: str) -> list:
        return [s[key] or 0.0 for s in samples]

    if samples:
        for key, label, unit in (
            ("req_s", "req/s ", ""),
            ("err_s", "err/s ", ""),
            ("shed_s", "shed/s", ""),
            ("p99_ms", "p99   ", " ms"),
            ("inflight", "infl  ", ""),
            ("queue_depth", "queue ", ""),
        ):
            values = series(key)
            current = latest.get(key)
            shown = "-" if current is None else f"{current:g}{unit}"
            lines.append(f"  {label} {sparkline(values, width=48)}  {shown}")
    else:
        lines.append("  (no samples yet — is the server receiving traffic?)")
    for objective in slo.get("objectives", []):
        hot = [w for w in objective.get("windows", []) if w.get("burning")]
        burn = max((w["burn_rate"] for w in objective.get("windows", [])), default=0.0)
        lines.append(
            f"  slo {objective['name']}: {objective['state']}  "
            f"budget_remaining={objective.get('budget_remaining')}  "
            f"max_burn={burn:g}"
            + (f"  burning_windows={[w['window_s'] for w in hot]}" if hot else "")
        )
    return "\n".join(lines)


def _command_top(args: argparse.Namespace) -> int:
    # URLError subclasses OSError, so one except arm covers refused
    # connections, timeouts, and DNS failures alike.
    import time

    if args.interval <= 0:
        _logger.error("--interval must be positive, got %s", args.interval)
        return 2
    if args.window <= 0:
        _logger.error("--window must be positive, got %s", args.window)
        return 2
    base = args.url.rstrip("/")
    while True:
        try:
            timeseries = _fetch_json(f"{base}/debug/timeseries?window={args.window:g}")
            slo = _fetch_json(f"{base}/slo")
        except OSError as error:
            _logger.error("cannot reach %s: %s", base, error)
            return 1
        frame = _render_top(base, timeseries, slo, args.window)
        if args.once:
            print(frame)
            return 0
        # ANSI clear + home keeps the frame in place like top(1).
        print(f"\x1b[2J\x1b[H{frame}", flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _command_replay(args: argparse.Namespace) -> int:
    """Replay a recorded CSV through the streaming session layer.

    Exit code 1 when any session's final windowed re-solve fails the
    bit-identity check against the one-shot solve of the same window.
    """
    import json

    from repro.datasets.io import read_records_csv, session_streams
    from repro.stream import SessionEvent, StreamConfig, replay_records

    if args.speed is not None and args.speed <= 0:
        _logger.error("--speed must be positive, got %s", args.speed)
        return 2
    if args.chunk <= 0:
        _logger.error("--chunk must be positive, got %s", args.chunk)
        return 2
    estimator_config = None
    if args.estimator_config:
        estimator_config = json.loads(args.estimator_config)
        if not isinstance(estimator_config, dict):
            _logger.error("--estimator-config must be a JSON object")
            return 2

    records = read_records_csv(args.csv)
    streams = session_streams(records, dim=args.dim)
    try:
        config = StreamConfig(estimator=args.estimator, estimator_config=estimator_config)
    except (KeyError, TypeError, ValueError) as error:
        _logger.error("bad stream config: %s", error)
        return 2

    def print_event(event: SessionEvent) -> None:
        payload = event.to_dict()
        kind = payload.pop("kind")
        print(f"  [{kind}] {json.dumps(payload)}")

    try:
        results = replay_records(
            streams,
            config=config,
            speed=args.speed,
            chunk_reads=args.chunk,
            verify=not args.no_verify,
            subscriber=print_event if args.events else None,
        )
    except (KeyError, TypeError, ValueError) as error:
        _logger.error("replay failed: %s", error)
        return 1

    pace = "max speed" if args.speed is None else f"{args.speed:g}x wall clock"
    print(f"== replay: {len(streams)} session(s) from {args.csv} at {pace} ==")
    failed = False
    for result in results:
        position = (
            "unsolved"
            if result.final_position is None
            else np.round(result.final_position, 4).tolist()
        )
        print(
            f"  {result.tag} @ antenna {result.antenna}: {result.reads} reads, "
            f"{result.reads_per_sec:,.0f} reads/s, final {position} "
            f"({result.final_state})"
        )
        summary = ", ".join(f"{kind}={n}" for kind, n in sorted(result.events.items()))
        print(f"    events: {summary}")
        if result.bit_identical is not None:
            verdict = "bit-identical" if result.bit_identical else "MISMATCH"
            print(f"    windowed re-solve vs one-shot solve: {verdict}")
            failed = failed or not result.bit_identical
    return 1 if failed else 0


def _calib_open_store(path: str):
    from repro.calib import CalibrationStore, CalibStoreError

    try:
        return CalibrationStore(path, create=False)
    except CalibStoreError as error:
        _logger.error("cannot open calibration store %s: %s", path, error)
        return None


def _calib_rebuild_fleet(store):
    """Rebuild the simulated fleet from the store's persisted sim state.

    The fleet is deterministic from ``(seed, size)`` plus the exact
    sequence of ``advance`` steps, so the store's ``sim`` meta entry
    records the step list and this replays it — ``status`` and
    ``recalibrate`` across separate CLI invocations see one continuous
    drifting fleet.
    """
    from repro.datasets.fleet import AntennaFleet, FleetDriftConfig

    sim = store.meta_get("sim")
    if sim is None:
        return None, None
    fleet = AntennaFleet(FleetDriftConfig(size=int(sim["size"]), seed=int(sim["seed"])))
    for step in sim.get("steps", []):
        fleet.advance(float(step))
    return fleet, sim


def _print_recalibration_report(report) -> None:
    print(
        f"committed {len(report.committed)}, conflicts {len(report.conflicts)}, "
        f"failures {len(report.failures)} in {report.duration_s:.2f} s "
        f"({report.antennas_per_sec:.1f} antennas/s)"
    )
    for antenna, version in sorted(report.committed.items()):
        print(f"  {antenna}: -> v{version}")
    for antenna in report.conflicts:
        print(f"  {antenna}: CONFLICT (lost the CAS race)")
    for antenna, message in sorted(report.failures.items()):
        print(f"  {antenna}: FAILED {message}")


def _command_calib_init(args: argparse.Namespace) -> int:
    from repro.calib import CalibrationStore, RecalibrationScheduler, fleet_scan_source
    from repro.datasets.fleet import AntennaFleet, FleetDriftConfig

    if args.size <= 0:
        _logger.error("--size must be positive, got %d", args.size)
        return 2
    store = CalibrationStore(args.store, create=True)
    if store.meta_get("sim") is not None or store.antennas():
        _logger.error("store %s is already initialized", args.store)
        return 1
    fleet = AntennaFleet(FleetDriftConfig(size=args.size, seed=args.seed))
    scheduler = RecalibrationScheduler(
        store,
        fleet_scan_source(fleet),
        executor=args.executor,
        jobs=args.jobs,
        source="seed",
    )
    report = scheduler.recalibrate(fleet.names)
    store.meta_set(
        "sim", {"seed": args.seed, "size": args.size, "steps": [], "salt": 0}
    )
    print(f"initialized {args.store}: fleet of {args.size} (seed {args.seed})")
    _print_recalibration_report(report)
    return 0 if not report.failures else 1


def _command_calib_status(args: argparse.Namespace) -> int:
    import json

    from repro.calib import DriftMonitor, StalenessPolicy

    store = _calib_open_store(args.store)
    if store is None:
        return 1
    if args.max_age_s <= 0:
        _logger.error("--max-age-s must be positive, got %s", args.max_age_s)
        return 2
    monitor = DriftMonitor(store, StalenessPolicy(max_age_s=args.max_age_s))
    health = monitor.evaluate()
    if args.json:
        print(json.dumps(health.to_dict(), indent=2))
        return 0
    counts = ", ".join(f"{k}={v}" for k, v in sorted(health.counts.items()))
    print(f"store {args.store}: generation {store.generation}  [{counts}]")
    for item in health.antennas:
        age = "-" if item.age_s is None else f"{item.age_s / 3600.0:6.1f} h"
        reasons = f"  ({'; '.join(item.reasons)})" if item.reasons else ""
        print(f"  {item.antenna}: v{item.version}  age {age}  {item.status}{reasons}")
    return 0


def _command_calib_recalibrate(args: argparse.Namespace) -> int:
    from repro.calib import RecalibrationScheduler, fleet_scan_source

    store = _calib_open_store(args.store)
    if store is None:
        return 1
    if args.drift_hours < 0:
        _logger.error("--drift-hours must be non-negative, got %s", args.drift_hours)
        return 2
    fleet, sim = _calib_rebuild_fleet(store)
    if fleet is None:
        _logger.error(
            "store %s has no fleet-sim state; initialize it with 'lion calib init'",
            args.store,
        )
        return 1
    if args.drift_hours > 0:
        fleet.advance(args.drift_hours * 3600.0)
        sim["steps"] = list(sim.get("steps", [])) + [args.drift_hours * 3600.0]
        print(
            f"advanced drift by {args.drift_hours:g} h "
            f"(simulated clock {fleet.clock_s / 3600.0:g} h, "
            f"ambient {fleet.ambient_temperature_c():+.1f} C)"
        )
    salt = int(sim.get("salt", 0)) + 1
    targets = fleet.names
    if args.antennas:
        targets = tuple(part for part in args.antennas.split(",") if part)
        unknown = sorted(set(targets) - set(fleet.names))
        if unknown:
            _logger.error("unknown antennas: %s", ", ".join(unknown))
            return 2
    scheduler = RecalibrationScheduler(
        store,
        fleet_scan_source(fleet, salt=salt),
        executor=args.executor,
        jobs=args.jobs,
    )
    report = scheduler.recalibrate(targets)
    sim["salt"] = salt
    store.meta_set("sim", sim)
    _print_recalibration_report(report)
    return 0 if not report.failures and not report.conflicts else 1


def _command_calib_history(args: argparse.Namespace) -> int:
    from repro.calib import UnknownAntennaError

    store = _calib_open_store(args.store)
    if store is None:
        return 1
    try:
        records = store.history(args.antenna)
    except UnknownAntennaError as error:
        _logger.error("%s", error)
        return 1
    print(f"{args.antenna}: {len(records)} version(s)")
    for record in records:
        residual = (
            "-"
            if record.residual_rms_m is None
            else f"{record.residual_rms_m * 1000:.2f} mm"
        )
        print(
            f"  v{record.version}  source={record.source}  reads={record.reads}  "
            f"offset={record.phase_offset_rad:.4f} rad  "
            f"displacement={record.displacement_magnitude_m * 100:.2f} cm  "
            f"residual={residual}"
        )
    return 0


def _command_calib(args: argparse.Namespace) -> int:
    if args.calib_command == "init":
        return _command_calib_init(args)
    if args.calib_command == "status":
        return _command_calib_status(args)
    if args.calib_command == "recalibrate":
        return _command_calib_recalibrate(args)
    if args.calib_command == "history":
        return _command_calib_history(args)
    raise AssertionError(f"unhandled calib command {args.calib_command!r}")


def _command_calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibration import calibrate_antenna
    from repro.datasets.io import read_records_csv
    from repro.trajectory.multiline import ThreeLineScan

    records = read_records_csv(args.csv)
    positions = np.array([r.tag_position for r in records])
    phases = np.array([r.phase_rad for r in records])
    physical = _parse_center(args.physical_center)

    # Rebuild the sweep structure from the canonical scenario geometry.
    trajectory = ThreeLineScan(-0.55, 0.55)
    samples = trajectory.sample()
    if len(samples) != len(records):
        _logger.warning(
            "CSV has %d reads but the canonical %s scan has %d; segment "
            "structure is inferred from positions instead",
            len(records),
            args.scenario,
            len(samples),
        )
        segment_ids = None
        exclude = None
    else:
        segment_ids = samples.segment_ids
        exclude = trajectory.transit_mask(samples)

    try:
        calibration, adaptive = calibrate_antenna(
            positions,
            phases,
            physical,
            antenna_name=records[0].antenna,
            segment_ids=segment_ids,
            exclude_mask=exclude,
        )
    except ValueError as error:
        _logger.error("calibration failed: %s", error)
        return 1
    print(f"antenna: {calibration.antenna_name}")
    print(f"estimated phase center: {np.round(calibration.estimated_center, 4).tolist()}")
    print(f"center displacement  : {np.round(calibration.center_displacement, 4).tolist()}")
    print(f"displacement size    : {calibration.displacement_magnitude_m * 100:.2f} cm")
    print(f"phase offset (Eq. 17): {calibration.phase_offset_rad:.3f} rad")
    print(
        f"adaptive sweep: {len(adaptive.outcomes)} configurations, "
        f"{len(adaptive.selected)} selected"
    )
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for figure_id in sorted(FIGURE_RUNNERS):
            print(figure_id)
        return 0
    if args.command == "run":
        return _command_run(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "locate":
        return _command_locate(args)
    if args.command == "estimators":
        return _command_estimators()
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "serve-bench":
        return _command_serve_bench(args)
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "calib":
        return _command_calib(args)
    if args.command == "calibrate":
        return _command_calibrate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _flush_observability(args: argparse.Namespace, argv: Sequence[str] | None) -> None:
    """Print the trace tree and/or write the metrics JSON, then reset state.

    Runs even when the command failed, so a crashing run still leaves its
    metrics behind. Enable flags and recorded data are cleared afterwards
    so repeated in-process invocations (tests, notebooks) start clean.
    """
    from repro import obs

    try:
        if args.trace:
            print()
            print("== trace ==")
            print(obs.render_trace())
        if args.metrics_out:
            import json
            from pathlib import Path

            manifest = obs.collect_manifest(
                seed=getattr(args, "seed", None),
                jobs=args.jobs,
                argv=list(argv) if argv is not None else None,
            )
            payload = {
                "manifest": manifest.to_dict(),
                "metrics": obs.get_registry().snapshot(),
            }
            Path(args.metrics_out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote metrics to {args.metrics_out}")
    finally:
        if args.trace:
            obs.disable_tracing()
            obs.reset_tracing()
        if args.metrics_out:
            obs.disable_metrics()
            obs.get_registry().reset()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        configure_logging(args.log_level or "WARNING")
    except ValueError as error:
        configure_logging("WARNING")
        _logger.error("%s", error)
        return 2
    if args.jobs is not None:
        if args.jobs <= 0:
            _logger.error("--jobs must be positive, got %d", args.jobs)
            return 2
        from repro.parallel import set_default_jobs

        set_default_jobs(args.jobs)
    observing = args.trace or args.metrics_out
    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing()
    if args.metrics_out:
        from repro.obs import enable_metrics

        enable_metrics()
    try:
        return _dispatch(args)
    finally:
        if observing:
            _flush_observability(args, argv)


if __name__ == "__main__":
    raise SystemExit(main())
