"""Graph diagnostics for pair selections (observability analysis).

A pair selection induces a graph over reads: vertices are reads, edges
are pairs. The structure of that graph determines what the radical system
can know *before* any numerics run:

* reads in different **connected components** never share an equation, so
  their phase information combines only through the shared target — the
  multi-reference situation (:mod:`repro.core.multiref`);
* an axis is **excited** only if some edge has displacement along it
  (Sec. IV-B1's "diversity of displacement" principle made checkable);
* **bridges** mark fragile pairings: one corrupted read on a bridge cuts
  a whole region's contribution, where a well-meshed (high edge
  connectivity) pairing degrades gracefully.

Built on :mod:`networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx
import numpy as np

Pair = Tuple[int, int]


@dataclass(frozen=True)
class PairingDiagnostics:
    """Structural analysis of a pair selection.

    Attributes:
        read_count / pair_count: sizes.
        component_count: connected components among reads that appear in
            at least one pair (isolated unused reads are not counted).
        unused_reads: reads appearing in no pair.
        axis_excitation: RMS pair displacement per axis; near-zero means
            the axis is unobservable from this pairing.
        bridge_count: number of bridge edges (single points of failure).
        edge_connectivity: minimum edges whose removal disconnects the
            pairing graph (0 when already disconnected).
    """

    read_count: int
    pair_count: int
    component_count: int
    unused_reads: Tuple[int, ...]
    axis_excitation: np.ndarray
    bridge_count: int
    edge_connectivity: int

    @property
    def is_single_component(self) -> bool:
        """Whether all paired reads share one phase datum requirement."""
        return self.component_count == 1

    def observable_axes(self, threshold: float = 1e-9) -> np.ndarray:
        """Boolean mask of axes the pairing excites."""
        return self.axis_excitation > threshold


def analyze_pairing(
    positions: np.ndarray,
    pairs: Sequence[Pair],
) -> PairingDiagnostics:
    """Analyze a pair selection's graph structure.

    Args:
        positions: read positions, shape ``(n, dim)``.
        pairs: the selected pairs.

    Raises:
        ValueError: on an empty pair list or out-of-range indices.
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"positions must be a matrix, got shape {points.shape}")
    n = points.shape[0]
    if len(pairs) == 0:
        raise ValueError("no pairs to analyze")
    index = np.asarray(pairs, dtype=int)
    if index.min() < 0 or index.max() >= n:
        raise ValueError("pair index out of range")

    graph = nx.Graph()
    graph.add_edges_from((int(i), int(j)) for i, j in index)

    displacement = points[index[:, 1]] - points[index[:, 0]]
    excitation = np.sqrt(np.mean(displacement**2, axis=0))

    used = set(graph.nodes)
    unused = tuple(sorted(set(range(n)) - used))
    components = nx.number_connected_components(graph)
    bridges = sum(1 for _ in nx.bridges(graph))
    connectivity = (
        nx.edge_connectivity(graph) if components == 1 and graph.number_of_nodes() > 1 else 0
    )
    return PairingDiagnostics(
        read_count=n,
        pair_count=len(pairs),
        component_count=components,
        unused_reads=unused,
        axis_excitation=excitation,
        bridge_count=bridges,
        edge_connectivity=connectivity,
    )


def component_runs(
    read_count: int, pairs: Sequence[Pair]
) -> List[np.ndarray]:
    """Group reads into connected components of the pairing graph.

    Useful to derive the ``run_ids`` for
    :func:`repro.core.multiref.locate_multireference` when a pairing has
    naturally split the reads.

    Raises:
        ValueError: on an empty pair list or out-of-range indices.
    """
    if len(pairs) == 0:
        raise ValueError("no pairs to analyze")
    index = np.asarray(pairs, dtype=int)
    if index.min() < 0 or index.max() >= read_count:
        raise ValueError("pair index out of range")
    graph = nx.Graph()
    graph.add_nodes_from(range(read_count))
    graph.add_edges_from((int(i), int(j)) for i, j in index)
    return [
        np.array(sorted(component), dtype=int)
        for component in nx.connected_components(graph)
    ]
