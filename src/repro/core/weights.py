"""Equation weights for the robust solve (paper Eq. 15).

The paper weights each radical equation by a Gaussian of its residual::

    w_i = exp(-(r_i - mu)^2 / (2 sigma^2))

with ``mu`` and ``sigma`` the mean and standard deviation of all residuals
from the previous solve. Equations distorted by multipath or ambient noise
produce outlying residuals and are down-weighted; clean equations dominate.
``uniform_weights`` and ``huber_weights`` exist for the weighting ablation.
"""

from __future__ import annotations

import math

import numpy as np


def gaussian_residual_weights(residuals: np.ndarray) -> np.ndarray:
    """The paper's Eq. (15) weights.

    Degenerate case: when all residuals coincide (e.g. noiseless data),
    sigma is zero and every weight is 1.

    This runs once per IRLS round per system — the hottest call of the
    adaptive sweep — so the moment statistics are spelled as raw ufunc
    reduces, which compute bit-for-bit what ``np.mean``/``np.std`` compute
    on 1-D float64 input while skipping several layers of dispatch.

    Raises:
        ValueError: on empty input.
    """
    r = np.asarray(residuals, dtype=float)
    if r.size == 0:
        raise ValueError("cannot weight an empty residual vector")
    mu = float(np.add.reduce(r) / r.size)
    centered = r - mu
    squared = centered * centered
    sigma = math.sqrt(np.add.reduce(squared) / r.size)
    # Guard against exact and floating-point-degenerate spreads: identical
    # residuals can yield a tiny nonzero std from rounding, which would
    # produce arbitrary sub-1 weights.
    scale = max(float(np.maximum.reduce(np.abs(r))), 1.0)
    if sigma <= 1e-12 * scale:
        return np.ones_like(r)
    return np.exp(-squared / (2.0 * sigma**2))


def uniform_weights(residuals: np.ndarray) -> np.ndarray:
    """All-ones weights — reduces WLS to ordinary least squares."""
    r = np.asarray(residuals, dtype=float)
    if r.size == 0:
        raise ValueError("cannot weight an empty residual vector")
    return np.ones_like(r)


def huber_weights(residuals: np.ndarray, delta_scale: float = 1.345) -> np.ndarray:
    """Huber IRLS weights: 1 inside ``delta``, ``delta/|r|`` outside.

    ``delta`` is ``delta_scale`` times the robust (MAD-based) residual
    scale, the classical 95%-efficiency tuning.

    Raises:
        ValueError: on empty input or non-positive ``delta_scale``.
    """
    r = np.asarray(residuals, dtype=float)
    if r.size == 0:
        raise ValueError("cannot weight an empty residual vector")
    if delta_scale <= 0.0:
        raise ValueError(f"delta_scale must be positive, got {delta_scale}")
    centered = r - np.median(r)
    mad = float(np.median(np.abs(centered)))
    scale = 1.4826 * mad
    if scale == 0.0:
        return np.ones_like(r)
    delta = delta_scale * scale
    magnitude = np.abs(centered)
    weights = np.ones_like(r)
    outside = magnitude > delta
    weights[outside] = delta / magnitude[outside]
    return weights
