"""Assembly of the linear system ``A [x y (z) d_r]^T = K`` (paper Eq. 12).

Also home of :func:`delta_distances`, the Eq. (6) conversion from an
unwrapped phase profile to per-read distance differences relative to a
chosen reference read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.radical import radical_rows


@dataclass(frozen=True)
class LinearSystem:
    """An assembled radical-equation system.

    Attributes:
        matrix: coefficient matrix ``A`` of shape ``(m, dim + 1)``; the
            last column multiplies the reference distance ``d_r``.
        rhs: right-hand side ``K`` of shape ``(m,)``.
        dim: spatial dimensionality, 2 or 3.
    """

    matrix: np.ndarray
    rhs: np.ndarray
    dim: int

    def __post_init__(self) -> None:
        if self.dim not in (2, 3):
            raise ValueError(f"dim must be 2 or 3, got {self.dim}")
        if self.matrix.ndim != 2 or self.matrix.shape[1] != self.dim + 1:
            raise ValueError(
                f"matrix must be (m, {self.dim + 1}), got {self.matrix.shape}"
            )
        if self.rhs.shape != (self.matrix.shape[0],):
            raise ValueError(
                f"rhs must have shape ({self.matrix.shape[0]},), got {self.rhs.shape}"
            )

    @property
    def equation_count(self) -> int:
        """Number of radical equations (rows)."""
        return int(self.matrix.shape[0])

    def column_excitation(self) -> np.ndarray:
        """RMS magnitude per unknown's column — a conditioning diagnostic.

        A near-zero entry means the pairing never displaced along that
        coordinate, i.e. the lower-dimension issue (Sec. III-C) applies.
        """
        return np.sqrt(np.mean(self.matrix**2, axis=0))

    def observable_coordinates(self, threshold: float = 1e-9) -> np.ndarray:
        """Boolean mask over the ``dim`` coordinates that the system excites."""
        return self.column_excitation()[: self.dim] > threshold


def delta_distances(
    unwrapped_phase_rad: np.ndarray,
    reference_index: int = 0,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> np.ndarray:
    """Distance differences relative to a reference read (paper Eq. 6).

    ``delta_d_t = lambda / (4 pi) * (theta_t - theta_r)`` — valid only on
    an *unwrapped, stitched* phase profile.

    Args:
        unwrapped_phase_rad: unwrapped phase per read, shape ``(n,)``.
        reference_index: which read is the reference position.
        wavelength_m: carrier wavelength.

    Raises:
        ValueError: on empty input, out-of-range reference index, or
            non-positive wavelength.
    """
    phases = np.asarray(unwrapped_phase_rad, dtype=float)
    if phases.ndim != 1 or phases.size == 0:
        raise ValueError("expected a non-empty 1-D unwrapped phase profile")
    if not 0 <= reference_index < phases.size:
        raise ValueError(
            f"reference index {reference_index} out of range [0, {phases.size})"
        )
    if wavelength_m <= 0.0:
        raise ValueError("wavelength must be positive")
    return (wavelength_m / (2.0 * TWO_PI)) * (phases - phases[reference_index])


def build_system(
    positions: np.ndarray,
    delta_d: np.ndarray,
    pairs: Sequence[Tuple[int, int]],
    dim: int | None = None,
) -> LinearSystem:
    """Build the radical-equation system from reads and a pair selection.

    Args:
        positions: tag positions, shape ``(n, 2)`` or ``(n, 3)``. A 3-column
            input with ``dim=2`` uses only the first two columns (the scan
            must then lie in a constant-z plane containing the target).
        delta_d: per-read distance differences from :func:`delta_distances`.
        pairs: index pairs, e.g. from :mod:`repro.core.pairing`.
        dim: target spatial dimension; inferred from ``positions`` when
            omitted.

    Raises:
        ValueError: on inconsistent shapes or an invalid ``dim``.
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if dim is None:
        dim = points.shape[1]
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    if dim == 2 and points.shape[1] == 3:
        points = points[:, :2]
    elif dim == 3 and points.shape[1] == 2:
        points = np.hstack([points, np.zeros((points.shape[0], 1))])
    matrix, rhs = radical_rows(points, np.asarray(delta_d, dtype=float), pairs)
    return LinearSystem(matrix=matrix, rhs=rhs, dim=dim)
