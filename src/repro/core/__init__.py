"""LION core: the linear localization model and phase calibration.

Pipeline (paper Sec. IV):

1. preprocess reported phase (:mod:`repro.signalproc`) into an unwrapped,
   smoothed profile aligned with known tag positions;
2. convert phase differences to distance differences ``delta_d`` relative
   to a reference read (Eq. 6);
3. pick pairs of reads (:mod:`repro.core.pairing`) and emit one radical
   line/plane equation per pair (:mod:`repro.core.radical`), assembling
   the linear system ``A [x y (z) d_r]^T = K`` (:mod:`repro.core.system`);
4. solve by (iteratively re-weighted) least squares
   (:mod:`repro.core.solvers`, :mod:`repro.core.weights`);
5. if the trajectory is of lower dimension than the space, recover the
   unobserved coordinate from ``d_r`` (:mod:`repro.core.lowerdim`);
6. optionally sweep scanning range/interval and keep the estimates whose
   mean residual is nearest zero (:mod:`repro.core.adaptive`);
7. derive the antenna's center displacement and phase offset
   (:mod:`repro.core.calibration`).

:class:`repro.core.localizer.LionLocalizer` wires steps 1-6 together behind
one call.
"""

from repro.core.radical import radical_row, radical_rows
from repro.core.pairing import (
    all_pairs,
    lag_pairs,
    random_pairs,
    spacing_pairs,
    three_line_pairs,
    cross_segment_pairs,
)
from repro.core.system import LinearSystem, build_system, delta_distances
from repro.core.weights import (
    gaussian_residual_weights,
    huber_weights,
    uniform_weights,
)
from repro.core.solvers import (
    Solution,
    solve_least_squares,
    solve_weighted_least_squares,
    solve_weighted_least_squares_batch,
    solve_weighted_least_squares_masked_batch,
)
from repro.core.lowerdim import recover_coordinate_from_reference
from repro.core.adaptive import (
    AdaptiveResult,
    CellRejection,
    ParameterGrid,
    adaptive_localize,
)
from repro.core.localizer import (
    DegenerateGeometryError,
    LionLocalizer,
    LocalizationResult,
    PreparedScan,
    PreprocessConfig,
    TooFewReadsError,
)
from repro.core.sweep import clear_pair_cache, fused_sweep, pair_cache_info
from repro.core.batch_prepare import (
    PreparedMember,
    batch_prepare,
    clear_template_cache,
    prepare_batch,
    template_cache_info,
)
from repro.core.multiantenna import (
    CalibratedArray,
    DifferentialResult,
    differential_hologram,
    locate_tag_differential,
    locate_tag_with_array,
)
from repro.core.tracking import TrackingResult, track_tag_start
from repro.core.multiref import (
    MultiReferenceSolution,
    MultiReferenceSystem,
    build_multireference_system,
    locate_multireference,
    solve_multireference,
)
from repro.core.incremental import IncrementalScanAssembler, unwrap_correction
from repro.core.online import OnlineEstimate, OnlineLionLocalizer
from repro.core.pairgraph import PairingDiagnostics, analyze_pairing, component_runs
from repro.core.uncertainty import (
    SolutionUncertainty,
    estimate_uncertainty,
    uncertainty_of,
)
from repro.core.calibration import (
    AntennaCalibration,
    calibrate_antenna,
    estimate_phase_offset,
    relative_phase_offsets,
)

__all__ = [
    "radical_row",
    "radical_rows",
    "all_pairs",
    "lag_pairs",
    "random_pairs",
    "spacing_pairs",
    "three_line_pairs",
    "cross_segment_pairs",
    "LinearSystem",
    "build_system",
    "delta_distances",
    "gaussian_residual_weights",
    "huber_weights",
    "uniform_weights",
    "Solution",
    "solve_least_squares",
    "solve_weighted_least_squares",
    "solve_weighted_least_squares_batch",
    "solve_weighted_least_squares_masked_batch",
    "recover_coordinate_from_reference",
    "AdaptiveResult",
    "CellRejection",
    "ParameterGrid",
    "adaptive_localize",
    "DegenerateGeometryError",
    "LionLocalizer",
    "LocalizationResult",
    "PreparedScan",
    "PreprocessConfig",
    "TooFewReadsError",
    "clear_pair_cache",
    "fused_sweep",
    "pair_cache_info",
    "PreparedMember",
    "batch_prepare",
    "clear_template_cache",
    "prepare_batch",
    "template_cache_info",
    "CalibratedArray",
    "DifferentialResult",
    "differential_hologram",
    "locate_tag_differential",
    "locate_tag_with_array",
    "TrackingResult",
    "track_tag_start",
    "MultiReferenceSystem",
    "MultiReferenceSolution",
    "build_multireference_system",
    "solve_multireference",
    "locate_multireference",
    "OnlineLionLocalizer",
    "IncrementalScanAssembler",
    "unwrap_correction",
    "OnlineEstimate",
    "PairingDiagnostics",
    "analyze_pairing",
    "component_runs",
    "SolutionUncertainty",
    "estimate_uncertainty",
    "uncertainty_of",
    "AntennaCalibration",
    "calibrate_antenna",
    "estimate_phase_offset",
    "relative_phase_offsets",
]
