"""Fused adaptive-sweep engine: shared prep, cached pairing, one batch solve.

The adaptive parameter selection of Sec. IV-C1 solves a 6x6
(range, interval) grid per localization; the legacy path ran each cell
through a full scalar :meth:`LionLocalizer.locate` — per-cell masking,
per-cell pairing, per-cell scalar IRLS. The cells are far from
independent, though:

* every cell of one grid *row* shares the same range-window mask, so
  masking / reference selection / degeneracy handling / Eq. (6) collapse
  to one :meth:`LionLocalizer._prepare_scan` per distinct mask;
* pair selection — and the geometry half of the radical rows (Eq. 7):
  the spatial coefficients ``2 (p_i - p_j)`` and the position term of the
  right-hand side — depend only on the masked geometry and the interval,
  never on the phases, so each distinct ``(mask, interval)`` assembly
  recipe is built exactly once and *cached across calls* (Monte-Carlo
  trials re-use one trajectory with fresh phase noise, hitting the cache
  every sweep after the first); per trial only the phase-dependent
  ``d_r`` column and right-hand side are computed;
* the per-cell IRLS solves collapse into one padded
  ``(cells, max_rows, dim + 2)`` assembly tensor handed to the masked
  batch kernel (:func:`repro.core.solvers.solve_weighted_least_squares_masked_batch`),
  whose solutions are bit-identical to the scalar solver.

:func:`fused_sweep` therefore returns exactly the per-cell results (and
per-cell ``ValueError`` rejections) the legacy per-cell dispatch would
produce, only faster; ``tests/test_adaptive_fused.py`` pins the
equivalence bitwise.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.localizer import LionLocalizer, LocalizationResult, PreparedScan
from repro.core.solvers import (
    solve_least_squares,
    solve_weighted_least_squares_masked_batch,
)
from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import get_registry, metrics_enabled

Pair = Tuple[int, int]

#: One grid cell: ``(range_m, interval_m, row)`` where ``row`` indexes the
#: stacked exclusion-mask matrix (one row per distinct range window).
Cell = Tuple[float, float, int]

#: Per-cell outcome: the localization, or the ``ValueError`` that cell
#: would have raised on the scalar path (callers classify it).
CellResult = Union[LocalizationResult, ValueError]

# ---------------------------------------------------------------------------
# cross-call pairing / assembly-recipe cache
# ---------------------------------------------------------------------------


class _AssemblyRecipe:
    """The phase-independent half of one cell's radical system.

    Caches the pair selection and the geometry terms of
    :func:`repro.core.radical.radical_rows` — the spatial coefficients
    ``2 (p_i - p_j)``, the position part ``|p_i|^2 - |p_j|^2`` of the
    right-hand side, and the pair index columns. :meth:`assemble` then
    completes the system from one trial's ``delta_d`` with exactly the
    operations (and operation order) ``build_system`` would run, so the
    assembled system is bit-identical to an uncached build.
    """

    __slots__ = (
        "pairs",
        "index_i",
        "index_j",
        "spatial",
        "squared",
        "dim",
        "_spatial32",
        "_squared32",
    )

    def __init__(
        self,
        pairs: Tuple[Pair, ...],
        points: np.ndarray,
        dim: int,
    ):
        # Mirror build_system's dimension promotion before any geometry.
        points = np.asarray(points, dtype=float)
        if dim == 2 and points.shape[1] == 3:
            points = points[:, :2]
        elif dim == 3 and points.shape[1] == 2:
            points = np.hstack([points, np.zeros((points.shape[0], 1))])
        # Mirror radical_rows' validation; everything here is
        # phase-independent, so a failure is deterministic per cache key
        # and re-raised on every call exactly like the uncached path.
        if len(pairs) == 0:
            raise ValueError("need at least one pair of reads")
        index = np.asarray(pairs, dtype=int)
        if index.min() < 0 or index.max() >= points.shape[0]:
            raise ValueError("pair index out of range")
        pi = points[index[:, 0]]
        pj = points[index[:, 1]]
        if np.any(np.all(np.isclose(pi, pj), axis=1)):
            raise ValueError(
                "radical equation undefined for coincident tag positions"
            )
        self.pairs = pairs
        self.index_i = np.ascontiguousarray(index[:, 0])
        self.index_j = np.ascontiguousarray(index[:, 1])
        self.spatial = 2.0 * (pi - pj)
        self.squared = np.einsum("ij,ij->i", pi, pi) - np.einsum(
            "ij,ij->i", pj, pj
        )
        self.dim = dim
        self._spatial32: np.ndarray | None = None
        self._squared32: np.ndarray | None = None

    def assemble(self, delta_d: np.ndarray) -> LinearSystem:
        """Complete the system from one trial's distance differences."""
        di = delta_d[self.index_i]
        dj = delta_d[self.index_j]
        matrix = np.empty((self.spatial.shape[0], self.dim + 1))
        matrix[:, : self.dim] = self.spatial
        matrix[:, self.dim] = 2.0 * (di - dj)
        rhs = self.squared - di**2 + dj**2
        return LinearSystem(matrix=matrix, rhs=rhs, dim=self.dim)

    def geometry32(self) -> tuple[np.ndarray, np.ndarray]:
        """Float32 casts of the geometry terms, computed once per recipe.

        The serving engine's float32 pipeline assembles padded system
        stacks directly from these; recipes are cached cross-call, so the
        cast amortizes to zero over repeat-trajectory traffic. The lazy
        fill is idempotent, so a racing double-compute is harmless.
        """
        if self._spatial32 is None or self._squared32 is None:
            self._spatial32 = self.spatial.astype(np.float32)
            self._squared32 = self.squared.astype(np.float32)
        return self._spatial32, self._squared32


_PAIR_CACHE: "OrderedDict[tuple, _AssemblyRecipe]" = OrderedDict()
_PAIR_CACHE_LOCK = threading.Lock()
_PAIR_CACHE_MAX = 1024
_pair_cache_hits = 0
_pair_cache_misses = 0


def pair_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the cross-call pairing cache."""
    with _PAIR_CACHE_LOCK:
        return {
            "hits": _pair_cache_hits,
            "misses": _pair_cache_misses,
            "size": len(_PAIR_CACHE),
            "max_size": _PAIR_CACHE_MAX,
        }


def clear_pair_cache() -> None:
    """Empty the pairing cache and reset its counters (tests, benchmarks)."""
    global _pair_cache_hits, _pair_cache_misses
    with _PAIR_CACHE_LOCK:
        _PAIR_CACHE.clear()
        _pair_cache_hits = 0
        _pair_cache_misses = 0


def _digest(array: np.ndarray) -> bytes:
    """Content digest of an array (shape + dtype + bytes)."""
    data = np.ascontiguousarray(array)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(repr((data.shape, data.dtype.str)).encode())
    hasher.update(data.tobytes())
    return hasher.digest()


def content_digest(array: np.ndarray | None) -> bytes:
    """Content digest of an array for cross-call cache keys.

    ``None`` digests to ``b""`` so optional inputs (segments, masks) can be
    keyed uniformly. Shared by the fused adaptive sweep and the serving
    engine (:mod:`repro.serve`), which both key geometry-only caches on
    scan content rather than object identity.
    """
    return _digest(array) if array is not None else b""


def cached_assembly_recipe(
    localizer: LionLocalizer,
    prepared: PreparedScan,
    interval_m: float,
    scan_key: Tuple[bytes, bytes],
    mask_key: bytes,
) -> "_AssemblyRecipe":
    """Public entry to the cross-call pairing/assembly cache.

    Used by :mod:`repro.serve` to share pair selection and the
    phase-independent radical-row geometry across concurrent requests that
    observe the same trajectory — the dominant serving pattern, where many
    devices re-read one deployment geometry with fresh phases. The returned
    recipe's :meth:`_AssemblyRecipe.assemble` completes a
    :class:`~repro.core.system.LinearSystem` bit-identical to
    ``build_system`` from one request's ``delta_d``.
    """
    return _cached_recipe(localizer, prepared, interval_m, scan_key, mask_key)


def _cached_recipe(
    localizer: LionLocalizer,
    prepared: PreparedScan,
    interval_m: float,
    scan_key: Tuple[bytes, bytes],
    mask_key: bytes,
) -> _AssemblyRecipe:
    """Pairing + assembly recipe memoized on ``(scan, mask, dim, interval)``.

    Pair selection and the radical-row geometry read only the masked
    positions (and segment structure) — not the phases — so the key needs
    no profile digest and the cache carries across Monte-Carlo trials
    that re-noise one trajectory. Failures (``ValueError``) are not
    cached; they propagate per call like the scalar path.
    """
    global _pair_cache_hits, _pair_cache_misses
    key = (scan_key, mask_key, localizer.dim, float(interval_m))
    with _PAIR_CACHE_LOCK:
        cached = _PAIR_CACHE.get(key)
        if cached is not None:
            _PAIR_CACHE.move_to_end(key)
            _pair_cache_hits += 1
    if cached is not None:
        if metrics_enabled():
            get_registry().counter("adaptive.pair_cache_total", result="hit").inc()
        return cached
    pairs = tuple(
        localizer._auto_pairs(prepared.solve_points, prepared.used_segments, interval_m)
    )
    recipe = _AssemblyRecipe(pairs, prepared.solve_points, localizer.dim)
    with _PAIR_CACHE_LOCK:
        _pair_cache_misses += 1
        _PAIR_CACHE[key] = recipe
        while len(_PAIR_CACHE) > _PAIR_CACHE_MAX:
            _PAIR_CACHE.popitem(last=False)
    if metrics_enabled():
        get_registry().counter("adaptive.pair_cache_total", result="miss").inc()
    return recipe


# ---------------------------------------------------------------------------
# the fused sweep
# ---------------------------------------------------------------------------


def fused_sweep(
    localizer: LionLocalizer,
    points: np.ndarray,
    profile: np.ndarray,
    segments: np.ndarray | None,
    excludes: np.ndarray,
    cells: Sequence[Cell],
) -> List[CellResult]:
    """Solve every grid cell of one adaptive sweep as a fused batch.

    Args:
        localizer: the configured :class:`LionLocalizer`.
        points: full scan positions, shape ``(n, 2)`` or ``(n, 3)``.
        profile: the *preprocessed* phase profile, shape ``(n,)``.
        segments: per-read segment ids, or ``None``.
        excludes: stacked per-range exclusion masks, shape
            ``(ranges, n)`` — row ``cells[i][2]`` is cell ``i``'s mask.
        cells: the grid cells to solve, in sweep order.

    Returns:
        Per-cell results aligned with ``cells``: a
        :class:`LocalizationResult`, or the ``ValueError`` the scalar
        per-cell path would have raised (bit-identical either way).
    """
    results: List[CellResult | None] = [None] * len(cells)
    scan_key = (_digest(points), _digest(segments) if segments is not None else b"")

    # Stage 1 — one preparation per distinct range window. Every value a
    # prepared scan holds depends only on (points, profile, mask, config),
    # so cells sharing a mask share the prepared object bit for bit.
    prepared_rows: Dict[int, PreparedScan | ValueError] = {}
    mask_keys: Dict[int, bytes] = {}
    for row in sorted({cell[2] for cell in cells}):
        try:
            prepared_rows[row] = localizer._prepare_scan(
                points, profile, segments, excludes[row], None
            )
            mask_keys[row] = _digest(excludes[row])
        except ValueError as error:
            prepared_rows[row] = error

    # Stage 2 — cached pairing/geometry recipe, phase-dependent assembly.
    pending: List[Tuple[int, PreparedScan, LinearSystem]] = []
    for index, (range_m, interval_m, row) in enumerate(cells):
        prepared = prepared_rows[row]
        if isinstance(prepared, ValueError):
            results[index] = prepared
            continue
        try:
            recipe = _cached_recipe(
                localizer, prepared, interval_m, scan_key, mask_keys[row]
            )
            system = recipe.assemble(prepared.delta_d)
        except ValueError as error:
            results[index] = error
            continue
        pending.append((index, prepared, system))

    # Stage 3 — one masked batch solve over the padded assembly tensor
    # (columns [:dim+1] hold each cell's coefficient matrix, the last
    # column its rhs), then the shared finalize path per cell.
    if pending:
        if localizer.method == "wls":
            counts = np.array([system.equation_count for _, _, system in pending])
            max_rows = int(counts.max())
            columns = localizer.dim + 1
            assembly = np.zeros((len(pending), max_rows, columns + 1))
            valid = np.arange(max_rows)[np.newaxis, :] < counts[:, np.newaxis]
            for slot, (_, _, system) in enumerate(pending):
                assembly[slot, : counts[slot], :columns] = system.matrix
                assembly[slot, : counts[slot], -1] = system.rhs
            solutions = solve_weighted_least_squares_masked_batch(
                assembly[:, :, :columns],
                assembly[:, :, -1],
                valid,
                weight_function=gaussian_residual_weights,
                max_iterations=localizer.max_iterations,
                tolerance_m=localizer.tolerance_m,
            )
        else:
            solutions = [solve_least_squares(system) for _, _, system in pending]
        for (index, prepared, system), solution in zip(pending, solutions):
            try:
                results[index] = localizer._finalize_solution(
                    prepared, system, solution
                )
            except ValueError as error:
                results[index] = error
    return results  # type: ignore[return-value]
