"""Append-aware incremental scan assembly for streaming sessions.

:meth:`LionLocalizer.prepare` is a batch operation: it unwraps the whole
phase profile, smooths it, and reduces the scan to its solve-ready
pieces. A streaming session (:mod:`repro.stream`) sees the same scan one
read at a time through a bounded sliding window, and re-solving the
window from scratch on every read would redo the unwrap O(w) times.

:class:`IncrementalScanAssembler` is the front half of ``prepare()``
restructured around appends:

* **Unwrap continuation** — ``np.unwrap``'s phase correction for read
  ``i`` depends only on the consecutive pair ``(phase[i-1], phase[i])``,
  so each correction is computed exactly once at append time (replicating
  numpy's arithmetic bit-for-bit) and kept alongside the read. A window
  re-solve reconstructs the unwrapped profile as
  ``phase[i] + cumsum(corrections)`` — the same values, the same
  accumulation order, and therefore the same bits ``np.unwrap`` would
  produce on the window's raw phases.
* **Window slides for free** — corrections are per-read, so evicting the
  oldest read invalidates nothing; the window's profile is always
  reconstructable in O(w) without touching evicted history.
* **Pairing-recipe reuse** — :meth:`resolve` routes pair selection and
  the phase-independent radical-row geometry through the cross-call
  cache of :mod:`repro.core.sweep` (:func:`cached_assembly_recipe`), so
  repeated re-solves of one window (settled tags, replay comparisons,
  Monte-Carlo re-noising) amortize pairing to a dict lookup.

The result: :meth:`resolve` on a window is **bit-identical** to
:meth:`LionLocalizer.locate` on the same window's raw reads —
``tests/test_core_incremental.py`` pins this property, and the streaming
bench asserts it end-to-end.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.core.localizer import (
    LionLocalizer,
    LocalizationResult,
    PreparedScan,
    TooFewReadsError,
)
from repro.core.solvers import solve_least_squares, solve_weighted_least_squares
from repro.core.sweep import cached_assembly_recipe, content_digest
from repro.core.weights import gaussian_residual_weights

_TWO_PI = 2.0 * np.pi


def unwrap_correction(
    previous_phase_rad: float, phase_rad: float, jump_threshold_rad: float
) -> float:
    """The ``np.unwrap`` phase correction for one consecutive read pair.

    Replicates numpy's arithmetic exactly (same float64 operations in the
    same order), so accumulating these per-pair corrections reproduces
    ``np.unwrap`` over any contiguous read range bit-for-bit:
    ``unwrapped[i] == phase[i] + sum(corrections[1..i])`` with the sum
    taken left to right (``np.cumsum``).
    """
    dd = np.float64(phase_rad) - np.float64(previous_phase_rad)
    ddmod = np.mod(dd + np.pi, _TWO_PI) - np.pi
    if ddmod == -np.pi and dd > 0:
        ddmod = np.float64(np.pi)
    correction = ddmod - dd
    if np.abs(dd) < jump_threshold_rad:
        correction = np.float64(0.0)
    return float(correction)


class IncrementalScanAssembler:
    """Bounded sliding window of reads with O(1) appends and batch-identical re-solves.

    Args:
        localizer: the configured batch localizer whose preprocessing and
            solve settings the window mirrors.
        max_reads: window bound; appending past it evicts the oldest read.

    Raises:
        ValueError: on a non-positive window bound.
    """

    def __init__(self, localizer: LionLocalizer, max_reads: int = 512) -> None:
        if max_reads < 3:
            raise ValueError("window must hold at least three reads")
        self.localizer = localizer
        self.max_reads = int(max_reads)
        self._timestamps: Deque[float] = deque(maxlen=self.max_reads)
        self._positions: Deque[np.ndarray] = deque(maxlen=self.max_reads)
        self._phases: Deque[float] = deque(maxlen=self.max_reads)
        self._corrections: Deque[float] = deque(maxlen=self.max_reads)
        self._segments: Deque[int] = deque(maxlen=self.max_reads)
        self._has_segments = False
        self._appended = 0

    # ------------------------------------------------------------------
    def append(
        self,
        position: "np.ndarray | tuple[float, ...] | list[float]",
        wrapped_phase_rad: float,
        timestamp_s: float = 0.0,
        segment_id: int = 0,
    ) -> None:
        """Ingest one read; O(1), evicting the oldest past ``max_reads``.

        Reads must arrive in scan order (the unwrap-continuation
        condition, exactly as for the batch path's continuous profile).

        Raises:
            ValueError: on a non-finite phase or position.
        """
        point = np.asarray(position, dtype=float)
        if point.ndim != 1 or point.shape[0] not in (2, 3):
            raise ValueError(f"position must be a 2- or 3-vector, got {point.shape}")
        if not np.all(np.isfinite(point)):
            raise ValueError("position contains non-finite values")
        phase = float(wrapped_phase_rad)
        if not np.isfinite(phase):
            raise ValueError("phase is non-finite; filter failed reads upstream")

        if self._phases:
            correction = unwrap_correction(
                self._phases[-1], phase, self.localizer.preprocess.jump_threshold_rad
            )
        else:
            correction = 0.0
        if segment_id != 0:
            self._has_segments = True
        self._timestamps.append(float(timestamp_s))
        self._positions.append(point.copy())
        self._phases.append(phase)
        self._corrections.append(correction)
        self._segments.append(int(segment_id))
        self._appended += 1

    def __len__(self) -> int:
        return len(self._phases)

    @property
    def appended(self) -> int:
        """Total reads ever appended (including evicted ones)."""
        return self._appended

    @property
    def latest_timestamp_s(self) -> float:
        """Timestamp of the newest read in the window (0.0 when empty)."""
        return self._timestamps[-1] if self._timestamps else 0.0

    # ------------------------------------------------------------------
    def window_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The window as ``(timestamps, positions, wrapped_phases)`` arrays.

        These are the raw reads — feed them to a one-shot
        :meth:`LionLocalizer.locate` (or an :class:`EstimationRequest`)
        to reproduce exactly what :meth:`resolve` solves.
        """
        timestamps = np.array(self._timestamps, dtype=float)
        positions = (
            np.array(self._positions, dtype=float)
            if self._positions
            else np.empty((0, 2))
        )
        phases = np.array(self._phases, dtype=float)
        return timestamps, positions, phases

    def window_segments(self) -> np.ndarray | None:
        """Segment ids of the window, or ``None`` when single-segment."""
        if not self._has_segments:
            return None
        return np.array(self._segments, dtype=int)

    def window_profile(self) -> np.ndarray:
        """Preprocessed profile of the window, bit-identical to the batch path.

        Reconstructs the unwrap from the per-read corrections (same
        values and accumulation order as ``np.unwrap`` on the window's
        raw phases) and applies the localizer's per-segment smoothing.
        """
        phases = np.array(self._phases, dtype=float)
        if phases.size == 0:
            return phases
        corrections = np.array(self._corrections, dtype=float)
        profile = phases.copy()
        if phases.size > 1:
            profile[1:] = phases[1:] + np.cumsum(corrections[1:])
        return self.localizer.smooth_profile(profile, self.window_segments())

    # ------------------------------------------------------------------
    def prepare(self, reference_index: int | None = None) -> PreparedScan:
        """Reduce the current window to its solve-ready pieces.

        Equivalent to :meth:`LionLocalizer.prepare` on the window's raw
        reads, with the unwrap taken from the incremental continuation.

        Raises:
            TooFewReadsError: with fewer than three reads in the window.
            DegenerateGeometryError / ValueError: as on the batch path.
        """
        if len(self._phases) < 3:
            raise TooFewReadsError("need at least three reads to localize")
        positions = np.array(self._positions, dtype=float)
        profile = self.window_profile()
        return self.localizer._prepare_scan(
            positions, profile, self.window_segments(), None, reference_index
        )

    def resolve(self, interval_m: float | None = None) -> LocalizationResult:
        """Windowed re-solve, bit-identical to ``locate`` on the same window.

        Pairs and phase-independent radical-row geometry go through the
        cross-call recipe cache (:func:`cached_assembly_recipe`) keyed on
        window content, exactly like the serving engine's fused batch
        path; the (W)LS solve and lower-dimension recovery mirror
        :meth:`LionLocalizer._solve_prepared`.
        """
        prepared = self.prepare()
        positions = np.array(self._positions, dtype=float)
        scan_key = (content_digest(positions), content_digest(self.window_segments()))
        recipe = cached_assembly_recipe(
            self.localizer,
            prepared,
            interval_m or self.localizer.interval_m,
            scan_key,
            content_digest(None),
        )
        system = recipe.assemble(prepared.delta_d)
        if self.localizer.method == "wls":
            solution = solve_weighted_least_squares(
                system,
                weight_function=gaussian_residual_weights,
                max_iterations=self.localizer.max_iterations,
                tolerance_m=self.localizer.tolerance_m,
            )
        else:
            solution = solve_least_squares(system)
        return self.localizer._finalize_solution(prepared, system, solution)

    def reset(self) -> None:
        """Drop the whole window (new target / new session)."""
        self._timestamps.clear()
        self._positions.clear()
        self._phases.clear()
        self._corrections.clear()
        self._segments.clear()
        self._has_segments = False
        self._appended = 0
