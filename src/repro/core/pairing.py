"""Pair-selection strategies for building radical equations.

The quality of the linear system depends on which read pairs become rows.
Sec. IV-B1's principle: *guarantee the diversity of displacement along
different axes* — every unknown coordinate needs pairs whose displacement
excites it. The strategies here range from the paper's structured
three-line pairing to generic lag/spacing pairs for arbitrary trajectories
(the random and all-pairs variants exist for the pairing ablation).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

Pair = Tuple[int, int]


def lag_pairs(count: int, lag: int) -> List[Pair]:
    """Pairs ``(i, i + lag)`` for every valid ``i``.

    Suits any single continuous trajectory: with constant speed and read
    rate, a fixed index lag is a fixed scanning interval.

    Raises:
        ValueError: if ``lag`` is not positive or no pair fits.
    """
    if lag <= 0:
        raise ValueError(f"lag must be positive, got {lag}")
    if count - lag < 1:
        raise ValueError(f"no pairs: {count} reads with lag {lag}")
    return [(i, i + lag) for i in range(count - lag)]


def spacing_pairs(
    positions: np.ndarray, spacing_m: float, tolerance_m: float | None = None
) -> List[Pair]:
    """Pairs of reads separated by ``spacing_m`` meters of tag displacement.

    Works on any trajectory shape, including circles where index lag and
    chord length are not proportional. For each read ``i``, the first later
    read whose Euclidean displacement from ``i`` reaches ``spacing_m``
    (within ``tolerance_m``) is paired with it.

    Args:
        positions: tag positions, shape ``(n, dim)``.
        spacing_m: desired pair displacement, meters.
        tolerance_m: acceptable overshoot; defaults to half the median
            inter-sample step.

    Raises:
        ValueError: on non-positive spacing or when no pair qualifies.
    """
    points = np.asarray(positions, dtype=float)
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m}")
    n = points.shape[0]
    if n < 2:
        raise ValueError("need at least two reads")
    if tolerance_m is None:
        steps = np.linalg.norm(np.diff(points, axis=0), axis=1)
        positive = steps[steps > 0.0]
        tolerance_m = float(np.median(positive)) if positive.size else spacing_m * 0.1
    # This two-pointer scan is the adaptive sweep's hottest loop; plain
    # float arithmetic on Python rows avoids ~n tiny-array round trips
    # through np.linalg.norm (squaring, summing, and sqrt are all single
    # correctly-rounded IEEE ops, so the accepted pairs are unchanged).
    coords = points.tolist()
    dim = points.shape[1]
    limit = spacing_m + tolerance_m + 1e-12
    pairs: List[Pair] = []
    j = 0
    for i in range(n):
        first = coords[i]
        if j < i + 1:
            j = i + 1
        displacement = 0.0
        while j < n:
            row = coords[j]
            if dim == 2:
                dx = row[0] - first[0]
                dy = row[1] - first[1]
                squared = dx * dx + dy * dy
            elif dim == 3:
                dx = row[0] - first[0]
                dy = row[1] - first[1]
                dz = row[2] - first[2]
                squared = dx * dx + dy * dy + dz * dz
            else:
                squared = sum((a - b) * (a - b) for a, b in zip(row, first))
            displacement = math.sqrt(squared)
            if displacement >= spacing_m:
                break
            j += 1
        if j >= n:
            break
        if displacement <= limit:
            pairs.append((i, j))
    if not pairs:
        raise ValueError(
            f"no read pairs with spacing {spacing_m} m (trajectory too short?)"
        )
    return pairs


def all_pairs(count: int, max_pairs: int | None = None) -> List[Pair]:
    """Every ``(i, j)`` with ``i < j``; optionally deterministically thinned.

    Quadratic in ``count`` — intended for ablations, not production use.

    Raises:
        ValueError: if fewer than two reads are given.
    """
    if count < 2:
        raise ValueError("need at least two reads")
    pairs = [(i, j) for i in range(count) for j in range(i + 1, count)]
    if max_pairs is not None and len(pairs) > max_pairs:
        stride = len(pairs) / max_pairs
        pairs = [pairs[int(k * stride)] for k in range(max_pairs)]
    return pairs


def random_pairs(count: int, pair_count: int, rng: np.random.Generator) -> List[Pair]:
    """``pair_count`` distinct random pairs (ablation baseline).

    Raises:
        ValueError: if fewer than two reads or ``pair_count`` exceeds the
            number of distinct pairs.
    """
    if count < 2:
        raise ValueError("need at least two reads")
    total = count * (count - 1) // 2
    if not 0 < pair_count <= total:
        raise ValueError(f"pair_count must be in [1, {total}], got {pair_count}")
    chosen = rng.choice(total, size=pair_count, replace=False)
    pairs: List[Pair] = []
    for flat in np.sort(chosen):
        # Invert the triangular flattening (i, j) -> flat index.
        i = int(count - 2 - np.floor((np.sqrt(4 * count * (count - 1) - 8 * flat - 7) - 1) / 2))
        j = int(flat + i + 1 - count * (count - 1) // 2 + (count - i) * (count - i - 1) // 2)
        pairs.append((i, j))
    return pairs


def cross_segment_pairs(
    positions: np.ndarray,
    segment_ids: np.ndarray,
    segment_a: int,
    segment_b: int,
    match_axis: int = 0,
    max_mismatch_m: float = 0.01,
) -> List[Pair]:
    """Pairs matching reads of one segment to same-``match_axis`` reads of another.

    Used by the three-line pairing: a read at ``x_i`` on line L1 is paired
    with the read nearest to ``x_i`` on L2 (or L3), so the pair's
    displacement is purely along the inter-line offset axis.

    Args:
        positions: all tag positions, shape ``(n, dim)``.
        segment_ids: per-read segment ids, shape ``(n,)``.
        segment_a: id of the reference segment (paper: L1).
        segment_b: id of the partner segment.
        match_axis: coordinate along which reads are matched (paper: x).
        max_mismatch_m: drop matches whose ``match_axis`` coordinates
            differ by more than this.

    Raises:
        ValueError: if either segment has no reads.
    """
    points = np.asarray(positions, dtype=float)
    segments = np.asarray(segment_ids, dtype=int)
    index_a = np.flatnonzero(segments == segment_a)
    index_b = np.flatnonzero(segments == segment_b)
    if index_a.size == 0 or index_b.size == 0:
        raise ValueError(
            f"segments {segment_a} and {segment_b} must both contain reads"
        )
    coords_b = points[index_b, match_axis]
    order = np.argsort(coords_b)
    sorted_b = coords_b[order]
    size = sorted_b.size
    # Vectorized nearest-neighbor match: each reference read considers the
    # two sorted partners bracketing its insertion slot; ties go to the
    # lower-coordinate partner, as the scalar scan did.
    targets = points[index_a, match_axis]
    slots = np.searchsorted(sorted_b, targets)
    lower = np.clip(slots - 1, 0, size - 1)
    upper = np.clip(slots, 0, size - 1)
    lower_mismatch = np.where(slots > 0, np.abs(sorted_b[lower] - targets), np.inf)
    upper_mismatch = np.where(slots < size, np.abs(sorted_b[upper] - targets), np.inf)
    use_upper = upper_mismatch < lower_mismatch
    mismatch = np.where(use_upper, upper_mismatch, lower_mismatch)
    nearest = np.where(use_upper, upper, lower)
    keep = mismatch <= max_mismatch_m
    return [
        (int(a), int(b))
        for a, b in zip(index_a[keep], index_b[order[nearest[keep]]])
    ]


def three_line_pairs(
    positions: np.ndarray,
    segment_ids: np.ndarray,
    interval_m: float,
    line_ids: Sequence[int] = (0, 1, 2),
    match_axis: int = 0,
) -> List[Pair]:
    """The structured pairing of Sec. IV-B1 for the Fig. 11 scan.

    Three families of pairs, one per unknown coordinate:

    * **x**: ``(P_i, P_{i+k})`` within the reference line L1, where the
      index lag ``k`` realises the scanning interval ``x_o = interval_m``;
    * **y**: ``(P_i on L1, same-x read on L3)``;
    * **z**: ``(P_i on L1, same-x read on L2)``.

    Args:
        positions: all tag positions, shape ``(n, 3)``.
        segment_ids: per-read segment ids.
        interval_m: scanning interval ``x_o`` for the within-line pairs.
        line_ids: segment ids of (L1, L2, L3) in that order.
        match_axis: sweep axis (0 = x).

    Returns:
        The concatenated pair list (x pairs, then y, then z).

    Raises:
        ValueError: if any line lacks reads or no x-pair fits the interval.
    """
    points = np.asarray(positions, dtype=float)
    segments = np.asarray(segment_ids, dtype=int)
    l1, l2, l3 = line_ids
    index_l1 = np.flatnonzero(segments == l1)
    if index_l1.size < 2:
        raise ValueError("reference line needs at least two reads")

    # Within-L1 pairs at the requested interval along the sweep axis.
    coords = points[index_l1, match_axis]
    order = np.argsort(coords)
    sorted_idx = index_l1[order]
    sorted_coords = coords[order]
    step = float(np.median(np.diff(sorted_coords)))
    if step <= 0.0:
        raise ValueError("reference line reads do not advance along the sweep axis")
    lag = max(int(round(interval_m / step)), 1)
    if sorted_idx.size - lag < 1:
        raise ValueError(
            f"interval {interval_m} m too large for sweep of "
            f"{sorted_coords[-1] - sorted_coords[0]:.3f} m"
        )
    pairs: List[Pair] = [
        (int(sorted_idx[i]), int(sorted_idx[i + lag]))
        for i in range(sorted_idx.size - lag)
    ]

    pairs += cross_segment_pairs(points, segments, l1, l3, match_axis)
    pairs += cross_segment_pairs(points, segments, l1, l2, match_axis)
    return pairs
