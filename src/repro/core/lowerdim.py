"""Lower-dimension recovery (paper Sec. III-C, Observation 2).

When the trajectory spans fewer dimensions than the space, the linear
system cannot observe the coordinate(s) orthogonal to the trajectory's
span — e.g. a tag sliding along the x-axis says nothing linear about the
antenna's y. But the solved reference distance ``d_r`` ties the unknowns
together: with the reference tag position ``p_r`` known and the observed
coordinates solved, the unobserved coordinate ``u`` satisfies::

    u = u_r +/- sqrt(d_r^2 - |observed displacement|^2)

Two candidates remain; deployment knowledge (the antenna is in front of /
above the track) picks the physical one. The paper notes a single linear
trajectory cannot fix a 3D position at all (the locus is a full circle
around the track) — :func:`recover_coordinate_from_reference` enforces
that by only filling in *one* missing coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a lower-dimension coordinate recovery.

    Attributes:
        position: completed position, shape ``(dim,)``.
        candidates: both sign candidates, shape ``(2, dim)`` (may coincide
            when the radicand is ~0).
        radicand: the value under the square root; a strongly negative
            radicand indicates an inconsistent ``d_r`` (noise), which is
            clipped to zero with ``position`` placed at the reference level.
    """

    position: np.ndarray
    candidates: np.ndarray
    radicand: float


def recover_coordinate_from_reference(
    partial_position: np.ndarray,
    missing_axis: int,
    reference_distance_m: float,
    reference_position: np.ndarray,
    positive_side: bool = True,
) -> RecoveryResult:
    """Fill in the one coordinate a degenerate trajectory cannot observe.

    Args:
        partial_position: the solved position with the missing axis set to
            any placeholder, shape ``(dim,)`` with dim 2 or 3.
        missing_axis: index of the unobserved coordinate.
        reference_distance_m: the solved ``d_r`` (distance from the target
            to the reference tag position).
        reference_position: the reference tag position, shape ``(dim,)``.
        positive_side: deployment prior — when True choose the candidate
            on the positive side of the reference along the missing axis
            (e.g. "the antenna is above the trajectory plane",
            Sec. IV-B3), else the negative side.

    Returns:
        A :class:`RecoveryResult`; ``position[missing_axis]`` equals
        ``ref +/- sqrt(radicand)`` with the radicand floored at 0.

    Raises:
        ValueError: on shape mismatch, a bad axis, or a negative ``d_r``.
    """
    position = np.asarray(partial_position, dtype=float).copy()
    reference = np.asarray(reference_position, dtype=float)
    if position.ndim != 1 or position.shape[0] not in (2, 3):
        raise ValueError(f"position must have shape (2,) or (3,), got {position.shape}")
    if reference.shape != position.shape:
        raise ValueError(
            f"reference must match position shape {position.shape}, got {reference.shape}"
        )
    if not 0 <= missing_axis < position.shape[0]:
        raise ValueError(f"missing_axis {missing_axis} out of range")
    if reference_distance_m < 0.0:
        raise ValueError(f"reference distance must be non-negative, got {reference_distance_m}")

    observed_axes = [i for i in range(position.shape[0]) if i != missing_axis]
    in_plane = position[observed_axes] - reference[observed_axes]
    radicand = float(reference_distance_m**2 - np.dot(in_plane, in_plane))
    offset = float(np.sqrt(max(radicand, 0.0)))

    high = position.copy()
    high[missing_axis] = reference[missing_axis] + offset
    low = position.copy()
    low[missing_axis] = reference[missing_axis] - offset
    chosen = high if positive_side else low
    return RecoveryResult(
        position=chosen,
        candidates=np.vstack([high, low]),
        radicand=radicand,
    )


def detect_missing_axis(
    positions: np.ndarray, span_threshold_m: float = 1e-6
) -> int | None:
    """Find the single axis (if any) along which the scan never moves.

    Returns the axis index when exactly one coordinate is constant across
    all tag positions, ``None`` when the scan spans the full space.

    Raises:
        ValueError: when two or more axes are degenerate — that is the
            "single linear trajectory in 3D" case the paper proves
            unsolvable (the target could sit anywhere on a circle).
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"positions must be a matrix, got shape {points.shape}")
    spans = points.max(axis=0) - points.min(axis=0)
    degenerate = np.flatnonzero(spans <= span_threshold_m)
    if degenerate.size == 0:
        return None
    if degenerate.size > 1:
        raise ValueError(
            "trajectory is degenerate along multiple axes; the target is "
            "unobservable (Sec. III-C: a single line cannot fix a 3D position)"
        )
    return int(degenerate[0])
