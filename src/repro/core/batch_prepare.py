"""Batched request-path preprocessing: ``prepare()`` across a serve batch.

:meth:`LionLocalizer.prepare` is the front half of every LION request —
validation, phase preprocessing (unwrap + smoothing), mask application,
reference selection, degeneracy handling, and the Eq. (6) distance
differences. The serving engine used to run it one request at a time in
Python, which bounded the whole stack once the solve was fused
(ROADMAP item 4). This module runs the same pipeline *batch-first*:

* **Stacked preprocessing** — requests whose scans share a read count
  and segment structure stack into one ``(members, reads)`` matrix;
  ``np.unwrap`` and the segment-wise moving average run once along the
  row axis. Both are sequential-per-row operations, so every row is
  bit-identical to the scalar :meth:`LionLocalizer.preprocess_phase`
  (``tests/test_batch_prepare.py`` pins this bitwise). Ragged batches
  (mixed read counts or segment layouts) simply form more groups —
  each group is padded only by its own membership, never with fake
  reads, so no padding value can leak into a real profile.

* **Trajectory-template cache** — everything in a prepared scan except
  the phase-dependent pieces (``used_profile``, ``delta_d``) depends
  only on ``(positions, segments, mask, reference override, dim)``.
  Repeat geometries — the dominant pattern in warehouse portals and the
  streaming re-solve traffic of :mod:`repro.stream`, where many tags
  re-read one deployment trajectory — hit a cross-call LRU keyed on
  content digests and skip masking, reference selection, degeneracy
  detection, and frame rotation entirely.

* **Opt-in float32** — ``dtype=np.float32`` runs the phase pipeline in
  single precision for callers that trade exactness for throughput
  (``ServeConfig(dtype="float32")``). The float64 default is
  bit-identical to per-request ``prepare()``; the float32 path is
  bounded by property tests (phases carry radians of order 10^2 and the
  delta scale is ~1e-2, so single precision keeps distance differences
  within ~1e-5 m of the float64 pipeline).

Failures stay per-member: a request that the scalar ``prepare()`` would
reject gets its ``ValueError`` (or subclass) in its result slot; its
batchmates are prepared exactly as if the bad member never existed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import TWO_PI
from repro.core.localizer import LionLocalizer, PreparedScan, TooFewReadsError
from repro.core.sweep import content_digest
from repro.obs import get_registry, metrics_enabled
from repro.pipeline.contract import EstimationRequest

__all__ = [
    "PreparedMember",
    "ScanTemplate",
    "batch_prepare",
    "clear_template_cache",
    "prepare_batch",
    "template_cache_info",
]


@dataclass(frozen=True)
class ScanTemplate:
    """The phase-independent half of one prepared scan.

    Holds every :class:`~repro.core.localizer.PreparedScan` field that
    depends only on the scan geometry, mask, and localizer dimension —
    not on the phases — plus the include-index vector that maps the full
    profile onto the masked reads. One template serves every request that
    re-reads the same trajectory with fresh phases.

    The arrays are shared, never copied, across the prepared scans built
    from one template; callers must treat prepared fields as immutable
    (the scalar path's callers already do — nothing downstream mutates a
    prepared scan).
    """

    n_reads: int
    include_indices: np.ndarray
    solve_points: np.ndarray
    used_segments: Optional[np.ndarray]
    reference_index: int
    missing_axis: Optional[int]
    rotation: Optional[np.ndarray]
    frame_origin: Optional[np.ndarray]

    def complete(self, used_profile: np.ndarray, delta_d: np.ndarray) -> PreparedScan:
        """Pair the geometry with one request's phase-dependent pieces."""
        return PreparedScan(
            solve_points=self.solve_points,
            used_profile=used_profile,
            used_segments=self.used_segments,
            reference_index=self.reference_index,
            missing_axis=self.missing_axis,
            rotation=self.rotation,
            frame_origin=self.frame_origin,
            delta_d=delta_d,
        )


@dataclass
class PreparedMember:
    """One request's slot in a batched prepare.

    Exactly one of ``prepared`` / ``error`` is set. ``scan_key`` and
    ``mask_key`` are the content digests the template lookup computed —
    callers (the fused serve dispatch) reuse them as the pairing-recipe
    cache key instead of digesting the same arrays again.
    """

    prepared: Optional[PreparedScan] = None
    error: Optional[ValueError] = None
    template: Optional[ScanTemplate] = None
    scan_key: Tuple[bytes, bytes] = (b"", b"")
    mask_key: bytes = b""


# ---------------------------------------------------------------------------
# cross-call trajectory-template cache
# ---------------------------------------------------------------------------

_TEMPLATE_CACHE: "OrderedDict[tuple, ScanTemplate]" = OrderedDict()
_TEMPLATE_CACHE_LOCK = threading.Lock()
_TEMPLATE_CACHE_MAX = 1024
_template_cache_hits = 0
_template_cache_misses = 0


def template_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the cross-call template cache."""
    with _TEMPLATE_CACHE_LOCK:
        return {
            "hits": _template_cache_hits,
            "misses": _template_cache_misses,
            "size": len(_TEMPLATE_CACHE),
            "max_size": _TEMPLATE_CACHE_MAX,
        }


def clear_template_cache() -> None:
    """Empty the template cache and reset its counters (tests, benchmarks)."""
    global _template_cache_hits, _template_cache_misses
    with _TEMPLATE_CACHE_LOCK:
        _TEMPLATE_CACHE.clear()
        _template_cache_hits = 0
        _template_cache_misses = 0


def _template_lookup(key: tuple) -> Optional[ScanTemplate]:
    """One cache probe, counting hits/misses (miss when absent)."""
    global _template_cache_hits
    with _TEMPLATE_CACHE_LOCK:
        cached = _TEMPLATE_CACHE.get(key)
        if cached is not None:
            _TEMPLATE_CACHE.move_to_end(key)
            _template_cache_hits += 1
    if cached is not None and metrics_enabled():
        get_registry().counter("serve.template_cache_hits").inc()
    return cached


def _template_store(key: tuple, template: ScanTemplate) -> None:
    global _template_cache_misses
    with _TEMPLATE_CACHE_LOCK:
        _template_cache_misses += 1
        _TEMPLATE_CACHE[key] = template
        while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAX:
            _TEMPLATE_CACHE.popitem(last=False)
    if metrics_enabled():
        get_registry().counter("serve.template_cache_misses").inc()


def _build_template(
    localizer: LionLocalizer,
    positions: np.ndarray,
    segment_ids: Optional[np.ndarray],
    exclude_mask: Optional[np.ndarray],
    reference_index: Optional[int],
) -> ScanTemplate:
    """Run the geometry half of ``prepare()`` once for a new trajectory.

    Validation mirrors :meth:`LionLocalizer.prepare` exactly (the
    template key is a content digest, so a geometry that validated once
    stays valid for every later hit). The phase-dependent work runs on a
    placeholder profile and is discarded — geometry construction is the
    cold path; the arrays it produces are reused across every cache hit.
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if points.shape[0] < 3:
        raise TooFewReadsError("need at least three reads to localize")
    if not np.all(np.isfinite(points)):
        raise ValueError("positions contain non-finite values")

    include = np.ones(points.shape[0], dtype=bool)
    if exclude_mask is not None:
        mask = np.asarray(exclude_mask, dtype=bool)
        if mask.shape != include.shape:
            raise ValueError("exclude_mask must match the number of reads")
        include = ~mask
    placeholder = np.zeros(points.shape[0], dtype=float)
    prepared = localizer._prepare_scan(
        points, placeholder, segment_ids, exclude_mask, reference_index
    )
    segments = (
        np.asarray(segment_ids, dtype=int)[include] if segment_ids is not None else None
    )
    return ScanTemplate(
        n_reads=int(points.shape[0]),
        include_indices=np.flatnonzero(include),
        solve_points=prepared.solve_points,
        used_segments=segments,
        reference_index=prepared.reference_index,
        missing_axis=prepared.missing_axis,
        rotation=prepared.rotation,
        frame_origin=prepared.frame_origin,
    )


# ---------------------------------------------------------------------------
# batched preprocessing
# ---------------------------------------------------------------------------


def _segment_runs(segment_ids: Optional[np.ndarray], n: int) -> List[np.ndarray]:
    """The per-segment index runs the scalar ``smooth_profile`` iterates."""
    if segment_ids is None:
        return [np.arange(n)]
    ids = np.asarray(segment_ids, dtype=int)
    boundaries = np.flatnonzero(np.diff(ids) != 0) + 1
    return np.split(np.arange(n), boundaries)


def _batched_moving_average(chunk: np.ndarray, window: int) -> np.ndarray:
    """Row-wise centered moving average, bit-identical per row.

    The same cumulative-sum difference as
    :func:`repro.signalproc.smoothing.moving_average`, run along the last
    axis of a ``(members, samples)`` stack. ``np.cumsum`` accumulates
    each row sequentially exactly as the 1-D call does, and the window
    arithmetic is elementwise, so row ``i`` of the output equals the
    scalar filter applied to row ``i``.
    """
    members, n = chunk.shape
    if window == 1 or n <= 1:
        return chunk
    cumsum = np.concatenate(
        [np.zeros((members, 1), dtype=chunk.dtype), np.cumsum(chunk, axis=1)], axis=1
    )
    half = min(window // 2, n - 1)
    index = np.arange(n)
    reach = np.minimum(half, np.minimum(index, n - 1 - index))
    return (cumsum[:, index + reach + 1] - cumsum[:, index - reach]) / (2 * reach + 1)


def _batched_preprocess(
    localizer: LionLocalizer,
    stacked_phases: np.ndarray,
    segment_ids: Optional[np.ndarray],
) -> np.ndarray:
    """Unwrap + smooth a ``(members, reads)`` stack of wrapped profiles.

    Equivalent to :meth:`LionLocalizer.preprocess_phase` per row. Hampel
    filtering is a data-dependent scalar loop, so configs with
    ``hampel_window > 1`` fall back to the scalar path per member (the
    caller routes those before stacking).
    """
    profile = np.unwrap(
        stacked_phases, discont=localizer.preprocess.jump_threshold_rad, axis=1
    )
    window = localizer.preprocess.smoothing_window
    if window <= 1:
        return profile
    for run in _segment_runs(segment_ids, profile.shape[1]):
        if run.size == 0:
            continue
        profile[:, run] = _batched_moving_average(profile[:, run], window)
    return profile


# ---------------------------------------------------------------------------
# the batched prepare
# ---------------------------------------------------------------------------


def _array_digest(memo: Dict[int, bytes], array: Optional[np.ndarray]) -> bytes:
    """Content digest memoized on array identity for the current batch.

    Serving batches frequently carry the *same array object* across
    members (streaming re-solves, replayed scans, load generators); the
    memo collapses those to one digest. Keys are ``id()``s of arrays the
    caller's requests keep alive for the duration of the call, so no
    stale-id aliasing is possible; the memo dies with the call.
    """
    if array is None:
        return b""
    token = id(array)
    digest = memo.get(token)
    if digest is None:
        digest = content_digest(array)
        memo[token] = digest
    return digest


def prepare_batch(
    localizer: LionLocalizer,
    requests: Sequence[EstimationRequest],
    dtype: "np.dtype | type" = np.float64,
) -> List[PreparedMember]:
    """Run ``prepare()`` for a group of requests as stacked batch work.

    The rich-result twin of :func:`batch_prepare`: every slot carries the
    prepared scan (or the per-member ``ValueError``), the template that
    produced it, and the content digests the serve layer reuses as
    pairing-recipe cache keys.

    Args:
        localizer: the group's configured localizer (one per batch — the
            serve engine groups requests by config hash).
        requests: the member requests, in batch order.
        dtype: ``np.float64`` (default, bit-identical to the scalar
            path) or ``np.float32`` (opt-in throughput mode; phase
            preprocessing and distance differences run in single
            precision).

    Returns:
        One :class:`PreparedMember` per request, in request order.
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"dtype must be float64 or float32, got {dtype}")
    members: List[PreparedMember] = [PreparedMember() for _ in requests]
    digest_memo: Dict[int, bytes] = {}
    scale = localizer.wavelength_m / (2.0 * TWO_PI)
    if dtype == np.dtype(np.float32):
        scale = np.float32(scale)

    # Stage 1 — resolve each member's template (geometry) and group the
    # survivors by (reads, segment layout, template identity is NOT
    # required) for stacked preprocessing.
    groups: Dict[tuple, List[int]] = {}
    for index, request in enumerate(requests):
        member = members[index]
        try:
            if request.positions is None or request.phases_rad is None:
                missing = [
                    name
                    for name in ("positions", "phases_rad")
                    if getattr(request, name) is None
                ]
                raise ValueError(f"request is missing required fields: {missing}")
            phases = request.phases_rad
            positions = request.positions
            pos_key = _array_digest(digest_memo, positions)
            seg_key = _array_digest(digest_memo, request.segment_ids)
            mask_key = _array_digest(digest_memo, request.exclude_mask)
            member.scan_key = (pos_key, seg_key)
            member.mask_key = mask_key
            key = (pos_key, seg_key, mask_key, request.reference_index, localizer.dim)
            template = _template_lookup(key)
            if template is None:
                template = _build_template(
                    localizer,
                    positions,
                    request.segment_ids,
                    request.exclude_mask,
                    request.reference_index,
                )
                _template_store(key, template)
            if phases.shape != (template.n_reads,):
                raise ValueError(
                    f"phases must have shape ({template.n_reads},), got {phases.shape}"
                )
            member.template = template
        except ValueError as error:
            member.error = error
            continue
        groups.setdefault((int(template.n_reads), seg_key), []).append(index)

    # Stage 2 — stacked preprocessing per group, then per-member masking
    # and Eq. (6) against each member's template.
    hampel = localizer.preprocess.hampel_window > 1
    for (n_reads, _seg_key), group in groups.items():
        stacked = np.empty((len(group), n_reads), dtype=dtype)
        for slot, index in enumerate(group):
            stacked[slot] = requests[index].phases_rad
        finite = np.isfinite(stacked)
        bad_members: set[int] = set()
        if not finite.all():
            for slot, index in enumerate(group):
                if not finite[slot].all():
                    members[index].error = ValueError(
                        "phases contain non-finite values; filter failed reads upstream"
                    )
                    bad_members.add(index)
        live = [index for index in group if index not in bad_members]
        if not live:
            continue
        if len(live) != len(group):
            stacked = np.stack([requests[index].phases_rad for index in live]).astype(
                dtype, copy=False
            )
        segment_ids = requests[live[0]].segment_ids
        if hampel:
            profiles = np.empty_like(stacked)
            for slot, index in enumerate(live):
                profiles[slot] = localizer.preprocess_phase(
                    stacked[slot],
                    segment_ids=np.asarray(segment_ids, dtype=int)
                    if segment_ids is not None
                    else None,
                ).astype(dtype, copy=False)
        else:
            profiles = _batched_preprocess(localizer, stacked, segment_ids)

        # Members sharing a template vectorize the masking + delta step;
        # a mixed group (same layout, different masks) falls through to
        # one-row slices of the same code.
        by_template: Dict[int, List[int]] = {}
        for slot, index in enumerate(live):
            by_template.setdefault(id(members[index].template), []).append(slot)
        for slots in by_template.values():
            template = members[live[slots[0]]].template
            assert template is not None
            rows = profiles[slots] if len(slots) > 1 else profiles[slots[0] : slots[0] + 1]
            used = rows[:, template.include_indices]
            delta = scale * (used - used[:, template.reference_index, np.newaxis])
            for row, slot in enumerate(slots):
                index = live[slot]
                members[index].prepared = template.complete(used[row], delta[row])
    if metrics_enabled():
        get_registry().histogram(
            "serve.prepare_batch_size",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).observe(float(len(requests)))
    return members


def batch_prepare(
    localizer: LionLocalizer,
    requests: Sequence[EstimationRequest],
    dtype: "np.dtype | type" = np.float64,
) -> List[PreparedScan | ValueError]:
    """Batched :meth:`LionLocalizer.prepare` over a group of requests.

    Returns one slot per request, in order: the
    :class:`~repro.core.localizer.PreparedScan` — bit-identical in
    float64 to ``localizer.prepare(...)`` on the same request — or the
    ``ValueError`` subclass that member raises on the scalar path.
    See :func:`prepare_batch` for the rich per-member records the serve
    layer consumes.
    """
    results: List[PreparedScan | ValueError] = []
    for member in prepare_batch(localizer, requests, dtype=dtype):
        if member.error is not None:
            results.append(member.error)
        else:
            assert member.prepared is not None
            results.append(member.prepared)
    return results
