"""Multi-antenna differential localization with calibration corrections.

The paper's case study (Sec. V-F1, Fig. 19-20): several static antennas
locate one static tag from a single phase reading per antenna. Because
each antenna's reading carries its own hardware offset ``theta_R`` and a
shared tag offset ``theta_T``, only *differences* between antennas are
usable — and those differences are still biased by the antennas' relative
offsets unless they have been calibrated away.

This module provides the differential machinery as a first-class API:

* :func:`differential_hologram` — the likelihood grid search over
  candidate tag positions, with per-antenna position and offset
  corrections applied (the Fig. 20 method);
* :func:`locate_tag_differential` — the same measurement model solved by
  nonlinear least squares on the wrapped phase differences (faster and
  grid-free, at the cost of needing an initial guess inside the correct
  ambiguity lobe);
* :class:`CalibratedArray` — bundles antennas with their
  :class:`~repro.core.calibration.AntennaCalibration` records and exposes
  corrected centers/offsets at each calibration level.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Literal, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.calibration import AntennaCalibration, relative_phase_offsets
from repro.rf.antenna import Antenna
from repro.signalproc.stats import circular_difference

CalibrationLevel = Literal["none", "center", "full"]

Bounds = Tuple[float, float]


@dataclass(frozen=True)
class DifferentialResult:
    """Output of a multi-antenna differential localization.

    Attributes:
        position: estimated tag position, shape ``(dim,)``.
        likelihood: peak likelihood in ``[0, 1]`` (hologram) or ``nan``
            (least-squares path).
        cell_count: grid cells evaluated (0 for the least-squares path).
    """

    position: np.ndarray
    likelihood: float
    cell_count: int


@dataclass
class CalibratedArray:
    """A set of antennas plus their calibration records.

    Attributes:
        antennas: the deployed antennas (their ``physical_center`` is the
            manually measured knowledge).
        calibrations: matching calibration records, one per antenna, in
            the same order. All must have been calibrated with the *same
            tag* for the offset differences to be tag-free.
    """

    antennas: Sequence[Antenna]
    calibrations: Sequence[AntennaCalibration]

    def __post_init__(self) -> None:
        if len(self.antennas) != len(self.calibrations):
            raise ValueError(
                f"{len(self.antennas)} antennas but {len(self.calibrations)} calibrations"
            )
        if len(self.antennas) < 2:
            raise ValueError("differential localization needs at least two antennas")

    def centers(self, level: CalibrationLevel, dim: int = 2) -> np.ndarray:
        """Per-antenna signal origins at the given calibration level."""
        if level == "none":
            stacked = np.vstack([a.physical_center_array for a in self.antennas])
        else:
            stacked = np.vstack([c.estimated_center for c in self.calibrations])
        return stacked[:, :dim]

    def offset_corrections(self, level: CalibrationLevel) -> np.ndarray:
        """Per-antenna phase corrections to subtract from measurements.

        Zero except at the ``full`` level, where the relative offsets
        (reference = first antenna) are returned.
        """
        if level != "full":
            return np.zeros(len(self.antennas))
        relative = relative_phase_offsets(list(self.calibrations))
        return np.array(
            [relative[c.antenna_name] for c in self.calibrations]
        )


def _differential_hologram_impl(
    centers: np.ndarray,
    measured_phase_rad: np.ndarray,
    bounds: Sequence[Bounds],
    grid_size_m: float = 0.004,
    offset_corrections_rad: np.ndarray | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> DifferentialResult:
    """Grid-search the tag position from one phase per antenna (Fig. 20).

    ``L(p) = |Σ_a exp(j[(θ_a - θ_0 - Δ_a) - k(|p - c_a| - |p - c_0|)])| / n``
    with antenna 0 the phase-difference reference and ``Δ_a`` the known
    offset corrections.

    Args:
        centers: antenna signal origins, shape ``(n, dim)``, dim 2 or 3.
        measured_phase_rad: one (averaged) wrapped phase per antenna.
        bounds: per-axis search bounds. Keep them near the deployment
            prior: with few antennas the uncorrected landscape has
            wrap-ambiguous global maxima far from the tag.
        grid_size_m: cell edge length.
        offset_corrections_rad: per-antenna corrections (subtracted from
            the measurements); default zero.
        wavelength_m: carrier wavelength.

    Raises:
        ValueError: on shape mismatches or fewer than two antennas.
    """
    anchors = np.asarray(centers, dtype=float)
    phases = np.asarray(measured_phase_rad, dtype=float)
    if anchors.ndim != 2 or anchors.shape[0] < 2:
        raise ValueError("need at least two antenna centers")
    if anchors.shape[1] != len(bounds):
        raise ValueError(
            f"centers have {anchors.shape[1]} axes but bounds cover {len(bounds)}"
        )
    if phases.shape != (anchors.shape[0],):
        raise ValueError("one phase per antenna required")
    if offset_corrections_rad is None:
        offset_corrections_rad = np.zeros(anchors.shape[0])
    else:
        offset_corrections_rad = np.asarray(offset_corrections_rad, dtype=float)
        if offset_corrections_rad.shape != phases.shape:
            raise ValueError("one offset correction per antenna required")
    if grid_size_m <= 0.0:
        raise ValueError("grid size must be positive")

    axes = [np.arange(low, high + grid_size_m, grid_size_m) for low, high in bounds]
    mesh = np.meshgrid(*axes, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)

    k = 2.0 * TWO_PI / wavelength_m
    corrected = phases - offset_corrections_rad
    measured_diff = corrected - corrected[0]
    distances = np.linalg.norm(
        cells[:, np.newaxis, :] - anchors[np.newaxis, :, :], axis=2
    )
    predicted_diff = k * (distances - distances[:, [0]])
    coherence = np.abs(
        np.sum(np.exp(1j * (measured_diff[np.newaxis, :] - predicted_diff)), axis=1)
    ) / anchors.shape[0]
    best = int(np.argmax(coherence))
    return DifferentialResult(
        position=cells[best].copy(),
        likelihood=float(coherence[best]),
        cell_count=cells.shape[0],
    )


def locate_tag_differential(
    centers: np.ndarray,
    measured_phase_rad: np.ndarray,
    initial_guess: np.ndarray,
    offset_corrections_rad: np.ndarray | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> DifferentialResult:
    """Least-squares alternative to the hologram (same measurement model).

    Minimizes the wrapped difference between measured and predicted
    inter-antenna phase differences, starting from ``initial_guess``.
    Converges to the ambiguity lobe the guess sits in — supply a
    deployment prior (e.g. the nominal tag placement).

    Raises:
        ValueError: on shape mismatches.
    """
    anchors = np.asarray(centers, dtype=float)
    phases = np.asarray(measured_phase_rad, dtype=float)
    guess = np.asarray(initial_guess, dtype=float)
    if anchors.ndim != 2 or anchors.shape[0] < 2:
        raise ValueError("need at least two antenna centers")
    if phases.shape != (anchors.shape[0],):
        raise ValueError("one phase per antenna required")
    if guess.shape != (anchors.shape[1],):
        raise ValueError(
            f"initial guess must have shape ({anchors.shape[1]},), got {guess.shape}"
        )
    if offset_corrections_rad is None:
        offset_corrections_rad = np.zeros(anchors.shape[0])
    corrected = phases - np.asarray(offset_corrections_rad, dtype=float)
    measured_diff = corrected[1:] - corrected[0]
    k = 2.0 * TWO_PI / wavelength_m

    def residuals(candidate: np.ndarray) -> np.ndarray:
        distances = np.linalg.norm(anchors - candidate[np.newaxis, :], axis=1)
        predicted = k * (distances[1:] - distances[0])
        return np.asarray(circular_difference(measured_diff, predicted), dtype=float)

    fit = least_squares(residuals, guess)
    return DifferentialResult(
        position=fit.x.copy(),
        likelihood=float("nan"),
        cell_count=0,
    )


def locate_tag_with_array(
    array: CalibratedArray,
    measured_phase_rad: np.ndarray,
    bounds: Sequence[Bounds],
    level: CalibrationLevel = "full",
    grid_size_m: float = 0.004,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> DifferentialResult:
    """Locate a static tag with a calibrated array at a calibration level.

    Convenience wrapper combining :class:`CalibratedArray` level selection
    with the differential grid search — the exact Fig. 20 comparison.
    """
    return _differential_hologram_impl(
        array.centers(level, dim=len(bounds)),
        measured_phase_rad,
        bounds,
        grid_size_m=grid_size_m,
        offset_corrections_rad=array.offset_corrections(level),
        wavelength_m=wavelength_m,
    )


def differential_hologram(
    centers: np.ndarray,
    measured_phase_rad: np.ndarray,
    bounds: Sequence[Bounds],
    grid_size_m: float = 0.004,
    offset_corrections_rad: np.ndarray | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> DifferentialResult:
    """Deprecated entry point for the multi-antenna grid search.

    Use the ``"lion-multiantenna"`` estimator from :mod:`repro.pipeline`
    instead; this shim forwards through the registry (identical results)
    and will be removed once downstream callers have migrated. See
    :func:`_differential_hologram_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "differential_hologram() is deprecated; use "
        "repro.pipeline.estimate('lion-multiantenna', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import pipeline

    config = pipeline.MultiAntennaConfig(
        wavelength_m=wavelength_m, grid_size_m=grid_size_m
    )
    request = pipeline.EstimationRequest(
        positions=centers,
        phases_rad=measured_phase_rad,
        bounds=tuple(bounds),
        offset_corrections_rad=offset_corrections_rad,
    )
    return pipeline.estimate("lion-multiantenna", request, config).raw
