"""High-level LION localizer: wrapped phases in, position out.

:class:`LionLocalizer` wires the whole Sec. IV pipeline together:
preprocessing (unwrap + smooth), Eq. (6) distance differences, pair
selection, system assembly, the (weighted) least-squares solve, and
lower-dimension coordinate recovery. It is symmetric in who moves: give it
tag positions to locate an antenna (calibration), or antenna-relative
positions to locate a tag (the conveyor and turntable applications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.lowerdim import (
    RecoveryResult,
    detect_missing_axis,
    recover_coordinate_from_reference,
)
from repro.core.pairing import lag_pairs, spacing_pairs, three_line_pairs
from repro.core.solvers import (
    Solution,
    solve_least_squares,
    solve_weighted_least_squares,
)
from repro.core.system import LinearSystem, build_system, delta_distances
from repro.core.weights import gaussian_residual_weights
from repro.geometry.transforms import to_line_frame_2d
from repro.obs import span, tracing_enabled
from repro.signalproc.smoothing import hampel_filter, smooth_phase_profile
from repro.signalproc.unwrap import unwrap_phase

Method = Literal["wls", "ls"]


class TooFewReadsError(ValueError):
    """A scan (or its exclusion mask) leaves fewer than three usable reads.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working; the adaptive sweep maps it to the stable
    ``"too_few_reads"`` rejection label.
    """


class DegenerateGeometryError(ValueError):
    """The scan geometry cannot observe a position of the requested dim.

    Raised for the Sec. III-C unsolvable cases (e.g. a single straight
    line for a 3D target). Subclasses :class:`ValueError`; the adaptive
    sweep maps it to the stable ``"degenerate_geometry"`` label.
    """


@dataclass(frozen=True)
class PreprocessConfig:
    """Signal preprocessing knobs (paper Sec. IV-A).

    Attributes:
        smoothing_window: moving-average window in samples (1 disables).
        jump_threshold_rad: unwrap jump threshold; ``pi`` per the paper.
        hampel_window: when positive, apply Hampel outlier rejection of
            this window before smoothing (multipath spike removal).
    """

    smoothing_window: int = 9
    jump_threshold_rad: float = float(np.pi)
    hampel_window: int = 0


@dataclass(frozen=True)
class LocalizationResult:
    """Full output of one localization run.

    Attributes:
        position: estimated target position, shape ``(dim,)``, meters.
        reference_distance_m: estimated ``d_r``.
        solution: the underlying least-squares solution (residuals,
            weights, iteration count).
        system: the assembled linear system (for diagnostics).
        recovered_axis: index of the coordinate recovered from ``d_r``
            via the lower-dimension path, or ``None``.
        recovery: details of that recovery (both candidates), or ``None``.
        reference_position: the tag position used as Eq. (6) reference.
    """

    position: np.ndarray
    reference_distance_m: float
    solution: Solution
    system: LinearSystem
    recovered_axis: int | None
    recovery: RecoveryResult | None
    reference_position: np.ndarray

    @property
    def mean_residual(self) -> float:
        """Weighted mean residual of the final solve (adaptive-selection signal)."""
        return self.solution.mean_residual


@dataclass(frozen=True)
class PreparedScan:
    """A scan reduced to its solve-ready, pairing-independent pieces.

    Produced by :meth:`LionLocalizer._prepare_scan`: mask application,
    reference selection, degeneracy detection / frame rotation, and the
    Eq. (6) distance differences. Everything here depends only on the
    (masked) geometry and the preprocessed profile — not on the pairing
    interval — which is what lets the fused adaptive sweep
    (:mod:`repro.core.sweep`) prepare each distinct range window once and
    reuse it across every interval.

    Attributes:
        solve_points: included positions in the solve frame (rotated for
            collinear 2D scans), shape ``(k, dim)``.
        used_profile: preprocessed phases of the included reads.
        used_segments: segment ids of the included reads, or ``None``.
        reference_index: Eq. (6) reference, index into included reads.
        missing_axis: axis to recover via ``d_r``, or ``None``.
        rotation / frame_origin: the 2D line-frame transform, or ``None``.
        delta_d: Eq. (6) distance differences of the included reads.
    """

    solve_points: np.ndarray
    used_profile: np.ndarray
    used_segments: np.ndarray | None
    reference_index: int
    missing_axis: int | None
    rotation: np.ndarray | None
    frame_origin: np.ndarray | None
    delta_d: np.ndarray


@dataclass
class LionLocalizer:
    """Configurable LION pipeline.

    Attributes:
        dim: spatial dimension of the answer, 2 or 3.
        wavelength_m: carrier wavelength.
        method: ``"wls"`` (paper default) or ``"ls"``.
        interval_m: default scanning interval (pair spacing), meters.
        positive_side: deployment prior for lower-dimension recovery —
            whether the target lies on the positive side of the scan along
            the unobserved axis.
        preprocess: signal preprocessing configuration.
        max_iterations / tolerance_m: WLS iteration control.
    """

    dim: int = 2
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    method: Method = "wls"
    interval_m: float = 0.25
    positive_side: bool = True
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    max_iterations: int = 20
    tolerance_m: float = 1e-6

    def __post_init__(self) -> None:
        if self.dim not in (2, 3):
            raise ValueError(f"dim must be 2 or 3, got {self.dim}")
        if self.wavelength_m <= 0.0:
            raise ValueError("wavelength must be positive")
        if self.method not in ("wls", "ls"):
            raise ValueError(f"method must be 'wls' or 'ls', got {self.method!r}")
        if self.interval_m <= 0.0:
            raise ValueError("interval must be positive")

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def preprocess_phase(
        self,
        wrapped_phase_rad: np.ndarray,
        segment_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Unwrap and smooth a continuous wrapped-phase profile.

        Unwrapping runs over the whole profile (the scan is continuous,
        transits included); smoothing and outlier rejection run *per
        segment* — a moving average across a trajectory corner would mix
        reads with discontinuous phase slope and bias the profile there.
        """
        profile = unwrap_phase(
            np.asarray(wrapped_phase_rad, dtype=float),
            self.preprocess.jump_threshold_rad,
        )
        return self.smooth_profile(profile, segment_ids)

    def smooth_profile(
        self,
        profile: np.ndarray,
        segment_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Smoothing half of :meth:`preprocess_phase`, on an unwrapped profile.

        Split out so streaming callers that maintain the unwrap
        incrementally (:class:`repro.core.incremental.IncrementalScanAssembler`)
        can apply exactly the batch outlier-rejection and moving-average
        treatment to a reconstructed window profile. Mutates and returns
        ``profile`` in place (callers pass a fresh copy).
        """
        if segment_ids is None:
            runs = [np.arange(profile.shape[0])]
        else:
            ids = np.asarray(segment_ids, dtype=int)
            boundaries = np.flatnonzero(np.diff(ids) != 0) + 1
            runs = np.split(np.arange(profile.shape[0]), boundaries)
        for run in runs:
            if run.size == 0:
                continue
            chunk = profile[run]
            if self.preprocess.hampel_window > 1:
                chunk, _ = hampel_filter(chunk, self.preprocess.hampel_window)
            if self.preprocess.smoothing_window > 1:
                chunk = smooth_phase_profile(chunk, self.preprocess.smoothing_window)
            profile[run] = chunk
        return profile

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def locate(
        self,
        positions: np.ndarray,
        wrapped_phase_rad: np.ndarray,
        segment_ids: np.ndarray | None = None,
        exclude_mask: np.ndarray | None = None,
        pairs: Sequence[Tuple[int, int]] | None = None,
        interval_m: float | None = None,
        reference_index: int | None = None,
        assume_preprocessed: bool = False,
    ) -> LocalizationResult:
        """Locate the target from one continuous scan (traced as ``locate``)."""
        if not tracing_enabled():
            return self._locate_impl(
                positions,
                wrapped_phase_rad,
                segment_ids=segment_ids,
                exclude_mask=exclude_mask,
                pairs=pairs,
                interval_m=interval_m,
                reference_index=reference_index,
                assume_preprocessed=assume_preprocessed,
            )
        with span("locate", dim=self.dim, method=self.method):
            return self._locate_impl(
                positions,
                wrapped_phase_rad,
                segment_ids=segment_ids,
                exclude_mask=exclude_mask,
                pairs=pairs,
                interval_m=interval_m,
                reference_index=reference_index,
                assume_preprocessed=assume_preprocessed,
            )

    def _locate_impl(
        self,
        positions: np.ndarray,
        wrapped_phase_rad: np.ndarray,
        segment_ids: np.ndarray | None = None,
        exclude_mask: np.ndarray | None = None,
        pairs: Sequence[Tuple[int, int]] | None = None,
        interval_m: float | None = None,
        reference_index: int | None = None,
        assume_preprocessed: bool = False,
    ) -> LocalizationResult:
        """Locate the target from one continuous scan.

        Args:
            positions: known scan positions, shape ``(n, 2)`` or ``(n, 3)``,
                in time order. For ``dim == 2`` a 3-column input uses the
                first two columns (scan and target must share the plane).
            wrapped_phase_rad: reported wrapped phases, shape ``(n,)``, in
                the same time order — assumed *continuously* sampled so the
                whole profile unwraps as one piece (include transit reads
                of multi-line scans; mark them with ``exclude_mask``).
            segment_ids: per-read sweep ids. When exactly three data
                segments are present and ``dim == 3``, the structured
                three-line pairing of Sec. IV-B1 is used automatically.
            exclude_mask: boolean mask of reads to keep for unwrapping but
                exclude from equations (transit reads, out-of-range reads).
            pairs: explicit pair selection (indices into the *included*
                reads); overrides automatic pairing.
            interval_m: scanning interval override for this call.
            reference_index: index (into included reads) of the Eq. (6)
                reference; defaults to the middle read, which keeps the
                reference inside the antenna's main beam.
            assume_preprocessed: when True, ``wrapped_phase_rad`` is taken
                to be an already unwrapped and smoothed profile (from
                :meth:`preprocess_phase`) and preprocessing is skipped.
                Preprocessing depends only on the full profile — not on
                the exclusion mask or interval — so callers sweeping many
                configurations over one scan (``repro.core.adaptive``)
                hoist it out of the per-configuration loop.

        Raises:
            TooFewReadsError: when fewer than three (included) reads remain.
            DegenerateGeometryError: on an unobservable geometry (e.g. a
                single straight line for a 3D target).
            ValueError: on shape mismatches or other solve failures.
        """
        prepared = self.prepare(
            positions,
            wrapped_phase_rad,
            segment_ids=segment_ids,
            exclude_mask=exclude_mask,
            reference_index=reference_index,
            assume_preprocessed=assume_preprocessed,
        )
        return self._solve_prepared(prepared, pairs=pairs, interval_m=interval_m)

    def prepare(
        self,
        positions: np.ndarray,
        wrapped_phase_rad: np.ndarray,
        segment_ids: np.ndarray | None = None,
        exclude_mask: np.ndarray | None = None,
        reference_index: int | None = None,
        assume_preprocessed: bool = False,
    ) -> PreparedScan:
        """Validate, preprocess, and reduce one scan to its solve-ready pieces.

        This is exactly the front half of :meth:`locate` — input validation,
        phase preprocessing, and :meth:`_prepare_scan` — split out so batch
        engines (:mod:`repro.serve`) can run it per request and then fuse the
        remaining pair/assemble/solve work across requests. ``locate`` is
        ``prepare`` + ``_solve_prepared``, so results stay bit-identical.

        Copy contract: inputs are never mutated, and the returned
        :class:`PreparedScan` never aliases caller arrays — every array it
        carries is produced by boolean-mask indexing or arithmetic, both
        of which allocate. ``assume_preprocessed`` therefore uses the
        caller's phase array in place (read-only) instead of defensively
        copying it; sweep engines call this per candidate window, so that
        copy was pure overhead.

        Raises:
            TooFewReadsError / DegenerateGeometryError / ValueError: as on
                :meth:`locate`.
        """
        points = np.asarray(positions, dtype=float)
        phases = np.asarray(wrapped_phase_rad, dtype=float)
        if points.ndim != 2 or points.shape[1] not in (2, 3):
            raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
        if phases.shape != (points.shape[0],):
            raise ValueError(
                f"phases must have shape ({points.shape[0]},), got {phases.shape}"
            )
        if points.shape[0] < 3:
            raise TooFewReadsError("need at least three reads to localize")
        if not np.all(np.isfinite(points)):
            raise ValueError("positions contain non-finite values")
        if not np.all(np.isfinite(phases)):
            raise ValueError(
                "phases contain non-finite values; filter failed reads upstream"
            )

        if assume_preprocessed:
            profile = phases  # read-only from here; _prepare_scan copies via masking
        else:
            profile = self.preprocess_phase(
                phases,
                segment_ids=np.asarray(segment_ids, dtype=int)
                if segment_ids is not None
                else None,
            )

        return self._prepare_scan(
            points, profile, segment_ids, exclude_mask, reference_index
        )

    def _prepare_scan(
        self,
        points: np.ndarray,
        profile: np.ndarray,
        segment_ids: np.ndarray | None,
        exclude_mask: np.ndarray | None,
        reference_index: int | None,
    ) -> PreparedScan:
        """Mask, pick the reference, handle degeneracy, compute Eq. (6).

        ``points`` and ``profile`` are the full validated position matrix
        and preprocessed phase profile; the result depends only on them,
        the mask, and the localizer configuration — not on the pairing
        interval — so sweep engines prepare each distinct mask once.
        """
        include = np.ones(points.shape[0], dtype=bool)
        if exclude_mask is not None:
            mask = np.asarray(exclude_mask, dtype=bool)
            if mask.shape != include.shape:
                raise ValueError("exclude_mask must match the number of reads")
            include = ~mask
        if int(np.count_nonzero(include)) < 3:
            raise TooFewReadsError("need at least three included reads")

        used_points_full = points[include]
        used_profile = profile[include]
        used_segments = (
            np.asarray(segment_ids, dtype=int)[include] if segment_ids is not None else None
        )

        if reference_index is None:
            if used_segments is not None:
                # Middle of the most-populated sweep: keeps the reference
                # read far from trajectory corners, where even symmetric
                # smoothing has reduced support.
                ids, counts = np.unique(used_segments, return_counts=True)
                largest = ids[int(np.argmax(counts))]
                members = np.flatnonzero(used_segments == largest)
                reference_index = int(members[members.size // 2])
            else:
                reference_index = used_profile.shape[0] // 2
        if not 0 <= reference_index < used_profile.shape[0]:
            raise ValueError("reference index out of range of included reads")

        used_points = used_points_full[:, : self.dim] if self.dim == 2 else used_points_full
        if self.dim == 3 and used_points.shape[1] == 2:
            used_points = np.hstack([used_points, np.zeros((used_points.shape[0], 1))])

        # Degeneracy handling: find the axis (if any) the scan never moves
        # along; for 2D a non-axis-aligned line is rotated into its frame.
        rotation: np.ndarray | None = None
        frame_origin: np.ndarray | None = None
        solve_points = used_points
        missing_axis = self._detect_degeneracy(used_points)
        if self.dim == 2 and missing_axis is None and self._is_collinear(used_points):
            direction = self._principal_direction(used_points)
            frame_origin = used_points[0].copy()
            solve_points, rotation = to_line_frame_2d(used_points, frame_origin, direction)
            missing_axis = 1

        delta_d = delta_distances(used_profile, reference_index, self.wavelength_m)
        return PreparedScan(
            solve_points=solve_points,
            used_profile=used_profile,
            used_segments=used_segments,
            reference_index=reference_index,
            missing_axis=missing_axis,
            rotation=rotation,
            frame_origin=frame_origin,
            delta_d=delta_d,
        )

    def _solve_prepared(
        self,
        prepared: PreparedScan,
        pairs: Sequence[Tuple[int, int]] | None = None,
        interval_m: float | None = None,
    ) -> LocalizationResult:
        """Pair, assemble, and solve one prepared scan."""
        if pairs is None:
            pairs = self._auto_pairs(
                prepared.solve_points,
                prepared.used_segments,
                interval_m or self.interval_m,
            )
        system = build_system(
            prepared.solve_points, prepared.delta_d, pairs, dim=self.dim
        )
        if self.method == "wls":
            solution = solve_weighted_least_squares(
                system,
                weight_function=gaussian_residual_weights,
                max_iterations=self.max_iterations,
                tolerance_m=self.tolerance_m,
            )
        else:
            solution = solve_least_squares(system)
        return self._finalize_solution(prepared, system, solution)

    def _finalize_solution(
        self, prepared: PreparedScan, system: LinearSystem, solution: Solution
    ) -> LocalizationResult:
        """Recover the missing coordinate and rotate back to world frame."""
        position = solution.position.copy()
        reference_position = prepared.solve_points[prepared.reference_index].copy()
        recovery: RecoveryResult | None = None
        if prepared.missing_axis is not None:
            recovery = recover_coordinate_from_reference(
                position,
                prepared.missing_axis,
                max(solution.reference_distance, 0.0),
                reference_position,
                positive_side=self.positive_side,
            )
            position = recovery.position

        if prepared.rotation is not None and prepared.frame_origin is not None:
            position = prepared.rotation.T @ position + prepared.frame_origin
            reference_position = prepared.rotation.T @ reference_position + prepared.frame_origin

        return LocalizationResult(
            position=position,
            reference_distance_m=solution.reference_distance,
            solution=solution,
            system=system,
            recovered_axis=prepared.missing_axis,
            recovery=recovery,
            reference_position=reference_position,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _detect_degeneracy(self, points: np.ndarray) -> int | None:
        """Missing-axis detection with the Sec. III-C unsolvable case check."""
        try:
            return detect_missing_axis(points, span_threshold_m=1e-6)
        except ValueError as error:
            raise DegenerateGeometryError(
                f"trajectory cannot observe a {self.dim}-D position: {error}"
            ) from error

    @staticmethod
    def _is_collinear(points: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether all 2D points lie on one straight line."""
        centered = points - points.mean(axis=0)
        singular_values = np.linalg.svd(centered, compute_uv=False)
        return bool(singular_values[-1] <= tol * max(singular_values[0], 1.0))

    @staticmethod
    def _principal_direction(points: np.ndarray) -> np.ndarray:
        """Dominant direction of a point cloud (first right singular vector)."""
        centered = points - points.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        return vt[0]

    def _auto_pairs(
        self,
        points: np.ndarray,
        segments: np.ndarray | None,
        interval_m: float,
    ) -> Sequence[Tuple[int, int]]:
        """Pick a pairing strategy from the scan structure."""
        if segments is not None:
            unique_ids = np.unique(segments)
            if self.dim == 3 and unique_ids.size == 3:
                ids = tuple(int(v) for v in unique_ids)
                return three_line_pairs(points, segments, interval_m, line_ids=ids)
            if unique_ids.size > 1:
                # Multi-segment but not the canonical three-line scan: pair
                # within segments at the interval, plus across consecutive
                # segments by matching the sweep coordinate.
                return self._generic_multisegment_pairs(
                    points, segments, interval_m, unique_ids
                )
        try:
            return spacing_pairs(points, interval_m)
        except ValueError:
            # Trajectory shorter than the interval: fall back to widest lag.
            return lag_pairs(points.shape[0], max(points.shape[0] // 2, 1))

    def _generic_multisegment_pairs(
        self,
        points: np.ndarray,
        segments: np.ndarray,
        interval_m: float,
        unique_ids: np.ndarray | None = None,
    ) -> list[Tuple[int, int]]:
        from repro.core.pairing import cross_segment_pairs

        if unique_ids is None:
            unique_ids = np.unique(segments)
        pairs: list[Tuple[int, int]] = []
        unique = [int(v) for v in unique_ids]
        for segment in unique:
            index = np.flatnonzero(segments == segment)
            if index.size < 2:
                continue
            try:
                local = spacing_pairs(points[index], interval_m)
            except ValueError:
                continue
            pairs += [(int(index[i]), int(index[j])) for i, j in local]
        for first, second in zip(unique, unique[1:]):
            pairs += cross_segment_pairs(points, segments, first, second)
        if not pairs:
            raise ValueError("could not build any radical-equation pairs")
        return pairs
