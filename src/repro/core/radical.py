"""Radical line/plane equation rows (paper Eq. 7 and Eq. 9).

Subtracting the circle (sphere) equations of two tag positions ``i`` and
``j`` cancels the quadratic antenna terms and leaves a *linear* equation in
the antenna position. Because only distance *differences*
``delta_d = d - d_r`` are observable from phase, the unknown reference
distance ``d_r`` is carried as one more linear unknown::

    2(p_i - p_j) . p  +  2(delta_d_i - delta_d_j) d_r
        = |p_i|^2 - |p_j|^2 - delta_d_i^2 + delta_d_j^2

Each pair of reads contributes one such row; stacking rows over many pairs
yields the over-determined system solved in :mod:`repro.core.solvers`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def radical_row(
    position_i: np.ndarray,
    delta_d_i: float,
    position_j: np.ndarray,
    delta_d_j: float,
) -> Tuple[np.ndarray, float]:
    """One radical equation row for a pair of reads.

    Args:
        position_i: tag position of the first read, shape ``(dim,)`` with
            dim 2 or 3.
        delta_d_i: distance difference of the first read relative to the
            reference read (Eq. 6), meters.
        position_j: tag position of the second read, same dim.
        delta_d_j: distance difference of the second read.

    Returns:
        ``(coefficients, kappa)`` where ``coefficients`` has shape
        ``(dim + 1,)`` — the last entry multiplies ``d_r`` — and ``kappa``
        is the right-hand side.

    Raises:
        ValueError: if positions disagree in dimension or coincide (a
            coincident pair yields the degenerate row 0 = 0 only when the
            delta distances also agree; otherwise it is inconsistent noise,
            so both cases are rejected).
    """
    pi = np.asarray(position_i, dtype=float)
    pj = np.asarray(position_j, dtype=float)
    if pi.shape != pj.shape or pi.ndim != 1 or pi.shape[0] not in (2, 3):
        raise ValueError(
            f"positions must share shape (2,) or (3,), got {pi.shape} and {pj.shape}"
        )
    if np.allclose(pi, pj):
        raise ValueError("radical equation undefined for coincident tag positions")
    spatial = 2.0 * (pi - pj)
    omega = 2.0 * (delta_d_i - delta_d_j)
    coefficients = np.concatenate([spatial, [omega]])
    kappa = float(np.dot(pi, pi) - np.dot(pj, pj) - delta_d_i**2 + delta_d_j**2)
    return coefficients, kappa


def radical_rows(
    positions: np.ndarray,
    delta_d: np.ndarray,
    pairs: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised construction of radical rows for many index pairs.

    Args:
        positions: tag positions, shape ``(n, dim)`` with dim 2 or 3.
        delta_d: distance differences per read, shape ``(n,)``.
        pairs: index pairs ``(i, j)`` into the reads.

    Returns:
        ``(matrix, rhs)`` with shapes ``(m, dim + 1)`` and ``(m,)``.

    Raises:
        ValueError: on shape mismatch, empty pair list, out-of-range
            indices, or any coincident-position pair.
    """
    points = np.asarray(positions, dtype=float)
    deltas = np.asarray(delta_d, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if deltas.shape != (points.shape[0],):
        raise ValueError(
            f"delta_d must have shape ({points.shape[0]},), got {deltas.shape}"
        )
    if len(pairs) == 0:
        raise ValueError("need at least one pair of reads")
    index = np.asarray(pairs, dtype=int)
    if index.ndim != 2 or index.shape[1] != 2:
        raise ValueError(f"pairs must be a sequence of 2-tuples, got shape {index.shape}")
    if index.min() < 0 or index.max() >= points.shape[0]:
        raise ValueError("pair index out of range")

    pi = points[index[:, 0]]
    pj = points[index[:, 1]]
    if np.any(np.all(np.isclose(pi, pj), axis=1)):
        raise ValueError("radical equation undefined for coincident tag positions")
    di = deltas[index[:, 0]]
    dj = deltas[index[:, 1]]
    spatial = 2.0 * (pi - pj)
    omega = 2.0 * (di - dj)
    matrix = np.hstack([spatial, omega[:, np.newaxis]])
    rhs = (
        np.einsum("ij,ij->i", pi, pi)
        - np.einsum("ij,ij->i", pj, pj)
        - di**2
        + dj**2
    )
    return matrix, rhs
