"""Uncertainty quantification for LION solutions.

A point estimate without an error bar is half an answer — a sorting robot
wants to know whether the item is at x ± 2 mm or x ± 2 cm before
committing a grasp. Because LION is (weighted) linear least squares, the
standard machinery applies: with residual variance ``s²`` estimated from
the weighted residuals, the estimate covariance is

``cov = s² (Aᵀ W A)⁻¹``

whose position block yields per-axis standard errors and confidence
ellipses. The same geometry effects the CRLB module predicts show up
here empirically: a linear scan's depth variance dominates, a wider
aperture shrinks everything.

Caveats (documented, not hidden): the estimate treats the radical rows'
errors as independent, while consecutive rows share reads (correlation)
and the coefficients themselves carry noise (errors-in-variables) — both
make the reported covariance mildly optimistic. Tests pin the calibration
factor against Monte-Carlo truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.localizer import LocalizationResult
from repro.core.solvers import Solution
from repro.core.system import LinearSystem


@dataclass(frozen=True)
class SolutionUncertainty:
    """Covariance summary of a solved radical system.

    Attributes:
        covariance: full ``(dim+1, dim+1)`` covariance of
            ``[x, y, (z,) d_r]``, square meters.
        position_std_m: per-axis standard errors (position block only).
        residual_std: the estimated per-equation residual sigma (raw
            residual units, m²).
        dof: degrees of freedom used in the variance estimate.
    """

    covariance: np.ndarray
    position_std_m: np.ndarray
    residual_std: float
    dof: int

    @property
    def position_covariance(self) -> np.ndarray:
        """The position block of the covariance."""
        dim = self.position_std_m.shape[0]
        return self.covariance[:dim, :dim]

    def total_std_m(self) -> float:
        """RMS positional standard error (sqrt of the covariance trace)."""
        return float(np.sqrt(np.trace(self.position_covariance)))

    def confidence_ellipse(
        self, axis_a: int = 0, axis_b: int = 1, probability: float = 0.95
    ) -> tuple[float, float, float]:
        """Confidence ellipse in the (axis_a, axis_b) plane.

        Returns:
            ``(semi_major_m, semi_minor_m, angle_rad)`` — the ellipse
            containing the estimate with the given probability under the
            Gaussian approximation; ``angle_rad`` orients the major axis
            from axis_a toward axis_b.

        Raises:
            ValueError: for bad axes or probability.
        """
        dim = self.position_std_m.shape[0]
        if not (0 <= axis_a < dim and 0 <= axis_b < dim and axis_a != axis_b):
            raise ValueError(f"bad axis pair ({axis_a}, {axis_b}) for dim {dim}")
        if not 0.0 < probability < 1.0:
            raise ValueError(f"probability must be in (0, 1), got {probability}")
        block = self.position_covariance[np.ix_([axis_a, axis_b], [axis_a, axis_b])]
        eigenvalues, eigenvectors = np.linalg.eigh(block)
        # chi-square quantile for 2 dof: -2 ln(1 - p).
        scale = -2.0 * np.log(1.0 - probability)
        order = np.argsort(eigenvalues)[::-1]
        major = float(np.sqrt(max(eigenvalues[order[0]], 0.0) * scale))
        minor = float(np.sqrt(max(eigenvalues[order[1]], 0.0) * scale))
        direction = eigenvectors[:, order[0]]
        angle = float(np.arctan2(direction[1], direction[0]))
        return major, minor, angle


def estimate_uncertainty(
    system: LinearSystem, solution: Solution
) -> SolutionUncertainty:
    """Covariance of a solved system from its weighted residuals.

    Args:
        system: the radical system that was solved.
        solution: the LS/WLS solution for it.

    Raises:
        ValueError: if the system has no redundancy (rows <= unknowns) or
            the normal matrix is singular.
    """
    matrix = system.matrix
    weights = solution.weights
    unknowns = matrix.shape[1]
    # Effective sample size under weighting.
    weight_sum = float(np.sum(weights))
    dof = int(round(weight_sum)) - unknowns
    if matrix.shape[0] <= unknowns or dof < 1:
        raise ValueError(
            f"need more equations than unknowns for a variance estimate "
            f"(rows {matrix.shape[0]}, unknowns {unknowns}, dof {dof})"
        )
    normal = matrix.T @ (weights[:, np.newaxis] * matrix)
    try:
        inverse = np.linalg.inv(normal)
    except np.linalg.LinAlgError as error:
        raise ValueError("normal matrix is singular (degenerate geometry)") from error
    residual_variance = float(
        np.sum(weights * solution.residuals**2) / dof
    )
    covariance = residual_variance * inverse
    position_std = np.sqrt(np.clip(np.diag(covariance)[: system.dim], 0.0, None))
    return SolutionUncertainty(
        covariance=covariance,
        position_std_m=position_std,
        residual_std=float(np.sqrt(residual_variance)),
        dof=dof,
    )


def uncertainty_of(result: LocalizationResult) -> SolutionUncertainty:
    """Uncertainty for a :class:`LocalizationResult` (its stored system).

    Note: when the result used lower-dimension recovery, the returned
    covariance covers the *directly solved* coordinates; the recovered
    coordinate inherits an amplified variance
    ``var(recovered) ≈ (d_r / offset)² var(d_r)`` that this linearised
    summary does not include.
    """
    return estimate_uncertainty(result.system, result.solution)
