"""Online (streaming) LION: recursive least squares over radical rows.

The batch localizer re-solves from scratch per scan — cheap, but an edge
node tracking a conveyor wants an estimate that *updates per read* in
O(1). Because LION's model is linear, recursive least squares applies
directly: each incoming read is unwrapped against its predecessor, paired
with the read one lag behind it, converted to a radical row, and folded
into the running normal equations

``N += w · aᵀa``,  ``b += w · a·k``,  estimate ``= N⁻¹ b``

with an optional exponential forgetting factor for slowly drifting
geometry and a robust gate that down-weights rows whose innovation
(pre-fit residual) is an outlier — the streaming counterpart of the
paper's Gaussian residual weighting.

The estimator solves the same unknowns as the batch model
(``[x, y, (z,) d_r]``); lower-dimension recovery is applied on demand in
:meth:`OnlineLionLocalizer.estimate` using the reference read, so a
straight conveyor works out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Optional
from collections import deque

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.lowerdim import recover_coordinate_from_reference
from repro.core.radical import radical_row


@dataclass(frozen=True)
class OnlineEstimate:
    """A point-in-time estimate from the streaming localizer.

    Attributes:
        position: estimated target position, shape ``(dim,)``.
        reference_distance_m: estimated ``d_r``.
        reads: reads consumed so far.
        rows: radical rows folded in so far.
        recovered_axis: coordinate recovered via the lower-dimension path,
            or ``None``.
    """

    position: np.ndarray
    reference_distance_m: float
    reads: int
    rows: int
    recovered_axis: Optional[int]


@dataclass
class OnlineLionLocalizer:
    """Streaming LION estimator.

    Attributes:
        dim: answer dimension, 2 or 3.
        wavelength_m: carrier wavelength.
        pair_lag: each read is paired with the read ``pair_lag`` positions
            earlier; at a fixed read rate and speed this is a fixed
            scanning interval.
        forgetting: exponential forgetting factor in ``(0, 1]``; 1 keeps
            all history (static target), lower values track drift.
        gate_threshold: robust gate — rows whose |innovation| exceeds
            ``gate_threshold`` times the running innovation scale get the
            corresponding Gaussian down-weight. 0 disables gating.
        positive_side: deployment prior for lower-dimension recovery.
        min_rows: rows required before :meth:`estimate` returns a value.
    """

    dim: int = 2
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    pair_lag: int = 150
    forgetting: float = 1.0
    gate_threshold: float = 4.0
    positive_side: bool = True
    min_rows: int = 10

    _normal: np.ndarray = field(init=False, repr=False)
    _moment: np.ndarray = field(init=False, repr=False)
    _window: Deque[tuple[np.ndarray, float]] = field(init=False, repr=False)
    _last_phase: float | None = field(init=False, repr=False, default=None)
    _unwrapped: float = field(init=False, repr=False, default=0.0)
    _reference: tuple[np.ndarray, float] | None = field(init=False, repr=False, default=None)
    _reads: int = field(init=False, repr=False, default=0)
    _rows: int = field(init=False, repr=False, default=0)
    _innovation_scale: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.dim not in (2, 3):
            raise ValueError(f"dim must be 2 or 3, got {self.dim}")
        if self.wavelength_m <= 0.0:
            raise ValueError("wavelength must be positive")
        if self.pair_lag < 1:
            raise ValueError("pair lag must be at least 1")
        if not 0.0 < self.forgetting <= 1.0:
            raise ValueError("forgetting factor must be in (0, 1]")
        size = self.dim + 1
        self._normal = np.zeros((size, size))
        self._moment = np.zeros(size)
        self._window = deque(maxlen=self.pair_lag + 1)

    # ------------------------------------------------------------------
    def add_read(self, position: "np.ndarray | tuple", wrapped_phase_rad: float) -> None:
        """Ingest one read (known position + reported wrapped phase).

        Reads must arrive in scan order with sub-half-wavelength spacing
        (the usual unwrapping condition).

        Raises:
            ValueError: on a position of the wrong dimensionality.
        """
        point = np.asarray(position, dtype=float)[: self.dim]
        if point.shape[0] != self.dim:
            raise ValueError(f"position must have at least {self.dim} axes")
        phase = float(wrapped_phase_rad)

        # Incremental unwrap against the previous read.
        if self._last_phase is None:
            self._unwrapped = phase
        else:
            jump = phase - self._last_phase
            jump = (jump + np.pi) % TWO_PI - np.pi
            self._unwrapped += jump
        self._last_phase = phase
        self._reads += 1

        if self._reference is None:
            self._reference = (point.copy(), self._unwrapped)
        ref_point, ref_phase = self._reference
        delta = (self.wavelength_m / (2.0 * TWO_PI)) * (self._unwrapped - ref_phase)

        self._window.append((point.copy(), delta))
        if len(self._window) <= self.pair_lag:
            return
        old_point, old_delta = self._window[0]
        if np.allclose(old_point, point):
            return
        coefficients, kappa = radical_row(old_point, old_delta, point, delta)
        self._fold(coefficients, kappa)

    def _fold(self, coefficients: np.ndarray, kappa: float) -> None:
        weight = 1.0
        if self.gate_threshold > 0.0 and self._rows >= self.min_rows:
            estimate = self._solve()
            if estimate is not None:
                innovation = float(coefficients @ estimate - kappa)
                magnitude = abs(innovation)
                # Running exponential estimate of the innovation scale.
                self._innovation_scale = (
                    0.98 * self._innovation_scale + 0.02 * magnitude
                    if self._innovation_scale > 0.0
                    else magnitude
                )
                scale = max(self._innovation_scale, 1e-12)
                if magnitude > self.gate_threshold * scale:
                    weight = float(
                        np.exp(-((magnitude / scale - self.gate_threshold) ** 2) / 2.0)
                    )
        if self.forgetting < 1.0:
            self._normal *= self.forgetting
            self._moment *= self.forgetting
        self._normal += weight * np.outer(coefficients, coefficients)
        self._moment += weight * coefficients * kappa
        self._rows += 1

    def _solve(self) -> np.ndarray | None:
        try:
            return np.linalg.lstsq(self._normal, self._moment, rcond=None)[0]
        except np.linalg.LinAlgError:
            return None

    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        """Reads ingested so far."""
        return self._reads

    @property
    def rows(self) -> int:
        """Radical rows folded in so far."""
        return self._rows

    def ready(self) -> bool:
        """Whether enough rows have accumulated for an estimate."""
        return self._rows >= self.min_rows

    def estimate(self) -> OnlineEstimate:
        """Current estimate, with lower-dimension recovery if needed.

        Raises:
            ValueError: before :meth:`ready` or if the normal equations
                are degenerate.
        """
        if not self.ready():
            raise ValueError(
                f"need at least {self.min_rows} rows, have {self._rows}"
            )
        solution = self._solve()
        if solution is None:
            raise ValueError("normal equations are degenerate")
        position = solution[: self.dim].copy()
        d_r = float(solution[self.dim])
        recovered: Optional[int] = None

        # Detect coordinates the stream never excited (zero diagonal).
        diagonal = np.diag(self._normal)[: self.dim]
        scale = max(float(diagonal.max()), 1.0)
        dead = np.flatnonzero(diagonal < 1e-12 * scale)
        if dead.size == 1 and self._reference is not None:
            recovered = int(dead[0])
            ref_point, _ = self._reference
            result = recover_coordinate_from_reference(
                position,
                recovered,
                max(d_r, 0.0),
                ref_point,
                positive_side=self.positive_side,
            )
            position = result.position
        elif dead.size > 1:
            raise ValueError("stream geometry is degenerate along multiple axes")
        return OnlineEstimate(
            position=position,
            reference_distance_m=d_r,
            reads=self._reads,
            rows=self._rows,
            recovered_axis=recovered,
        )

    def reset(self) -> None:
        """Clear all state (new scan / new target)."""
        size = self.dim + 1
        self._normal = np.zeros((size, size))
        self._moment = np.zeros(size)
        self._window.clear()
        self._last_phase = None
        self._unwrapped = 0.0
        self._reference = None
        self._reads = 0
        self._rows = 0
        self._innovation_scale = 0.0
